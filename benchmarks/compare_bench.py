"""Benchmark baseline distillation and regression comparison.

``pytest --benchmark-json`` output is machine- and run-specific; this module
reduces it to the part worth committing — each benchmark's ``min`` statistic
(the noise-free floor) plus a hardware calibration constant — and compares
later runs against it.

The calibration constant is the runtime of a fixed pure-python spin loop on
the same interpreter.  Comparing ``current_min`` against
``baseline_min * (current_calibration / baseline_calibration)`` cancels out
raw machine speed, so the committed baseline ports across hardware and the
guard only trips on genuine algorithmic regressions (>25% by default).

Usage::

    pytest benchmarks/bench_scaling_checker.py --benchmark-json=/tmp/b.json
    python benchmarks/compare_bench.py distill /tmp/b.json \
        -o benchmarks/results/baseline.json
    python benchmarks/compare_bench.py compare benchmarks/results/baseline.json

``compare`` without a second file re-measures the registered guard
workloads in-process (that is what ``pytest -m benchguard`` runs, see
``bench_guard.py``) and exits 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional

DEFAULT_TOLERANCE = 0.25
BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "baseline.json"


def calibrate() -> float:
    """Seconds for a fixed pure-python spin loop — the hardware unit.

    The loop mixes dict stores, tuple allocation and hashing rather than
    bare arithmetic so that it slows down in the same contention modes
    (memory bandwidth, allocator pressure) the checker does.
    """
    start = time.perf_counter()
    acc = 0
    slots: Dict[int, tuple] = {}
    scratch: List[tuple] = []
    for i in range(220_000):
        slots[i & 4095] = (i, acc)
        scratch.append((i, i * 31))
        if len(scratch) > 2048:
            scratch.clear()
        acc = (acc + hash((i & 255, acc & 1023))) % 1_000_003
    return time.perf_counter() - start


def distill(raw: dict) -> dict:
    """Reduce a pytest-benchmark JSON document to ``{name: min_s}`` plus a
    freshly measured calibration constant."""
    return {
        "calibration_s": min(calibrate() for _ in range(10)),
        "benchmarks": {
            bench["name"]: bench["stats"]["min"]
            for bench in raw.get("benchmarks", [])
        },
    }


def split_guard_names(baseline: dict, wanted: List[str]) -> tuple:
    """Split ``wanted`` benchmark names into ``(present, missing)`` against
    the baseline's recorded benchmarks.

    A freshly registered guard workload has no committed baseline entry
    yet; callers skip it with a message naming the missing keys (and the
    re-distill command) instead of dying on a ``KeyError``.
    """
    recorded = baseline.get("benchmarks", {})
    present = [name for name in wanted if name in recorded]
    missing = [name for name in wanted if name not in recorded]
    return present, missing


def compare(
    baseline: dict,
    current: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regression messages for every shared benchmark whose current time
    exceeds the calibration-scaled baseline by more than ``tolerance``.

    Benchmarks present on only one side are ignored (a new workload has no
    baseline yet; a retired one has no current measurement).  A document
    missing its top-level keys raises ``ValueError`` with the fix, never a
    bare ``KeyError``.
    """
    for side, doc in (("baseline", baseline), ("current", current)):
        if "calibration_s" not in doc:
            raise ValueError(
                f"{side} document has no 'calibration_s' — re-distill it "
                "(python benchmarks/compare_bench.py distill ...)"
            )
    scale = current["calibration_s"] / baseline["calibration_s"]
    if 0.6 < scale < 1.35:
        # Within the spin loop's run-to-run resolution on a shared host:
        # treat as the same machine speed rather than letting calibration
        # jitter eat into (or pad out) the tolerance.  Genuinely different
        # hardware shows up as a far larger ratio.
        scale = 1.0
    regressions = []
    for name, base_min in baseline.get("benchmarks", {}).items():
        now = current.get("benchmarks", {}).get(name)
        if now is None:
            continue
        allowed = base_min * scale * (1 + tolerance)
        if now > allowed:
            regressions.append(
                f"{name}: {now * 1000:.1f} ms > allowed {allowed * 1000:.1f} ms "
                f"(baseline {base_min * 1000:.1f} ms x {scale:.2f} hardware "
                f"scale x {1 + tolerance:.2f} tolerance)"
            )
    return regressions


# ----------------------------------------------------------------------
# guard workload registry
# ----------------------------------------------------------------------


def _checker_workload(n_txns: int, conflicted: bool) -> Callable[[], None]:
    import repro
    from repro.workloads import synthetic_history

    if conflicted:
        history = synthetic_history(
            n_txns=n_txns,
            n_objects=max(5, n_txns // 10),
            ops_per_txn=5,
            stale_read_fraction=0.5,
            write_fraction=0.6,
            seed=2,
        )
    else:
        history = synthetic_history(
            n_txns=n_txns, n_objects=max(10, n_txns // 5), ops_per_txn=5, seed=1
        )
    return lambda: repro.check(history)


#: Benchmarks the guard re-measures, keyed exactly as pytest-benchmark
#: names them.  Each entry is a factory so history construction stays out
#: of the timed region (and out of import time).
GUARD_BENCHMARKS: Dict[str, Callable[[], Callable[[], None]]] = {
    "test_scaling_clean_histories[1000]": lambda: _checker_workload(1000, False),
    "test_scaling_clean_histories[4000]": lambda: _checker_workload(4000, False),
    "test_scaling_conflicted_histories[1000]": lambda: _checker_workload(1000, True),
    "test_scaling_conflicted_histories[4000]": lambda: _checker_workload(4000, True),
}


def measure_guard(
    names: Optional[List[str]] = None, *, cycles: int = 10
) -> dict:
    """Re-measure the registered guard workloads.

    Runs ``cycles`` round-robin passes — one timed round of each workload
    plus one calibration per pass — and reports each minimum.  Contention
    noise only ever adds time, so a minimum converges on true machine
    speed as soon as *one* pass lands in a quiet window, and interleaving
    spreads every workload's rounds across the same multi-second span so
    they share those windows.  A slowdown sustained across the whole span
    inflates the calibration minimum too, which ``compare`` turns into a
    proportionally larger allowance.
    """
    fns = {
        name: factory()
        for name, factory in GUARD_BENCHMARKS.items()
        if names is None or name in names
    }
    results: Dict[str, float] = {name: float("inf") for name in fns}
    calibration = float("inf")
    for _ in range(cycles):
        calibration = min(calibration, calibrate())
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            results[name] = min(results[name], time.perf_counter() - start)
    return {"calibration_s": calibration, "benchmarks": results}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_distill = sub.add_parser(
        "distill", help="reduce pytest-benchmark JSON to a committed baseline"
    )
    p_distill.add_argument("input", help="pytest --benchmark-json output")
    p_distill.add_argument(
        "-o", "--output", default=str(BASELINE_PATH), help="baseline destination"
    )

    p_compare = sub.add_parser(
        "compare", help="compare a run (or a fresh in-process measurement)"
    )
    p_compare.add_argument("baseline", help="committed baseline.json")
    p_compare.add_argument(
        "current",
        nargs="?",
        help="pytest-benchmark JSON to compare; omit to re-measure the "
        "registered guard workloads in-process",
    )
    p_compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )

    args = parser.parse_args(argv)
    if args.command == "distill":
        with open(args.input, encoding="utf-8") as handle:
            baseline = distill(json.load(handle))
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out} ({len(baseline['benchmarks'])} benchmarks)")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if args.current:
        with open(args.current, encoding="utf-8") as handle:
            current = distill(json.load(handle))
    else:
        present, missing = split_guard_names(baseline, list(GUARD_BENCHMARKS))
        if missing:
            print(
                "note: no baseline entry for "
                + ", ".join(missing)
                + " — skipping (re-distill to pin them)"
            )
        current = measure_guard(present)
    try:
        regressions = compare(baseline, current, tolerance=args.tolerance)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for message in regressions:
        print(f"REGRESSION {message}")
    if not regressions:
        print(f"ok: {len(current['benchmarks'])} benchmarks within tolerance")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
