"""A one-shard cluster IS the single server, byte for byte.

The cluster facade routes every key to the same shard when ``shards=1``:
same tid allocation, same message schedule, same deadlock victims, same
crash/recovery behaviour — so per seed the history text, the
client-observed journals and the certification table must equal the plain
single-``Server`` run exactly.  This pins the whole routing/2PC layer as
a zero-cost refactor for the degenerate case, the same contract the
array-core equivalence suite pins for the checker."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import ClusterConfig, NetworkConfig, StressConfig, run_stress

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)
CLEAN = NetworkConfig(drop=0.0, duplicate=0.0, min_delay=1, max_delay=2)


def both(config: StressConfig):
    solo = run_stress(config)
    one = run_stress(replace(config, cluster=ClusterConfig(shards=1)))
    return solo, one


def assert_equivalent(solo, one):
    assert one.history_text == solo.history_text
    assert one.journals == solo.journals
    assert one.certification == solo.certification
    assert one.committed == solo.committed
    assert one.server_counters == solo.server_counters


class TestSeedSweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_faulty_network(self, seed):
        solo, one = both(
            StressConfig(
                clients=4, txns_per_client=10, seed=seed, network=FAULTY
            )
        )
        assert_equivalent(solo, one)

    @pytest.mark.parametrize("seed", (0, 3))
    def test_crash_and_restart(self, seed):
        solo, one = both(
            StressConfig(
                clients=4,
                txns_per_client=10,
                seed=seed,
                network=FAULTY,
                crash_after_commits=12,
            )
        )
        assert solo.crashes == 1
        assert_equivalent(solo, one)

    def test_clean_network(self):
        solo, one = both(
            StressConfig(clients=3, txns_per_client=8, seed=1, network=CLEAN)
        )
        assert_equivalent(solo, one)

    def test_admission_and_arrivals(self):
        from repro.service import AdmissionConfig
        from repro.workloads.arrivals import PoissonArrivals

        solo, one = both(
            StressConfig(
                clients=4,
                seed=2,
                network=CLEAN,
                arrivals=PoissonArrivals(rate=0.1),
                horizon=400,
                admission=AdmissionConfig(max_active=3, retry_after=8),
            )
        )
        assert_equivalent(solo, one)


class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        clients=st.integers(min_value=1, max_value=5),
        keys=st.integers(min_value=2, max_value=10),
        crash=st.booleans(),
    )
    def test_shards1_equals_single_server(self, seed, clients, keys, crash):
        config = StressConfig(
            clients=clients,
            txns_per_client=6,
            keys=keys,
            seed=seed,
            network=FAULTY,
            crash_after_commits=8 if crash else None,
        )
        solo, one = both(config)
        assert_equivalent(solo, one)
