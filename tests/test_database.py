"""Tests for the database facade (repro.engine.database)."""

import pytest

from repro.core.predicates import FieldPredicate
from repro.engine import Database, SnapshotIsolationScheduler
from repro.exceptions import InvalidOperation, WriteConflict


def make_db():
    db = Database(SnapshotIsolationScheduler())
    db.load({"x": 1})
    return db


class TestLoad:
    def test_loader_is_transaction_zero(self):
        db = make_db()
        h = db.history()
        assert 0 in h.committed
        assert h.committed_state() == {"x": 1}

    def test_double_load_rejected(self):
        db = make_db()
        with pytest.raises(InvalidOperation):
            db.load({"y": 2})

    def test_load_after_begin_rejected(self):
        db = Database(SnapshotIsolationScheduler())
        db.begin()
        with pytest.raises(InvalidOperation):
            db.load({"x": 1})

    def test_loading_rows_registers_relation(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales"}})
        assert db.scheduler.store.objects_in("emp") == ("emp:1",)


class TestTransactionLifecycle:
    def test_tids_sequential_from_one(self):
        db = make_db()
        assert db.begin().tid == 1
        assert db.begin().tid == 2

    def test_operations_after_commit_rejected(self):
        db = make_db()
        t = db.begin()
        t.commit()
        with pytest.raises(InvalidOperation):
            t.read("x")

    def test_abort_is_idempotent(self):
        db = make_db()
        t = db.begin()
        t.abort()
        t.abort()

    def test_level_recorded_in_history(self):
        from repro.core.levels import IsolationLevel

        db = make_db()
        t = db.begin(level="read committed")
        t.commit()
        assert db.history().level_of(t.tid) is IsolationLevel.PL_2


class TestInsertNaming:
    def test_fresh_object_ids(self):
        db = make_db()
        t = db.begin()
        a = t.insert("emp", {"dept": "Sales"})
        b = t.insert("emp", {"dept": "Legal"})
        assert a != b
        assert a.startswith("emp:")

    def test_counter_skips_preloaded_names(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:3": {"dept": "Sales"}})
        t = db.begin()
        assert t.insert("emp", {}) == "emp:4"


class TestRun:
    def test_commits_on_return(self):
        db = make_db()
        db.run(lambda t: t.write("x", 2))
        assert db.begin().read("x") == 2

    def test_aborts_on_exception(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            db.run(lambda t: (_ for _ in ()).throw(RuntimeError("boom")))
        assert db.begin().read("x") == 1

    def test_retries_scheduler_aborts(self):
        db = make_db()
        blocker = db.begin()
        blocker.write("x", 50)

        calls = []

        def bump(t):
            calls.append(1)
            t.write("x", (t.read("x") or 0) + 1)
            if len(calls) == 1:
                blocker.commit()  # make the first attempt lose FCW

        db.run(bump, retries=2)
        assert len(calls) == 2
        assert db.begin().read("x") == 51

    def test_no_retries_reraises(self):
        db = make_db()
        t_block = db.begin()
        t_block.write("x", 9)

        def losing(t):
            t.write("x", t.read("x") + 1)
            t_block.commit()

        with pytest.raises(WriteConflict):
            db.run(losing)


class TestCompositeOperations:
    def test_select_issues_item_reads(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t = db.begin()
        rows = t.select(pred)
        t.commit()
        assert rows == {"emp:1": {"dept": "Sales", "sal": 1}}
        h = db.history()
        assert len(h.predicate_reads) == 1
        assert any(e.tid == t.tid for _i, e in h.reads)

    def test_count_issues_no_item_reads(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t = db.begin()
        assert t.count(pred) == 1
        t.commit()
        assert not any(e.tid == t.tid for _i, e in db.history().reads)

    def test_update_where(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t = db.begin()
        assert t.update_where(pred, lambda r: {**r, "sal": r["sal"] + 1}) == 1
        t.commit()
        assert db.begin().read("emp:1")["sal"] == 2

    def test_delete_where(self):
        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales"}, "emp:2": {"dept": "Legal"}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t = db.begin()
        assert t.delete_where(pred) == 1
        t.commit()
        t2 = db.begin()
        assert t2.read("emp:1") is None
        assert t2.read("emp:2") == {"dept": "Legal"}
