"""Integration tests: every in-text claim the paper makes about its example
histories, machine-checked (repro.core.canonical)."""


import repro
from repro.core import DSG, Analysis
from repro.core.canonical import (
    H1,
    H2,
    H1_PRIME,
    H2_PRIME,
    H_INSERT,
    H_PHANTOM,
    H_PRED_READ,
    H_PRED_UPDATE,
    H_SERIAL,
    H_WCYCLE,
    H_WRITE_ORDER,
)
from repro.core.conflicts import DepKind
from repro.core.levels import IsolationLevel as L
from repro.core.phenomena import Phenomenon as G


def edge_set(history):
    return {
        (e.src, e.dst, ("p" if e.via_predicate else "") + e.kind.value)
        for e in DSG(history).edges
    }


def test_every_canonical_level_claim(canonical_history):
    """The headline: all level verdicts match the paper."""
    rep = repro.check(canonical_history.history)
    for level, expected in canonical_history.provides.items():
        assert rep.ok(level) == expected, (
            f"{canonical_history.name} at {level}: got {rep.ok(level)}, "
            f"paper says {expected}"
        )


class TestH1H2:
    def test_h1_t2_observes_broken_invariant(self):
        """T2 sees x=1 (new) and y=5 (old): x + y != 10."""
        h = H1.history
        values = [e.value for _i, e in h.reads if e.tid == 2]
        assert sum(values) != 10

    def test_h2_t2_observes_broken_invariant(self):
        h = H2.history
        values = [e.value for _i, e in h.reads if e.tid == 2]
        assert sum(values) != 10

    def test_h1_prime_t2_sees_consistent_state(self):
        values = [e.value for _i, e in H1_PRIME.history.reads if e.tid == 2]
        assert sum(values) == 10

    def test_h2_prime_t2_sees_consistent_state(self):
        values = [e.value for _i, e in H2_PRIME.history.reads if e.tid == 2]
        assert sum(values) == 10

    def test_h1_prime_serializes_t2_after_t1(self):
        order = DSG(H1_PRIME.history).topological_order()
        assert order.index(1) < order.index(2)

    def test_h2_prime_serializes_t2_before_t1(self):
        order = DSG(H2_PRIME.history).topological_order()
        assert order.index(2) < order.index(1)


class TestHWriteOrder:
    def test_version_order_contradicts_commit_order(self):
        """T1 commits before T2 yet x2 << x1 — the multi-version freedom."""
        h = H_WRITE_ORDER.history
        assert h.commit_index(1) < h.commit_index(2)
        order = h.order_of("x")
        assert order.index(h.final_version("x", 2)) < order.index(
            h.final_version("x", 1)
        )

    def test_t2_serialized_before_t1(self):
        order = DSG(H_WRITE_ORDER.history).topological_order()
        assert order.index(2) < order.index(1)

    def test_uncommitted_and_aborted_versions_unconstrained(self):
        h = H_WRITE_ORDER.history
        assert h.final_version("x", 3) not in h.installed
        assert h.final_version("y", 4) not in h.installed


class TestHPredRead:
    def test_dependency_comes_from_t1_not_t2(self):
        """T2's phone-number update is irrelevant to T3's Sales query; the
        predicate-read-dependency comes from T1 (Section 4.4.1)."""
        pred_edges = {
            (e.src, e.dst)
            for e in DSG(H_PRED_READ.history).edges
            if e.via_predicate and e.kind is DepKind.WR
        }
        assert pred_edges == {(1, 3)}

    def test_serializable_in_paper_order(self):
        order = DSG(H_PRED_READ.history).topological_order()
        assert order.index(0) < order.index(1) < order.index(3)
        assert order.index(1) < order.index(2)


class TestHSerial:
    def test_figure3_edges(self):
        assert edge_set(H_SERIAL.history) == {
            (1, 2, "ww"),
            (1, 2, "wr"),
            (1, 3, "ww"),
            (2, 3, "wr"),
            (2, 3, "rw"),
        }

    def test_serializable_t1_t2_t3(self):
        assert DSG(H_SERIAL.history).topological_order() == [1, 2, 3]


class TestHWcycle:
    def test_figure4_pure_write_cycle(self):
        assert edge_set(H_WCYCLE.history) == {(1, 2, "ww"), (2, 1, "ww")}

    def test_g0_exhibited(self):
        assert Analysis(H_WCYCLE.history).exhibits(G.G0)


class TestHPredUpdate:
    def test_interleaving_misses_y(self):
        """T2's salary raise updated x but not y (y was unborn in T2's
        version set)."""
        h = H_PRED_UPDATE.history
        _i, pread = h.predicate_reads[0]
        from repro.core.objects import Version

        assert h.vset_version(pread, "y") == Version.unborn("y")

    def test_allowed_at_pl1_no_write_cycle(self):
        assert not Analysis(H_PRED_UPDATE.history).exhibits(G.G0)

    def test_rejected_at_pl3_via_predicate_anti(self):
        a = Analysis(H_PRED_UPDATE.history)
        assert a.exhibits(G.G2)
        assert not a.exhibits(G.G2_ITEM)


class TestHPhantom:
    def test_figure5_cycle_shape(self):
        """T2 -wr-> T1 and T1 -predicate-rw-> T2 (T0 'not shown' but
        present as a setup node)."""
        edges = edge_set(H_PHANTOM.history)
        assert (2, 1, "wr") in edges
        assert (1, 2, "prw") in edges

    def test_inconsistency_t1_observed(self):
        """T1 summed 20 from individual reads but read Sum = 30."""
        h = H_PHANTOM.history
        item_values = [
            e.value for _i, e in h.reads if e.tid == 1 and e.version.obj != "Sum"
        ]
        sum_read = [e.value for _i, e in h.reads if e.tid == 1 and e.version.obj == "Sum"]
        assert sum(item_values) == 20
        assert sum_read == [30]

    def test_pl299_admits_pl3_rejects(self):
        rep = repro.check(H_PHANTOM.history)
        assert rep.ok(L.PL_2_99) and not rep.ok(L.PL_3)


class TestHInsert:
    def test_insert_select_shape(self):
        """The read of x0 feeds the inserted y1 (Section 4.3.2)."""
        h = H_INSERT.history
        assert [str(e) for e in h.events][-2] == "w1(y1)"
        assert repro.classify(h) is L.PL_3
