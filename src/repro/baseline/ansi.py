"""The ambiguous ANSI SQL-92 phenomena, in their *strict* (anomaly)
interpretation — the reading Berenson et al. [8] called A1–A3.

The paper's Section 2 recounts the problem: the ANSI standard's English
("Dirty read: T1 modifies a row.  T2 then reads that row before T1 performs
a COMMIT ...") admits two readings.

* The **strict / anomaly** interpretation (A1–A3, implemented here): the
  phenomenon only occurs when the anomaly completes —

  - A1: T2 reads T1's modified row and **T1 then aborts** (while T2
    commits);
  - A2: T1 reads a row, T2 modifies it **and commits**, and **T1 then
    re-reads the row** observing a different value;
  - A3: T1 reads a set of rows by predicate, T2 changes the set **and
    commits**, and **T1 re-runs the predicate read** observing the change.

* The **broad / preventative** interpretation (P1–P3, in
  :mod:`repro.baseline.preventative`): the mere interleaving is proscribed.

[8] showed the strict interpretation is *too weak*: histories such as the
paper's H1 (an inconsistent read where T1 never re-reads and nobody aborts)
exhibit no A-phenomenon at all, yet REPEATABLE READ ought to exclude them.
That observation forced the locking-shaped P-interpretation, whose excessive
strength is in turn this paper's Section 3 target.  The SEC2 benchmark
regenerates the three-way comparison: A-interpretation (unsound — admits
bad histories), P-interpretation (sound but over-restrictive), and the
generalized G-phenomena (sound and permissive).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..core.events import Read
from ..core.history import History
from ..core.levels import IsolationLevel

__all__ = [
    "AnsiPhenomenon",
    "AnsiReport",
    "AnsiAnalysis",
    "ansi_strict_satisfies",
]


class AnsiPhenomenon(Enum):
    A1 = "A1"  # dirty read, strict
    A2 = "A2"  # fuzzy read, strict
    A3 = "A3"  # phantom, strict

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AnsiReport:
    phenomenon: AnsiPhenomenon
    present: bool
    witnesses: Tuple[str, ...] = ()

    def describe(self) -> str:
        head = f"{self.phenomenon}: {'EXHIBITED' if self.present else 'absent'}"
        return head + "".join(f"\n  - {w}" for w in self.witnesses)

    def __bool__(self) -> bool:
        return self.present


def _detect_a1(history: History) -> AnsiReport:
    """T2 reads a row T1 modified; T1 aborts; T2 commits.

    (Operationally identical to phenomenon G1a restricted to item reads —
    the strict reading got *this* one right.)
    """
    witnesses = []
    for _i, read in history.reads:
        if (
            read.tid in history.committed
            and read.version.tid in history.aborted
            and read.version.tid != read.tid
        ):
            witnesses.append(
                f"T{read.tid} committed after reading {read.version} of "
                f"aborted T{read.version.tid}"
            )
    return AnsiReport(AnsiPhenomenon.A1, bool(witnesses), tuple(witnesses))


def _detect_a2(history: History) -> AnsiReport:
    """T1 reads a row; T2 modifies it and commits; T1 re-reads it and sees
    the change; both commit."""
    witnesses = []
    # For each committed transaction, look at successive reads of the same
    # object observing versions of different committed writers, with the
    # intervening writer's commit in between.
    for tid in history.committed:
        reads = [
            (i, ev)
            for i, ev in history.reads
            if ev.tid == tid
        ]
        by_obj: Dict[str, List[Tuple[int, Read]]] = {}
        for i, ev in reads:
            by_obj.setdefault(ev.version.obj, []).append((i, ev))
        for obj, items in by_obj.items():
            for (i1, r1), (i2, r2) in zip(items, items[1:]):
                if r1.version == r2.version or r2.version.tid == tid:
                    continue
                writer = r2.version.tid
                commit_idx = history.commit_index(writer)
                if (
                    writer in history.committed
                    and commit_idx is not None
                    and i1 < commit_idx < i2
                ):
                    witnesses.append(
                        f"T{tid} read {r1.version} then, after T{writer} "
                        f"committed, re-read {obj!r} as {r2.version}"
                    )
    return AnsiReport(AnsiPhenomenon.A2, bool(witnesses), tuple(witnesses))


def _detect_a3(history: History) -> AnsiReport:
    """T1 performs a predicate read; T2 commits a change to the matched
    set; T1 repeats the predicate read and its version set has changed."""
    witnesses = []
    for tid in history.committed:
        preads = [
            (i, ev)
            for i, ev in history.predicate_reads
            if ev.tid == tid
        ]
        for (i1, p1), (i2, p2) in zip(preads, preads[1:]):
            if p1.predicate != p2.predicate:
                continue
            first = set(
                history.vset_version(p1, obj)
                for obj in history.vset_objects(p1)
            )
            second = set(
                history.vset_version(p2, obj)
                for obj in history.vset_objects(p2)
            )
            changed = {
                v for v in second - first if not v.is_unborn and v.tid != tid
            }
            for v in changed:
                commit_idx = history.commit_index(v.tid)
                if (
                    v.tid in history.committed
                    and commit_idx is not None
                    and i1 < commit_idx < i2
                    and history.changes_matches(p1.predicate, v)
                ):
                    witnesses.append(
                        f"T{tid}'s repeated read of {p1.predicate} saw "
                        f"T{v.tid}'s committed change ({v})"
                    )
    return AnsiReport(AnsiPhenomenon.A3, bool(witnesses), tuple(witnesses))


_DETECTORS: Dict[AnsiPhenomenon, Callable[[History], AnsiReport]] = {
    AnsiPhenomenon.A1: _detect_a1,
    AnsiPhenomenon.A2: _detect_a2,
    AnsiPhenomenon.A3: _detect_a3,
}

_PROSCRIBED: Dict[IsolationLevel, Tuple[AnsiPhenomenon, ...]] = {
    IsolationLevel.PL_2: (AnsiPhenomenon.A1,),
    IsolationLevel.PL_2_99: (AnsiPhenomenon.A1, AnsiPhenomenon.A2),
    IsolationLevel.PL_3: (
        AnsiPhenomenon.A1,
        AnsiPhenomenon.A2,
        AnsiPhenomenon.A3,
    ),
}


class AnsiAnalysis:
    """A1–A3 detection with memoized reports."""

    def __init__(self, history: History):
        self.history = history
        self._cache: Dict[AnsiPhenomenon, AnsiReport] = {}

    def report(self, phenomenon: AnsiPhenomenon) -> AnsiReport:
        if phenomenon not in self._cache:
            self._cache[phenomenon] = _DETECTORS[phenomenon](self.history)
        return self._cache[phenomenon]

    def exhibits(self, phenomenon: AnsiPhenomenon) -> bool:
        return self.report(phenomenon).present


def ansi_strict_satisfies(
    history: History,
    level: IsolationLevel,
    *,
    analysis: Optional[AnsiAnalysis] = None,
) -> bool:
    """Would the strict (anomaly) reading of ANSI SQL-92 admit the history
    at the analogue of ``level``?  READ UNCOMMITTED proscribes nothing in
    this reading (ANSI had no dirty-write phenomenon at all — the missing
    P0 the paper's Section 2 notes)."""
    if level is IsolationLevel.PL_1:
        return True
    analysis = analysis or AnsiAnalysis(history)
    try:
        proscribed = _PROSCRIBED[level]
    except KeyError:
        raise KeyError(
            f"the ANSI strict reading defines no analogue of {level}"
        ) from None
    return not any(analysis.exhibits(p) for p in proscribed)
