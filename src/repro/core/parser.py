"""Parser for the paper's compact history notation.

The textual form mirrors the paper's examples::

    w0(x0) c0  w1(x1) c1  w2(x2)  r3(Dept=Sales: x2, y0)  w2(y2) c2 c3
    [x0 << x1 << x2, y0 << y2]
    [Dept=Sales matches: x0, y0]

Grammar (whitespace separated; ``#`` starts a comment to end of line):

* ``wI(xJ)`` / ``wI(xJ, v)`` / ``wI(xJ, dead)`` — write by ``T_I`` (``J`` must
  equal ``I``); explicit sequence numbers as ``wI(xI.2)``.  ``dead`` installs
  a dead version (a delete).
* ``rI(xJ)`` / ``rI(xJ, v)`` — item read; ``rcI(...)`` is a cursor read.
* ``rI(P: x0, y2*, zinit)`` — predicate read with predicate name ``P`` and
  the explicit version set after the colon.  A trailing ``*`` marks a version
  as *matching* the predicate; matches can also (or instead) be declared in a
  ``[P matches: ...]`` block, and the union is used.
* ``cI`` / ``aI`` — commit / abort.
* ``bI`` / ``bI@PL-2`` — optional begin, optionally declaring the
  transaction's isolation level (for mixed histories).
* ``[x0 << x1, y0 << y1]`` — the version order; ``<`` and the Unicode ``≺``
  are accepted too.  Objects without an explicit chain default to the order
  of committed final writes.
* ``[P matches: x0 y0]`` — declares versions satisfying predicate ``P``.

Version tokens are ``<object><tid>`` with an optional ``.seq`` suffix
(``x1``, ``Sum0``, ``x1.2``) or ``<object>init`` for the unborn version.
Bare object names are alphabetic (trailing digits are the transaction id);
names containing digits or punctuation — the engine's ``emp:3`` style — are
written in braces: ``{emp:3}1``, ``{emp:3}init``.

``parse_history`` returns a validated :class:`~repro.core.history.History`.
Histories that mention versions of transactions with no events (the paper's
implicit setup state, e.g. ``x0`` in ``H_phantom`` with no ``w0``) are
supported; such versions are installed right after the unborn version.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ParseError
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .history import History
from .objects import Version
from .predicates import MembershipPredicate, VersionSet

__all__ = ["parse_history", "parse_version", "parse_events"]

_EVENT_RE = re.compile(
    r"(?P<op>rc|r|w|c|a|b)(?P<tid>\d+)"
    r"(?:@(?P<level>[\w.+-]+))?"
    r"(?:\((?P<body>[^()]*)\))?"
)
_VERSION_RE = re.compile(
    r"^(?:\{(?P<qobj>[^{}\s]+)\}|(?P<obj>[A-Za-z_]+?))"
    r"(?P<tid>init|\d+)(?:\.(?P<seq>\d+))?$"
)
_BLOCK_RE = re.compile(r"\[([^\[\]]*)\]")
_ORDER_SEP_RE = re.compile(r"<<|<|≺")  # <<, <, ≺


def parse_version(token: str) -> Version:
    """Parse a version token like ``x1``, ``Sum0``, ``x1.2`` or ``xinit``."""
    m = _VERSION_RE.match(token.strip())
    if not m:
        raise ParseError("invalid version token", token=token)
    obj = m.group("qobj") or m.group("obj")
    if m.group("tid") == "init":
        if m.group("seq") is not None:
            raise ParseError("the unborn version has no sequence number", token=token)
        return Version.unborn(obj)
    tid = int(m.group("tid"))
    seq = int(m.group("seq")) if m.group("seq") else 1
    return Version(obj, tid, seq)


def _parse_value(text: str):
    text = text.strip()
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_level(name: str):
    from .levels import IsolationLevel

    try:
        return IsolationLevel.from_string(name)
    except KeyError:
        raise ParseError(f"unknown isolation level {name!r}") from None


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


def _split_blocks(text: str) -> Tuple[str, List[str]]:
    blocks = [m.group(1).strip() for m in _BLOCK_RE.finditer(text)]
    return _BLOCK_RE.sub(" ", text), blocks


def _parse_order_block(
    block: str, order: Dict[str, List[Version]]
) -> None:
    for chain_text in block.split(","):
        chain_text = chain_text.strip()
        if not chain_text:
            continue
        versions = [
            parse_version(tok)
            for tok in _ORDER_SEP_RE.split(chain_text)
            if tok.strip()
        ]
        if not versions:
            continue
        obj = versions[0].obj
        for v in versions:
            if v.obj != obj:
                raise ParseError(
                    f"version order chain mixes objects {obj!r} and {v.obj!r}",
                    token=chain_text,
                )
        chain = order.setdefault(obj, [])
        for v in versions:
            if not v.is_unborn and v not in chain:
                chain.append(v)


def _parse_matches_block(
    block: str, matches: Dict[str, List[Version]]
) -> None:
    head, _, tail = block.partition("matches")
    name = head.strip()
    if not name:
        raise ParseError("matches block lacks a predicate name", token=block)
    tail = tail.lstrip(":").strip()
    bucket = matches.setdefault(name, [])
    for tok in re.split(r"[,\s]+", tail):
        if tok:
            bucket.append(parse_version(tok))


def _scan_events(text: str):
    """Yield (op, tid, level, body) tuples; raise on unconsumed junk."""
    pos = 0
    for m in _EVENT_RE.finditer(text):
        gap = text[pos : m.start()].strip()
        if gap:
            raise ParseError("unrecognised input", token=gap, position=pos)
        yield m.group("op"), int(m.group("tid")), m.group("level"), m.group("body")
        pos = m.end()
    trailing = text[pos:].strip()
    if trailing:
        raise ParseError("unrecognised trailing input", token=trailing, position=pos)


def parse_events(
    text: str,
    matches: Optional[Dict[str, Sequence[Version]]] = None,
) -> List[Event]:
    """Parse just the event sequence of a (blockless) history text.

    ``matches`` supplies extra matching versions per predicate name, merged
    with inline ``*`` marks.  Sequence numbers for writes are inferred when
    omitted (``w1(x1) ... w1(x1)`` becomes ``x_{1:1}, x_{1:2}``).
    """
    pending: List[Tuple[str, int, Optional[str], Optional[str]]] = list(_scan_events(text))

    events: List[Event] = []
    write_counts: Dict[Tuple[int, str], int] = {}
    marks: Dict[str, List[Version]] = {
        name: list(vs) for name, vs in (matches or {}).items()
    }
    pread_slots: List[Tuple[int, str]] = []  # (event index, predicate name)

    def resolve(token: str) -> Version:
        """A version token without an explicit ``.seq`` denotes the writer's
        *latest write so far* to the object (so ``w1(x1) r2(x1) w1(x1)``
        is an intermediate read of ``x_{1:1}``); before any write it denotes
        sequence 1 (a setup version)."""
        version = parse_version(token)
        if version.is_unborn or "." in token:
            return version
        latest = write_counts.get((version.tid, version.obj), 0)
        return Version(version.obj, version.tid, latest or 1)

    for op, tid, level, body in pending:
        if op == "c":
            events.append(Commit(tid))
        elif op == "a":
            events.append(Abort(tid))
        elif op == "b":
            events.append(Begin(tid, _parse_level(level) if level else None))
        elif op == "w":
            if body is None:
                raise ParseError(f"write w{tid} lacks a version", token=f"w{tid}")
            vtext, _, val = body.partition(",")
            version = parse_version(vtext)
            if version.tid != tid:
                raise ParseError(
                    f"w{tid} writes a version of T{version.tid}", token=body
                )
            key = (tid, version.obj)
            if "." not in vtext:
                write_counts[key] = write_counts.get(key, 0) + 1
                version = Version(version.obj, tid, write_counts[key])
            else:
                write_counts[key] = max(write_counts.get(key, 0), version.seq)
            val = val.strip()
            if val == "dead":
                events.append(Write(tid, version, dead=True))
            else:
                events.append(Write(tid, version, value=_parse_value(val)))
        elif op in ("r", "rc"):
            if body is None:
                raise ParseError(f"read r{tid} lacks a version", token=f"r{tid}")
            if ":" in body:
                name, _, tail = body.partition(":")
                name = name.strip()
                versions = []
                for spec in tail.split(","):
                    spec = spec.strip()
                    if not spec:
                        continue
                    starred = spec.endswith("*")
                    version = resolve(spec.rstrip("*"))
                    versions.append(version)
                    if starred:
                        marks.setdefault(name, []).append(version)
                pread_slots.append((len(events), name))
                # Placeholder predicate; patched below once all marks are in.
                events.append(
                    PredicateRead(
                        tid, MembershipPredicate(name), VersionSet.of(*versions)
                    )
                )
            else:
                vtext, _, val = body.partition(",")
                events.append(
                    Read(
                        tid,
                        resolve(vtext),
                        value=_parse_value(val),
                        cursor=(op == "rc"),
                    )
                )
    # Patch predicate reads so every read of the same predicate name shares
    # one predicate object carrying the union of all declared matches, with
    # its relations inferred from the objects its version sets (and match
    # declarations) mention — so engine histories with namespaced objects
    # (``{emp:3}1``) round-trip with the right coverage.
    from .objects import DEFAULT_RELATION, relation_of

    relations: Dict[str, set] = {}
    for idx, name in pread_slots:
        ev = events[idx]
        assert isinstance(ev, PredicateRead)
        bucket = relations.setdefault(name, set())
        for obj in ev.vset.objects():
            bucket.add(relation_of(obj))
        for version in marks.get(name, ()):
            bucket.add(relation_of(version.obj))
    predicates = {
        name: MembershipPredicate(
            name,
            frozenset(marks.get(name, ())),
            frozenset(relations.get(name) or {DEFAULT_RELATION}),
        )
        for _idx, name in pread_slots
    }
    for idx, name in pread_slots:
        old = events[idx]
        assert isinstance(old, PredicateRead)
        events[idx] = PredicateRead(old.tid, predicates[name], old.vset)
    return events


def parse_history(
    text: str,
    *,
    auto_complete: bool = False,
    default_level: Optional[object] = None,
    validate: bool = True,
) -> History:
    """Parse a complete history (events plus optional bracket blocks).

    Parameters mirror :class:`~repro.core.history.History`; in particular
    ``auto_complete=True`` appends aborts for unfinished transactions, which
    is how the paper completes partial histories.
    """
    body, blocks = _split_blocks(_strip_comments(text))
    order: Dict[str, List[Version]] = {}
    matches: Dict[str, List[Version]] = {}
    for block in blocks:
        if "matches" in block:
            _parse_matches_block(block, matches)
        else:
            _parse_order_block(block, order)
    events = parse_events(body, matches)
    return History(
        events,
        order or None,
        default_level=default_level,
        auto_complete=auto_complete,
        validate=validate,
    )
