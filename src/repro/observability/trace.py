"""Structured tracing: spans and events as JSONL records.

A :class:`Tracer` narrates an execution as a tree of **spans** (run →
transaction → operation; check → extraction pass → cycle search) with
point-in-time **events** attached to them.  Records are plain dicts:

span record (emitted when the span closes)::

    {"kind": "span", "id": 3, "parent": 1, "name": "txn",
     "start": 0.01, "end": 0.04, "seq": 7, "attrs": {...}}

event record (emitted immediately)::

    {"kind": "event", "id": 9, "span": 3, "name": "deadlock",
     "time": 0.02, "seq": 5, "attrs": {...}}

``seq`` is a monotone emission sequence number — the total order of the
trace, unaffected by clock resolution.  ``id`` values are assigned at span
*open*, so events always name their parent span even though the parent's
record is written later; reconstruction (:func:`span_tree`) is order
independent.

Sinks are attachable: any callable taking one record dict.  The bundled
:class:`JsonlSink` appends one JSON line per record to a file;
:func:`read_trace` parses the file back.  Without a sink, records
accumulate in memory (:attr:`Tracer.records`).

Attribute values are sanitised to JSON-compatible types on emission
(:class:`~repro.core.objects.Version`, edges, predicates and events render
through ``str``), so a trace is always serialisable.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "Tracer",
    "Span",
    "JsonlSink",
    "TraceRecords",
    "read_trace",
    "span_tree",
]


def _jsonable(value: Any) -> Any:
    """Coerce arbitrary attribute values to JSON-compatible structures."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=str)
        return [_jsonable(v) for v in items]
    return str(value)


class Span:
    """One open span; close it with :meth:`end` or use it as a context
    manager.  More attributes can be attached any time before closing."""

    __slots__ = ("_tracer", "id", "parent", "name", "start", "attrs", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.start = tracer._now()
        self.attrs = attrs
        self._open = True

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an event parented to this span."""
        self._tracer.event(name, span=self, **attrs)

    def end(self, **attrs: Any) -> None:
        if not self._open:
            return
        self._open = False
        if attrs:
            self.attrs.update(attrs)
        self._tracer._close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self.end()


class Tracer:
    """Span/event emitter with an attachable sink.

    ``sink`` is any callable taking one record dict; ``None`` keeps records
    in memory only.  ``clock`` defaults to :func:`time.perf_counter`
    rebased to the tracer's construction (traces start near ``t=0``).
    """

    def __init__(
        self,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._sink = sink
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._next_id = 1
        self._seq = 0
        self._stack: List[int] = []  # open span ids, innermost last
        self.records: List[Dict[str, Any]] = []

    # -- internals -------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def use_clock(
        self, clock: Callable[[], float], *, epoch: float = 0.0
    ) -> "Tracer":
        """Switch the time source, e.g. onto a logical tick clock.

        The service layer re-clocks its tracer onto the simulated network's
        tick counter (``tracer.use_clock(lambda: float(net.now))``) so span
        timestamps — and therefore whole traces — are deterministic under a
        fixed seed.  Timestamps from here on are ``clock() - epoch``."""
        self._clock = clock
        self._epoch = epoch
        return self

    def _emit(self, record: Dict[str, Any]) -> None:
        self._seq += 1
        record["seq"] = self._seq
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    def _close_span(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.id:
            self._stack.pop()
        elif span.id in self._stack:  # out-of-order close (interleaved spans)
            self._stack.remove(span.id)
        self._emit(
            {
                "kind": "span",
                "id": span.id,
                "parent": span.parent,
                "name": span.name,
                "start": span.start,
                "end": self._now(),
                "attrs": _jsonable(span.attrs),
            }
        )

    # -- public API ------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: Optional[Union[Span, int]] = None,
        stack: bool = True,
        **attrs: Any,
    ) -> Span:
        """Open a span.  With ``stack=True`` (default) the span joins the
        implicit nesting stack — later spans/events without an explicit
        ``parent`` nest under it.  Interleaved executions (the simulator's
        overlapping transactions) pass ``stack=False`` and wire parents
        explicitly."""
        span_id = self._next_id
        self._next_id += 1
        if parent is None:
            parent_id = self._stack[-1] if self._stack else None
        else:
            parent_id = parent.id if isinstance(parent, Span) else parent
        span = Span(self, span_id, parent_id, name, dict(attrs))
        if stack:
            self._stack.append(span_id)
        return span

    def event(
        self,
        name: str,
        *,
        span: Optional[Union[Span, int]] = None,
        **attrs: Any,
    ) -> Dict[str, Any]:
        """Emit a point-in-time event (parent: explicit span, else the
        innermost open stacked span)."""
        if span is None:
            parent_id = self._stack[-1] if self._stack else None
        else:
            parent_id = span.id if isinstance(span, Span) else span
        span_id = self._next_id
        self._next_id += 1
        record = {
            "kind": "event",
            "id": span_id,
            "span": parent_id,
            "name": name,
            "time": self._now(),
            "attrs": _jsonable(attrs),
        }
        self._emit(record)
        return record

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Emitted event records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Closed span records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]


class JsonlSink:
    """Append one JSON line per record to a file (or writable handle)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._handle = target
            self._owned = False

    def __call__(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TraceRecords(List[Dict[str, Any]]):
    """The records of one parsed trace — a plain ``list`` plus
    :attr:`skipped`, the number of undecodable lines :func:`read_trace`
    dropped (a crash mid-write leaves a partial final line)."""

    skipped: int = 0


def read_trace(
    source: Union[str, Iterable[str]], *, strict: bool = False
) -> TraceRecords:
    """Parse a trace back to records.

    ``source`` is a path or an iterable of JSONL lines.  A path may also
    name a Chrome trace-event JSON file written by
    :func:`~repro.observability.traceview.write_chrome_trace`; the export
    round-trips — the embedded records are reconstructed.

    Undecodable lines are **skipped, not fatal**: a crash mid-write leaves
    a truncated final line, and the rest of the trace must stay readable.
    The returned :class:`TraceRecords` counts the drops in ``.skipped``;
    pass ``strict=True`` to raise instead.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            text = handle.read()
        if text.lstrip().startswith("{") and '"traceEvents"' in text:
            try:
                data = json.loads(text)
            except ValueError:
                data = None
            if isinstance(data, dict) and "traceEvents" in data:
                from .traceview import from_chrome_trace

                return from_chrome_trace(data)
        lines: Iterable[str] = text.splitlines()
    else:
        lines = list(source)
    records = TraceRecords()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if strict:
                raise
            records.skipped += 1
    return records


def span_tree(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reconstruct the span tree from trace records.

    Returns the root nodes; every node is
    ``{"record": <span record>, "children": [...], "events": [...]}``,
    children and events ordered by emission sequence.  Events whose parent
    span record is missing (the span never closed — e.g. the trace was
    truncated by a crash) are not dropped: they attach to a synthetic
    ``"orphans"`` root appended after the real roots, so truncated traces
    stay inspectable.  The synthetic record has ``id: None`` and
    ``attrs: {"synthetic": true}``.
    """
    records = list(records)
    spans = {
        r["id"]: {"record": r, "children": [], "events": []}
        for r in records
        if r["kind"] == "span"
    }
    roots: List[Dict[str, Any]] = []
    for record in sorted(
        (r for r in records if r["kind"] == "span"), key=lambda r: r["seq"]
    ):
        node = spans[record["id"]]
        parent = record.get("parent")
        if parent is not None and parent in spans:
            spans[parent]["children"].append(node)
        else:
            roots.append(node)
    orphans: List[Dict[str, Any]] = []
    for record in sorted(
        (r for r in records if r["kind"] == "event"), key=lambda r: r["seq"]
    ):
        parent = record.get("span")
        if parent is not None and parent in spans:
            spans[parent]["events"].append(record)
        else:
            orphans.append(record)
    if orphans:
        times = [e["time"] for e in orphans]
        roots.append(
            {
                "record": {
                    "kind": "span",
                    "id": None,
                    "parent": None,
                    "name": "orphans",
                    "start": min(times),
                    "end": max(times),
                    "seq": max(e["seq"] for e in orphans),
                    "attrs": {"synthetic": True},
                },
                "children": [],
                "events": orphans,
            }
        )
    return roots
