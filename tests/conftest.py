"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import parse_history
from repro.core.canonical import ALL_CANONICAL
from repro.workloads.anomalies import ALL_ANOMALIES


@pytest.fixture(params=ALL_CANONICAL, ids=lambda ch: ch.name)
def canonical_history(request):
    """Each paper history in turn."""
    return request.param


@pytest.fixture(params=ALL_ANOMALIES, ids=lambda ch: ch.name)
def anomaly_history(request):
    """Each anomaly-corpus history in turn."""
    return request.param


def parse(text: str, **kw):
    """Shorthand used across the suite."""
    return parse_history(text, **kw)
