"""Histogram percentile estimation and the metrics export formats
(render_text quantiles, Prometheus exposition)."""

import pytest

from repro.observability import Histogram, MetricsRegistry


class TestHistogramPercentile:
    def _hist(self, values, buckets=(1, 2, 5, 10), **labels):
        hist = Histogram("h", buckets=buckets)
        for v in values:
            hist.observe(v, **labels)
        return hist

    def test_empty_is_none(self):
        assert Histogram("h").percentile(99) is None

    def test_q_out_of_range(self):
        hist = self._hist([1])
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_single_sample_reports_itself_everywhere(self):
        hist = self._hist([3])
        assert hist.percentile(0) == 3
        assert hist.percentile(50) == 3
        assert hist.percentile(100) == 3

    def test_interpolates_inside_a_bucket(self):
        # 100 samples of 4 all land in the (2, 5] bucket; p50's rank sits
        # halfway through it, so the raw estimate is 2 + 3*0.5 = 3.5 —
        # clamped up to the observed min of 4.
        hist = self._hist([4] * 100)
        assert hist.percentile(50) == 4
        # With a spread inside the bucket the interpolation shows through.
        hist = self._hist([3, 4, 5, 3, 4, 5, 3, 4, 5, 3])
        p50 = hist.percentile(50)
        assert 3 <= p50 <= 5

    def test_clamped_to_observed_extremes(self):
        hist = self._hist([4, 4, 4, 4])
        for q in (0, 25, 99, 100):
            assert 4 <= hist.percentile(q) <= 4

    def test_rank_walks_cumulative_buckets(self):
        # 10 samples at 1, 10 at 4: p50 is in the first bucket, p99 in
        # the second.
        hist = self._hist([1] * 10 + [4] * 10)
        assert hist.percentile(50) == 1
        assert 2 <= hist.percentile(99) <= 4

    def test_overflow_bucket_reports_max(self):
        hist = self._hist([100, 200])
        assert hist.percentile(99) == 200

    def test_labelled_series_are_independent(self):
        hist = Histogram("h", buckets=(1, 10))
        hist.observe(1, verb="read")
        hist.observe(9, verb="write")
        assert hist.percentile(99, verb="read") == 1
        assert hist.percentile(99, verb="write") == 9
        assert hist.percentile(99, verb="never") is None


class TestRenderText:
    def test_quantiles_shown_per_series(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_ticks", "how long", buckets=(1, 5, 10))
        for v in (1, 2, 3, 8):
            hist.observe(v, verb="commit")
        text = reg.render_text()
        assert "latency_ticks (histogram)" in text
        assert "{verb=commit}" in text
        for marker in ("p50=", "p95=", "p99="):
            assert marker in text
        # The quantile numbers come from Histogram.percentile itself.
        p99 = hist.percentile(99, verb="commit")
        assert f"p99={p99:g}" in text


class TestRenderPrometheus:
    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "help me").inc(path='a"b\\c\nd')
        text = reg.render_prometheus()
        assert r'path="a\"b\\c\nd"' in text
        assert "\nd" not in text.replace(r"\n", "")  # no raw newline leaks

    def test_deterministic_ordering(self):
        # Instruments registered out of order, series observed out of
        # order: the exposition is sorted by name, then label key.
        reg = MetricsRegistry()
        reg.counter("zzz_total").inc()
        reg.counter("aaa_total").inc(verb="write")
        reg.counter("aaa_total").inc(verb="read")
        text = reg.render_prometheus()
        assert text.index("aaa_total") < text.index("zzz_total")
        assert text.index('verb="read"') < text.index('verb="write"')
        # Byte-for-byte stable across renders.
        assert text == reg.render_prometheus()

    def test_help_and_type_lines(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "queue depth").set(3)
        text = reg.render_prometheus()
        assert "# HELP depth queue depth" in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", "", buckets=(1, 5, 10))
        for v in (1, 2, 3, 8, 100):
            hist.observe(v)
        lines = reg.render_prometheus().splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("h_bucket")
        ]
        assert bucket_counts == [1, 3, 4, 5]
        assert bucket_counts == sorted(bucket_counts)  # cumulativity
        le_values = [
            line.split('le="', 1)[1].split('"', 1)[0]
            for line in lines
            if line.startswith("h_bucket")
        ]
        assert le_values == ["1", "5", "10", "+Inf"]
        assert "h_count 5" in lines
        assert any(line.startswith("h_sum") for line in lines)

    def test_unobserved_instruments_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("silent_total", "never fired")
        assert reg.render_prometheus() == ""
