"""Tests for the multi-version store (repro.engine.storage)."""

from repro.core.objects import Version
from repro.engine.storage import MultiVersionStore


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestInstall:
    def test_commit_seq_increments(self):
        store = MultiVersionStore()
        assert store.commit_seq == 0
        store.install([(v("x", 1), 10, False)])
        assert store.commit_seq == 1
        store.install([(v("y", 2), 20, False)])
        assert store.commit_seq == 2

    def test_atomic_multi_object_install(self):
        store = MultiVersionStore()
        seq = store.install([(v("x", 1), 1, False), (v("y", 1), 2, False)])
        assert store.latest("x").commit_seq == seq
        assert store.latest("y").commit_seq == seq


class TestLookups:
    def test_latest(self):
        store = MultiVersionStore()
        store.install([(v("x", 1), 10, False)])
        store.install([(v("x", 2), 20, False)])
        assert store.latest("x").value == 20
        assert store.latest("nope") is None

    def test_at_snapshot(self):
        store = MultiVersionStore()
        store.install([(v("x", 1), 10, False)])  # seq 1
        store.install([(v("x", 2), 20, False)])  # seq 2
        assert store.at_snapshot("x", 1).value == 10
        assert store.at_snapshot("x", 2).value == 20
        assert store.at_snapshot("x", 0) is None

    def test_changed_since(self):
        store = MultiVersionStore()
        store.install([(v("x", 1), 10, False)])
        assert store.changed_since("x", 0)
        assert not store.changed_since("x", 1)
        assert not store.changed_since("y", 0)

    def test_dead_versions_stored(self):
        store = MultiVersionStore()
        store.install([(v("x", 1), 10, False)])
        store.install([(v("x", 2), None, True)])
        assert store.latest("x").dead

    def test_chain(self):
        store = MultiVersionStore()
        store.install([(v("x", 1), 10, False)])
        store.install([(v("x", 2), 20, False)])
        assert [sv.value for sv in store.chain("x")] == [10, 20]


class TestRelations:
    def test_register_and_enumerate(self):
        store = MultiVersionStore()
        store.register("emp:2")
        store.register("emp:1")
        store.register("dept:1")
        assert store.objects_in("emp") == ("emp:1", "emp:2")
        assert store.objects_in("dept") == ("dept:1",)
        assert store.objects_in("ghost") == ()

    def test_install_registers(self):
        store = MultiVersionStore()
        store.install([(v("emp:1", 1), {"a": 1}, False)])
        assert "emp:1" in store.objects_in("emp")

    def test_bare_objects_in_default_relation(self):
        store = MultiVersionStore()
        store.register("x")
        assert store.objects_in("R") == ("x",)

    def test_relations_listing(self):
        store = MultiVersionStore()
        store.register("emp:1")
        store.register("x")
        assert store.relations() == ("R", "emp")
