"""User-facing isolation checker built on the core formalism."""

from .checker import as_history, check, check_level, check_many
from .naming import NamedAnomaly, name_anomalies, name_cycle
from .report import CheckReport

__all__ = [
    "as_history",
    "check",
    "check_level",
    "check_many",
    "NamedAnomaly",
    "name_anomalies",
    "name_cycle",
    "CheckReport",
]
