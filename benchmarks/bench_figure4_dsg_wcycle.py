"""FIG4 — Figure 4: the DSG of H_wcycle (the G0 write cycle).

The paper uses H_wcycle to define PL-1: updates of x and y occur in
opposite orders, producing a pure write-dependency cycle.  This bench
asserts the figure's two-edge cycle, that G0 (and nothing weaker than it)
condemns the history, and that the history therefore sits below every PL
level.  The timing measures G0 detection.
"""

from __future__ import annotations

import repro
from repro.core import Analysis, DSG
from repro.core.canonical import H_WCYCLE
from repro.core.conflicts import DepKind
from repro.core.phenomena import Phenomenon as G


def detect():
    analysis = Analysis(H_WCYCLE.history)
    return analysis, analysis.report(G.G0)


def test_figure4_write_cycle(benchmark, record_table):
    analysis, report = benchmark(detect)
    assert report.present
    cycle = report.witnesses[0].cycle
    assert cycle is not None
    assert set(cycle.nodes) == {1, 2}
    assert cycle.count(DepKind.WW) == len(cycle)

    edges = {
        (e.src, e.dst, e.kind.value) for e in DSG(H_WCYCLE.history).edges
    }
    assert edges == {(1, 2, "ww"), (2, 1, "ww")}
    assert repro.classify(H_WCYCLE.history) is None  # below PL-1

    lines = [
        "FIG4 — DSG(H_wcycle)",
        f"history: {H_WCYCLE.history}",
        f"cycle:   {cycle.describe()}",
        "verdict: G0 exhibited -> disallowed even at PL-1 (paper Section 5.1)",
    ]
    record_table("figure4_dsg_wcycle", "\n".join(lines))
