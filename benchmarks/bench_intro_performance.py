"""INTRO — Section 1's motivation: weaker levels buy performance.

"Commercial databases support different isolation levels to allow
programmers to trade off consistency for a potential gain in performance
... READ COMMITTED is the default for some database products and database
vendors recommend using this level instead of serializability if high
performance is desired."

The simulator has no wall clock, but the costs the paper alludes to are all
visible in its counters: blocking retries (lock waits), deadlock aborts,
and validation aborts.  This bench runs the same contentious workload at
each level on the locking and mixed-OCC engines and asserts the monotone
shape: stronger levels never cost *less* — and at high contention,
SERIALIZABLE costs strictly more than READ COMMITTED on at least one axis.
"""

from __future__ import annotations


from repro.core.levels import IsolationLevel as L
from repro.engine import (
    Database,
    LockingScheduler,
    MixedOptimisticScheduler,
    Simulator,
)
from repro.workloads import WorkloadConfig, random_programs

N_SEEDS = 12
PROFILE_ORDER = ["read-uncommitted", "read-committed", "repeatable-read", "serializable"]


def run_locking(profile: str):
    steps = aborts = deadlocks = commits = 0
    for seed in range(N_SEEDS):
        cfg = WorkloadConfig(
            n_programs=6, steps_per_program=3, n_keys=3,
            hot_fraction=0.9, write_fraction=0.6,
        )
        db = Database(LockingScheduler(profile))
        db.load(cfg.initial_state())
        result = Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
        steps += result.steps_executed
        aborts += result.abort_count
        deadlocks += result.deadlocks
        commits += result.committed_count
    return {
        "steps": steps,
        "aborts": aborts,
        "deadlocks": deadlocks,
        "commits": commits,
    }


def test_intro_locking_cost_gradient(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: {p: run_locking(p) for p in PROFILE_ORDER},
        iterations=1,
        rounds=1,
    )
    lines = [
        f"INTRO — locking cost by level ({N_SEEDS} hot-key runs each)",
        "",
        f"{'profile':18} {'sim steps':>10} {'aborts':>7} {'deadlocks':>10} {'commits':>8}",
    ]
    for profile in PROFILE_ORDER:
        r = results[profile]
        lines.append(
            f"{profile:18} {r['steps']:>10} {r['aborts']:>7} "
            f"{r['deadlocks']:>10} {r['commits']:>8}"
        )
    # Shape assertions: the strongest level pays at least as much as the
    # weakest on every axis, and strictly more overall.
    weak, strong = results["read-committed"], results["serializable"]
    assert strong["steps"] >= weak["steps"]
    assert strong["aborts"] >= weak["aborts"]
    assert strong["steps"] + strong["aborts"] > weak["steps"] + weak["aborts"]
    lines += [
        "",
        "SERIALIZABLE pays more simulator steps (lock-wait retries) and "
        "more deadlock aborts than READ COMMITTED — the paper's "
        "performance motivation, in the simulator's currency.",
    ]
    record_table("intro_locking_costs", "\n".join(lines))


def run_occ(level: L):
    aborts = commits = 0
    for seed in range(N_SEEDS):
        cfg = WorkloadConfig(
            n_programs=6, steps_per_program=3, n_keys=3,
            hot_fraction=0.9, write_fraction=0.6, level=level,
        )
        db = Database(MixedOptimisticScheduler())
        db.load(cfg.initial_state())
        result = Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
        aborts += result.abort_count
        commits += result.committed_count
    return aborts, commits


def test_intro_occ_validation_cost(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: {level: run_occ(level) for level in (L.PL_2, L.PL_2_99, L.PL_3)},
        iterations=1,
        rounds=1,
    )
    lines = [
        f"INTRO — OCC validation aborts by declared level ({N_SEEDS} runs each)",
        "",
    ]
    for level, (aborts, commits) in results.items():
        lines.append(f"  {level}: {aborts} aborts, {commits} commits")
    assert results[L.PL_2][0] <= results[L.PL_3][0]
    lines += [
        "",
        "Weaker declared levels skip validation and abort less — the same "
        "trade-off, optimistic flavour.",
    ]
    record_table("intro_occ_costs", "\n".join(lines))
