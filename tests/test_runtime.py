"""Tests for running-transaction guarantees (repro.core.runtime)."""

import pytest

from repro.core import parse_history
from repro.core.levels import IsolationLevel as L
from repro.core.objects import Version
from repro.core.parser import parse_events
from repro.core.runtime import could_commit_at, running_satisfies, virtual_commit
from repro.exceptions import MalformedHistoryError


def events(text):
    return parse_events(text)


class TestVirtualCommit:
    def test_appends_commit(self):
        projection = virtual_commit(events("w1(x1)"), 1)
        assert 1 in projection.committed

    def test_other_running_transactions_aborted(self):
        projection = virtual_commit(events("w1(x1) w2(y2)"), 1)
        assert 2 in projection.aborted

    def test_already_committed_rejected(self):
        with pytest.raises(MalformedHistoryError):
            virtual_commit(events("w1(x1) c1"), 1)

    def test_trailing_abort_from_completion_stripped(self):
        h = parse_history("w1(x1) w2(y2) c2", auto_complete=True)
        projection = virtual_commit(h, 1)
        assert 1 in projection.committed
        assert 2 in projection.committed

    def test_installs_writes_at_tail(self):
        projection = virtual_commit(events("w2(x2) c2 w1(x1)"), 1)
        chain = projection.order_of("x")
        assert chain[-1] == Version("x", 1)

    def test_preserves_supplied_version_order(self):
        h = parse_history("w2(x2) w3(x3) c2 c3 w1(y1) [x3 << x2]", auto_complete=True)
        projection = virtual_commit(h, 1)
        assert projection.order_of("x")[1:] == (Version("x", 3), Version("x", 2))


class TestRunningSatisfies:
    def test_clean_running_transaction_could_commit_pl3(self):
        evs = events("w2(x2) c2 r1(x2) w1(y1)")
        assert running_satisfies(evs, 1, L.PL_3).ok

    def test_read_from_uncommitted_blocks_pl2(self):
        """T1 read T2's uncommitted write: committing now would be an
        aborted read (G1a under the projection), so PL-2 is not available —
        the paper's 'commit must be delayed' reading."""
        evs = events("w2(x2) r1(x2)")
        verdict = running_satisfies(evs, 1, L.PL_2)
        assert not verdict.ok

    def test_same_read_fine_once_writer_commits(self):
        evs = events("w2(x2) r1(x2) c2")
        assert running_satisfies(evs, 1, L.PL_2).ok

    def test_overwritten_read_blocks_pl3_only(self):
        # T1 read x0, T2 overwrote it and committed: lost-update shape if T1
        # now writes x.
        evs = events("r1(x0, 1) r2(x0, 1) w2(x2, 2) c2 w1(x1, 3)")
        assert not running_satisfies(evs, 1, L.PL_3).ok
        assert running_satisfies(evs, 1, L.PL_2).ok

    def test_could_commit_at_strongest(self):
        evs = events("r1(x0, 1) r2(x0, 1) w2(x2, 2) c2 w1(x1, 3)")
        assert could_commit_at(evs, 1) is L.PL_2

    def test_could_commit_pl3_when_untouched(self):
        evs = events("w2(y2) c2 r1(y2) w1(z1)")
        assert could_commit_at(evs, 1) is L.PL_3


class TestEngineCouldCommit:
    def test_si_loser_detected_before_commit(self):
        from repro.engine import Database, SnapshotIsolationScheduler

        db = Database(SnapshotIsolationScheduler())
        db.load({"x": 1})
        t1, t2 = db.begin(), db.begin()
        t1.write("x", t1.read("x") + 1)
        t2.write("x", t2.read("x") + 1)
        t1.commit()
        # T2's snapshot read of x0 is now overwritten: PL-3 unavailable.
        assert not db.could_commit(t2, "serializable").ok
        assert db.could_commit(t2, "read committed").ok

    def test_clean_transaction_reports_pl3(self):
        from repro.engine import Database, OptimisticScheduler

        db = Database(OptimisticScheduler())
        db.load({"x": 1})
        t1 = db.begin()
        t1.write("x", t1.read("x") + 1)
        assert db.could_commit(t1) is L.PL_3

    def test_dirty_reader_must_wait(self):
        from repro.engine import Database, LockingScheduler

        db = Database(LockingScheduler("read-uncommitted"))
        db.load({"x": 1})
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 9)
        assert t2.read("x") == 9  # dirty read
        verdict = db.could_commit(t2, "read committed")
        assert not verdict.ok  # must wait for T1
        t1.commit()
        assert db.could_commit(t2, "read committed").ok
