"""Transaction handles and state.

A :class:`Transaction` is the per-transaction bookkeeping shared by every
scheduler: identity, declared isolation level, lifecycle state, private write
buffer, read/write/predicate sets, and version numbering (``x_{i:m}``).

The user-facing operations (``read``, ``write``, ``select``, …) live on
:class:`~repro.engine.database.Database`'s transaction facade; schedulers
receive this object and decide semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.objects import Version
from ..core.predicates import Predicate
from ..exceptions import InvalidOperation

__all__ = ["TxnState", "BufferedWrite", "Transaction"]


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class BufferedWrite:
    """A private (not yet installed) write."""

    version: Version
    value: Any
    dead: bool
    event_index: int  # index of the Write event in the recorder


@dataclass
class Transaction:
    """Scheduler-independent transaction bookkeeping."""

    tid: int
    level: Optional[object] = None
    state: TxnState = TxnState.ACTIVE
    #: For multi-version schedulers: the store's commit sequence at begin.
    snapshot_seq: int = 0
    #: Latest private write per object (read-your-own-writes).
    buffer: Dict[str, BufferedWrite] = field(default_factory=dict)
    #: Objects read (item reads, including those following predicate reads).
    read_set: Set[str] = field(default_factory=set)
    #: Objects written.
    write_set: Set[str] = field(default_factory=set)
    #: Predicates read, for OCC predicate validation.
    predicates: List[Predicate] = field(default_factory=list)
    #: Number of writes per object so far, for x_{i:m} numbering.
    write_counts: Dict[str, int] = field(default_factory=dict)
    #: Event index of the final write per object (install-position hints).
    final_write_index: Dict[str, int] = field(default_factory=dict)
    #: Why the scheduler killed this transaction (e.g. "wounded by T3");
    #: ``None`` for voluntary aborts.
    abort_reason: Optional[str] = None

    def require_active(self) -> None:
        if self.state is TxnState.ABORTED:
            # A scheduler-initiated kill (deadlock-prevention wound, ...)
            # surfaces at the victim's next operation so its program can
            # restart; voluntary aborts surface as usage errors.
            from ..exceptions import TransactionAborted

            if self.abort_reason is not None:
                raise TransactionAborted(self.tid, self.abort_reason)
            raise InvalidOperation(
                f"T{self.tid} is aborted; no further operations allowed"
            )
        if self.state is not TxnState.ACTIVE:
            raise InvalidOperation(
                f"T{self.tid} is {self.state.value}; no further operations allowed"
            )

    def next_version(self, obj: str) -> Version:
        """Allocate ``x_{i:m}`` for the transaction's next write of ``obj``."""
        count = self.write_counts.get(obj, 0) + 1
        self.write_counts[obj] = count
        return Version(obj, self.tid, count)

    def buffered(self, obj: str) -> Optional[BufferedWrite]:
        return self.buffer.get(obj)

    def finals(self) -> Dict[str, Version]:
        """Final version per written object (what a commit installs)."""
        return {obj: bw.version for obj, bw in self.buffer.items()}

    def final_values(self) -> List[Tuple[Version, Any, bool]]:
        """(version, value, dead) triples for the store's ``install``."""
        return [
            (bw.version, bw.value, bw.dead) for bw in self.buffer.values()
        ]
