"""Backward-validation optimistic concurrency control.

This is the scheme family the paper motivates in Section 3 — transactions
read the committed state, buffer writes privately, and validate at commit:
if any concurrently committed transaction wrote something this transaction
read (an item or a predicate's matched set), the committing transaction
aborts (:class:`~repro.exceptions.ValidationFailure`).  Successful commits
install versions in commit order, so committed histories are serializable in
commit order — the emitted histories provide PL-3 while freely violating the
preventative P1/P2 (e.g. they realize the paper's ``H2'`` shape, where a
transaction's read is later overwritten by an uncommitted peer yet commit
order repairs the conflict).

Reads observe the *latest committed* version at read time.  This is the
loosely-synchronized-clocks style of validation [2] simplified to a single
site: start/commit timestamps come from the store's commit sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.objects import Version
from ..core.predicates import Predicate, VersionSet
from ..exceptions import ValidationFailure
from .scheduler import PredicateResult, Scheduler
from .transaction import BufferedWrite, Transaction, TxnState

__all__ = ["OptimisticScheduler"]


@dataclass(frozen=True)
class _CommittedRecord:
    """What the validator needs to know about a committed transaction."""

    tid: int
    commit_seq: int
    write_set: frozenset[str]
    #: (version, value, dead) of every installed write, for predicate
    #: validation ("did this commit change the matches of P?").
    writes: Tuple[Tuple[Version, Any, bool], ...]


class OptimisticScheduler(Scheduler):
    """Kung–Robinson-style backward validation against committed peers."""

    name = "optimistic"

    def __init__(self) -> None:
        super().__init__()
        self._log: List[_CommittedRecord] = []

    # ------------------------------------------------------------------

    def on_begin(self, txn: Transaction) -> None:
        txn.snapshot_seq = self.store.commit_seq

    def read(
        self,
        txn: Transaction,
        obj: str,
        *,
        cursor: bool = False,
        for_update: bool = False,
    ) -> Any:
        txn.require_active()
        own = txn.buffer.get(obj)
        if own is not None:
            if own.dead:
                return None
            self.recorder.read(txn.tid, own.version, own.value, cursor=cursor)
            txn.read_set.add(obj)
            return own.value
        stored = self.store.latest(obj)
        if stored is None or stored.dead:
            return None
        self.recorder.read(txn.tid, stored.version, stored.value, cursor=cursor)
        txn.read_set.add(obj)
        return stored.value

    def write(
        self, txn: Transaction, obj: str, value: Any, *, dead: bool = False
    ) -> None:
        txn.require_active()
        self.store.register(obj)
        version = txn.next_version(obj)
        self.recorder.write(txn.tid, version, None if dead else value, dead=dead)
        txn.buffer[obj] = BufferedWrite(
            version, None if dead else value, dead, len(self.recorder.events) - 1
        )
        txn.write_set.add(obj)

    def predicate_read(
        self, txn: Transaction, predicate: Predicate
    ) -> PredicateResult:
        txn.require_active()
        selected: Dict[str, Version] = {}
        matched: List[Tuple[str, Any]] = []
        for relation in sorted(predicate.relations):
            for obj in self.store.objects_in(relation):
                own = txn.buffer.get(obj)
                if own is not None:
                    selected[obj] = own.version
                    if not own.dead and predicate.matches(own.version, own.value):
                        matched.append((obj, own.value))
                    continue
                stored = self.store.latest(obj)
                if stored is None:
                    continue  # implicitly unborn
                selected[obj] = stored.version
                if not stored.dead and predicate.matches(
                    stored.version, stored.value
                ):
                    matched.append((obj, stored.value))
        self.recorder.predicate_read(txn.tid, predicate, VersionSet(selected))
        txn.predicates.append(predicate)
        return PredicateResult(tuple(sorted(matched)))

    # ------------------------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        self._validate(txn)
        self.store.install(txn.final_values())
        self._log.append(
            _CommittedRecord(
                txn.tid,
                self.store.commit_seq,
                frozenset(txn.write_set),
                tuple((bw.version, bw.value, bw.dead) for bw in txn.buffer.values()),
            )
        )
        self.recorder.commit(txn.tid, txn.finals())
        txn.state = TxnState.COMMITTED

    def abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            return
        self.recorder.abort(txn.tid)
        txn.state = TxnState.ABORTED

    # ------------------------------------------------------------------

    def _validate(self, txn: Transaction) -> None:
        """Backward validation: conflicts with transactions that committed
        after this transaction began."""
        for record in reversed(self._log):
            if record.commit_seq <= txn.snapshot_seq:
                break
            clash = record.write_set & txn.read_set
            if clash:
                self._validation_failed(txn, record.tid)
            for predicate in txn.predicates:
                if self._changes_predicate(record, predicate):
                    self._validation_failed(txn, record.tid)
        if self.metrics is not None:
            self.metrics.counter(
                "occ_validations_total", "OCC commit validations by outcome"
            ).inc(scheduler=self.name, outcome="ok")

    def _validation_failed(self, txn: Transaction, against: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "occ_validations_total", "OCC commit validations by outcome"
            ).inc(scheduler=self.name, outcome="failed")
            self._abort_metric("validation-failure")
        if self.tracer is not None:
            self.tracer.event(
                "validation-failure",
                tid=txn.tid,
                against=against,
                scheduler=self.name,
            )
        self.abort(txn)
        raise ValidationFailure(txn.tid, against)

    @staticmethod
    def _changes_predicate(record: _CommittedRecord, predicate: Predicate) -> bool:
        """Whether a committed peer's writes could have changed the matches
        of a predicate this transaction read.  Conservative — any write into
        the predicate's relations counts (an insert/matching update adds a
        match; a delete or update away removes one, and the overwritten
        value is not at hand) — like a granular predicate lock.  Soundness
        is what matters for PL-3; the checker measures the histories, not
        the abort rate."""
        return any(
            predicate.covers(version.obj) for version, _value, _dead in record.writes
        )
