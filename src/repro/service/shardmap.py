"""The versioned shard map: which shard owns which slice of the keyspace.

Keys hash to a fixed ring of *slots* (a stable CRC-32, so placement is
deterministic across runs and processes); each slot is owned by exactly one
shard endpoint.  The map is *versioned*: every reconfiguration — migrating
a slot to another shard, or replacing a shard's endpoint wholesale — bumps
``version``, and servers answer ``moved`` (with the current owner) to
operations addressed to keys they no longer own, so clients holding a stale
map re-route instead of corrupting placement.

The map is consulted in process (it is the cluster's config service, not a
network participant): lookups draw no randomness and send no messages, so a
single-shard cluster is byte-for-byte identical to the plain single-server
stack.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["ShardMap"]


def _slot_hash(key: str) -> int:
    """Stable key hash (CRC-32; Python's ``hash`` is salted per process)."""
    return zlib.crc32(key.encode("utf-8"))


class ShardMap:
    """Versioned slot → shard-endpoint assignment."""

    def __init__(self, shards: Sequence[str], *, slots: int = 16) -> None:
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        if slots < len(shards):
            raise ValueError("need at least one slot per shard")
        #: Owner endpoint name per slot (round-robin initial assignment).
        self.assignment: List[str] = [
            shards[i % len(shards)] for i in range(slots)
        ]
        self.version = 1
        #: Reconfiguration log: ``(version, description)`` pairs.
        self.changes: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def slots(self) -> int:
        return len(self.assignment)

    @property
    def shards(self) -> Tuple[str, ...]:
        """The distinct shard endpoints currently owning slots, in first-
        appearance order."""
        seen: Dict[str, None] = {}
        for name in self.assignment:
            seen.setdefault(name)
        return tuple(seen)

    def slot_of(self, key: str) -> int:
        return _slot_hash(key) % len(self.assignment)

    def owner(self, key: str) -> str:
        """The endpoint currently owning ``key``."""
        return self.assignment[self.slot_of(key)]

    def slots_of(self, shard: str) -> Tuple[int, ...]:
        return tuple(
            i for i, name in enumerate(self.assignment) if name == shard
        )

    def owns(self, shard: str, key: str) -> bool:
        return self.owner(key) == shard

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------

    def migrate(self, slot: int, to: str) -> int:
        """Reassign one slot; returns the new map version."""
        if not (0 <= slot < len(self.assignment)):
            raise ValueError(f"slot {slot} out of range")
        src = self.assignment[slot]
        self.assignment[slot] = to
        self.version += 1
        self.changes.append(
            (self.version, f"migrate slot {slot}: {src} -> {to}")
        )
        return self.version

    def replace(self, old: str, new: str) -> int:
        """Rename a shard endpoint everywhere it appears (a retired process
        replaced by one recovered from the same log); returns the new map
        version."""
        if old not in self.assignment:
            raise ValueError(f"{old!r} owns no slots")
        self.assignment = [
            new if name == old else name for name in self.assignment
        ]
        self.version += 1
        self.changes.append((self.version, f"replace {old} -> {new}"))
        return self.version

    def __repr__(self) -> str:
        return (
            f"<ShardMap v{self.version} slots={len(self.assignment)} "
            f"shards={list(self.shards)}>"
        )
