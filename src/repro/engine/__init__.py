"""Transactional engine: storage, schedulers, database facade, simulator.

The engine exists to generate *real* histories from real concurrency-control
implementations — locking per Figure 1, backward-validation OCC, and
multi-version schemes — which the checker then classifies, demonstrating the
paper's central claim of implementation-independence.
"""

from .database import Database, TransactionHandle
from .factory import SCHEDULERS, SchedulerConfig, connect, create_scheduler
from .locking import PROFILES, LockProfile, LockingScheduler, profile_for_level
from .locks import LockDuration, LockManager, LockMode
from .mixed_optimistic import MixedOptimisticScheduler
from .mobile import MobileClient, MobileCluster, MobileTxn, SyncResult
from .mvcc import ReadCommittedMVScheduler, SnapshotIsolationScheduler
from .optimistic import OptimisticScheduler
from .programs import (
    Compute,
    Conditional,
    Count,
    Delete,
    DeleteWhere,
    Increment,
    Insert,
    PredicateReadStep,
    Program,
    Read,
    Select,
    Step,
    UpdateWhere,
    Write,
)
from .recorder import HistoryRecorder
from .scheduler import PredicateResult, Scheduler
from .simulator import ProgramOutcome, SimulationResult, Simulator
from .storage import MultiVersionStore, StoredVersion
from .transaction import Transaction, TxnState

__all__ = [
    "Database",
    "TransactionHandle",
    "SCHEDULERS",
    "SchedulerConfig",
    "connect",
    "create_scheduler",
    "PROFILES",
    "LockProfile",
    "LockingScheduler",
    "profile_for_level",
    "LockDuration",
    "LockManager",
    "LockMode",
    "MixedOptimisticScheduler",
    "MobileClient",
    "MobileCluster",
    "MobileTxn",
    "SyncResult",
    "ReadCommittedMVScheduler",
    "SnapshotIsolationScheduler",
    "OptimisticScheduler",
    "Compute",
    "Conditional",
    "Count",
    "Delete",
    "DeleteWhere",
    "Increment",
    "Insert",
    "PredicateReadStep",
    "Program",
    "Read",
    "Select",
    "Step",
    "UpdateWhere",
    "Write",
    "HistoryRecorder",
    "PredicateResult",
    "Scheduler",
    "ProgramOutcome",
    "SimulationResult",
    "Simulator",
    "MultiVersionStore",
    "StoredVersion",
    "Transaction",
    "TxnState",
]
