"""Tests for History construction and derived structure (repro.core.history)."""

import pytest

from repro.core import parse_history
from repro.core.events import Write
from repro.core.history import History
from repro.core.objects import Version, VersionKind
from repro.exceptions import MalformedHistoryError


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestConstruction:
    def test_events_preserved(self):
        h = parse_history("w1(x1) c1")
        assert len(h) == 2

    def test_auto_complete_appends_aborts(self):
        h = History([Write(1, v("x", 1))], auto_complete=True)
        assert 1 in h.aborted

    def test_incomplete_history_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E1"):
            History([Write(1, v("x", 1))])

    def test_default_version_order_follows_final_writes(self):
        h = parse_history("w1(x1) c1 w2(x2) c2")
        assert h.order_of("x") == (Version.unborn("x"), v("x", 1), v("x", 2))

    def test_explicit_version_order_wins(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x2 << x1]")
        assert h.order_of("x") == (Version.unborn("x"), v("x", 2), v("x", 1))

    def test_aborted_writes_not_installed(self):
        h = parse_history("w1(x1) a1 w2(x2) c2")
        assert v("x", 1) not in h.installed
        assert v("x", 2) in h.installed


class TestTransactionSets:
    def test_committed_and_aborted(self):
        h = parse_history("w1(x1) c1 w2(x2) a2")
        assert h.committed == {1}
        assert h.aborted == {2}

    def test_tids_in_first_appearance_order(self):
        h = parse_history("w2(x2) w1(y1) c2 c1")
        assert h.tids == (2, 1)

    def test_setup_versions_detected(self):
        h = parse_history("r1(x0, 5) c1")
        assert v("x", 0) in h.setup_versions
        assert 0 in h.setup_tids
        assert 0 in h.committed_all

    def test_setup_version_with_active_writer_tid(self):
        # y0 read while T0 has events but never writes y (H_pred-read shape).
        h = parse_history("w0(x0) c0 r1(y0) c1")
        assert v("y", 0) in h.setup_versions
        assert 0 in h.committed_all
        assert 0 not in h.setup_tids  # T0 has events


class TestVersionAttributes:
    def test_kind_of_visible(self):
        h = parse_history("w1(x1) c1")
        assert h.kind_of(v("x", 1)) is VersionKind.VISIBLE

    def test_kind_of_dead(self):
        h = parse_history("w1(x1, dead) c1")
        assert h.kind_of(v("x", 1)) is VersionKind.DEAD

    def test_kind_of_unborn(self):
        h = parse_history("w1(x1) c1")
        assert h.kind_of(Version.unborn("x")) is VersionKind.UNBORN

    def test_kind_of_setup_is_visible(self):
        h = parse_history("r1(x0) c1")
        assert h.kind_of(v("x", 0)) is VersionKind.VISIBLE

    def test_value_of_write(self):
        h = parse_history("w1(x1, 42) c1")
        assert h.value_of(v("x", 1)) == 42

    def test_value_of_setup_from_read(self):
        h = parse_history("r1(x0, 7) c1")
        assert h.value_of(v("x", 0)) == 7

    def test_final_version_tracks_last_write(self):
        h = parse_history("w1(x1) w1(x1) c1")
        assert h.final_version("x", 1) == v("x", 1, 2)
        assert h.is_final(v("x", 1, 2))
        assert not h.is_final(v("x", 1, 1))

    def test_next_installed(self):
        h = parse_history("w1(x1) c1 w2(x2) c2")
        assert h.next_installed(v("x", 1)) == v("x", 2)
        assert h.next_installed(v("x", 2)) is None
        assert h.next_installed(Version.unborn("x")) == v("x", 1)


class TestPredicateStructure:
    def test_vset_version_explicit_and_implicit(self):
        h = parse_history("w1(x1) w1(y1) r2(P: x1) c1 c2")
        _i, pread = h.predicate_reads[0]
        assert h.vset_version(pread, "x") == v("x", 1)
        assert h.vset_version(pread, "y") == Version.unborn("y")

    def test_vset_objects_cover_relation_universe(self):
        h = parse_history("w1(x1) w1(y1) r2(P: x1) c1 c2")
        _i, pread = h.predicate_reads[0]
        assert set(h.vset_objects(pread)) == {"x", "y"}

    def test_version_matches_guards_unborn_and_dead(self):
        h = parse_history("w1(x1) w2(y2, dead) r3(P: x1*) c1 c2 c3")
        _i, pread = h.predicate_reads[0]
        assert h.version_matches(pread.predicate, v("x", 1))
        assert not h.version_matches(pread.predicate, Version.unborn("x"))
        assert not h.version_matches(pread.predicate, v("y", 2))

    def test_changes_matches_relative_to_predecessor(self):
        # x0 matches, x1 does not: both change; x2 does not change.
        h = parse_history(
            "w0(x0) c0 w1(x1) c1 w2(x2) r3(P: x2, y0) c2 c3 "
            "[x0 << x1 << x2] [P matches: x0]"
        )
        _i, pread = h.predicate_reads[0]
        p = pread.predicate
        assert h.changes_matches(p, v("x", 0))
        assert h.changes_matches(p, v("x", 1))
        assert not h.changes_matches(p, v("x", 2))


class TestCommittedState:
    def test_final_values(self):
        h = parse_history("w1(x1, 1) c1 w2(x2, 2) w2(y2, 3) c2")
        assert h.committed_state() == {"x": 2, "y": 3}

    def test_deleted_objects_omitted(self):
        h = parse_history("w1(x1, 1) c1 w2(x2, dead) c2")
        assert h.committed_state() == {}

    def test_aborted_writes_invisible(self):
        h = parse_history("w1(x1, 1) c1 w2(x2, 9) a2")
        assert h.committed_state() == {"x": 1}


class TestLevels:
    def test_level_of_from_begin_event(self):
        from repro.core.levels import IsolationLevel

        h = parse_history("b1@PL-2 w1(x1) c1 w2(x2) c2")
        assert h.level_of(1) is IsolationLevel.PL_2
        assert h.level_of(2) is IsolationLevel.PL_3  # default

    def test_default_level_parameter(self):
        from repro.core.levels import IsolationLevel

        h = parse_history("w1(x1) c1", default_level=IsolationLevel.PL_1)
        assert h.level_of(1) is IsolationLevel.PL_1


class TestIndexes:
    def test_begin_index_defaults_to_first_event(self):
        h = parse_history("w1(x1) c1 w2(x2) c2")
        assert h.begin_index(2) == 2

    def test_begin_index_uses_begin_event(self):
        h = parse_history("b1 w1(x1) c1")
        assert h.begin_index(1) == 0

    def test_commit_and_finish_index(self):
        h = parse_history("w1(x1) c1 w2(x2) a2")
        assert h.commit_index(1) == 1
        assert h.abort_index(2) == 3
        assert h.finish_index(2) == 3

    def test_events_of(self):
        h = parse_history("w1(x1) w2(x2) c1 c2")
        assert [str(e) for e in h.events_of(1)] == ["w1(x1)", "c1"]
