"""Analyses built on top of the checker and engine."""

from .opcheck import Op, OpCheckResult, check_operations
from .permissiveness import PermissivenessResult, compare
from .spectrum import (
    AblationResult,
    SpectrumPoint,
    contention_spectrum,
    predicate_mode_ablation,
)
from .repair import RepairResult, abort_transactions, repair
from .report_gen import generate_report
from .stats import HistoryStats, history_stats

__all__ = [
    "Op",
    "OpCheckResult",
    "check_operations",
    "PermissivenessResult",
    "compare",
    "AblationResult",
    "SpectrumPoint",
    "contention_spectrum",
    "predicate_mode_ablation",
    "generate_report",
    "RepairResult",
    "abort_transactions",
    "repair",
    "HistoryStats",
    "history_stats",
]
