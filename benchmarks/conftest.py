"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (figure/table/claim), asserts its
qualitative shape, and writes the regenerated table to
``benchmarks/results/<name>.txt`` so it survives pytest's output capture.
The pytest-benchmark timings land in the usual benchmark table.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """``record_table(name, text)`` — persist a regenerated paper table."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _record
