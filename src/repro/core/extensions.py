"""Extension-level phenomena from Adya's thesis (paper Sections 1 and 6).

The paper's approach "can be used to define additional levels as well,
including commercial levels such as Cursor Stability, and Oracle's Snapshot
Isolation ... and new levels; for example ... PL-2+".  This module implements
the thesis phenomena behind those levels:

* **G-single** (level PL-2+): the DSG contains a cycle with *exactly one*
  anti-dependency edge.  PL-2+ is the weakest level guaranteeing consistent
  reads; read skew is its canonical violation.
* **G-SIa / G-SIb** (level PL-SI, Snapshot Isolation):

  - *G-SIa, interference*: the DSG contains a read- or write-dependency edge
    ``T_i -> T_j`` without a corresponding start-dependency edge — ``T_j``
    observed or overwrote ``T_i`` without having started after ``T_i``
    committed.
  - *G-SIb, missed effects*: the start-ordered serialization graph
    :class:`~repro.core.ssg.SSG` contains a cycle with exactly one
    anti-dependency edge.  (Write skew — two anti-dependency edges — is
    deliberately *not* caught: snapshot isolation permits it.)

* **G-SS** (level PL-SS, strict serializability): the start-ordered
  serialization graph contains a cycle with at least one anti-dependency or
  start-dependency edge — either a plain serializability violation or a
  serialization order that contradicts real time (a transaction that began
  after another committed yet serializes before it).  Pure dependency
  cycles are already G1c, so PL-SS = G1 + G-SS proscribed.

* **G-cursor** (level PL-CS, Cursor Stability): the DSG contains a cycle with
  exactly one anti-dependency edge, where that edge arises from a *cursor
  read* of some object ``x`` and the cycle also contains a write-dependency
  edge on ``x`` — the classical lost update on the cursor.  Reads are marked
  as cursor reads via ``rcI(...)`` in the notation or ``cursor=True`` on
  :class:`~repro.core.events.Read`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .conflicts import DepKind
from .dsg import Cycle
from .phenomena import Phenomenon, PhenomenonReport, Witness
from .ssg import SSG

if TYPE_CHECKING:  # pragma: no cover
    from .phenomena import Analysis

__all__ = ["detect_extension"]


def detect_extension(analysis: "Analysis", phenomenon: Phenomenon) -> PhenomenonReport:
    """Dispatch for the extension phenomena (called from ``Analysis``)."""
    if phenomenon is Phenomenon.G_SINGLE:
        return _g_single(analysis)
    if phenomenon is Phenomenon.G_SIA:
        return _g_sia(analysis)
    if phenomenon is Phenomenon.G_SIB:
        return _g_sib(analysis)
    if phenomenon is Phenomenon.G_SI:
        parts = [
            analysis.report(Phenomenon.G_SIA),
            analysis.report(Phenomenon.G_SIB),
        ]
        return PhenomenonReport(
            Phenomenon.G_SI,
            any(parts),
            tuple(w for r in parts for w in r.witnesses),
        )
    if phenomenon is Phenomenon.G_CURSOR:
        return _g_cursor(analysis)
    if phenomenon is Phenomenon.G_SS:
        return _g_ss(analysis)
    raise ValueError(f"not an extension phenomenon: {phenomenon}")


def _cycle_report(
    phenomenon: Phenomenon, cycle: Optional[Cycle], what: str
) -> PhenomenonReport:
    if cycle is None:
        return PhenomenonReport(phenomenon, False)
    detail = "; ".join(e.describe() for e in cycle.edges)
    return PhenomenonReport(
        phenomenon,
        True,
        (Witness(f"{what}: {cycle.describe()} ({detail})", cycle),),
    )


def _g_single(analysis: "Analysis") -> PhenomenonReport:
    cycle = analysis.dsg.find_cycle_with(
        special=lambda e: e.kind is DepKind.RW,
        keep=lambda e: True,
        exactly_one=True,
    )
    return _cycle_report(
        Phenomenon.G_SINGLE, cycle, "cycle with exactly one anti-dependency edge"
    )


def _g_sia(analysis: "Analysis") -> PhenomenonReport:
    history = analysis.history
    ssg = _ssg(analysis)
    witnesses = []
    for edge in analysis.dsg.edges:
        if edge.kind in (DepKind.WW, DepKind.WR) and not ssg.start_edge(
            edge.src, edge.dst
        ):
            witnesses.append(
                Witness(
                    f"interference: {edge.describe()}, but T{edge.src} did not "
                    f"commit before T{edge.dst} started"
                )
            )
    return PhenomenonReport(Phenomenon.G_SIA, bool(witnesses), tuple(witnesses))


def _g_sib(analysis: "Analysis") -> PhenomenonReport:
    ssg = _ssg(analysis)
    cycle = ssg.find_cycle_with(
        special=lambda e: e.kind is DepKind.RW,
        keep=lambda e: True,
        exactly_one=True,
    )
    return _cycle_report(
        Phenomenon.G_SIB,
        cycle,
        "missed effects: SSG cycle with exactly one anti-dependency edge",
    )


def _g_ss(analysis: "Analysis") -> PhenomenonReport:
    ssg = _ssg(analysis)
    cycle = ssg.find_cycle_with(
        special=lambda e: e.kind in (DepKind.RW, DepKind.SO),
        keep=lambda e: True,
    )
    return _cycle_report(
        Phenomenon.G_SS,
        cycle,
        "real-time violation: SSG cycle with an anti- or start-dependency edge",
    )


def _ssg(analysis: "Analysis") -> SSG:
    cached = getattr(analysis, "_ssg_cache", None)
    if cached is None:
        # Reuse the analysis's already-extracted conflict edges; the SSG only
        # adds the start-dependency edges on top.
        cached = SSG(analysis.history, analysis.mode, edges=analysis.edges)
        analysis._ssg_cache = cached
    return cached


def _g_cursor(analysis: "Analysis") -> PhenomenonReport:
    """Lost update through a cursor: for each cursor-read item
    anti-dependency edge on ``x``, look for a dependency path back that
    passes through a write-dependency on ``x``."""
    dsg = analysis.dsg
    dep = lambda e: e.kind in (DepKind.WW, DepKind.WR)
    for anti in dsg.edges:
        if anti.kind is not DepKind.RW or anti.via_predicate or not anti.cursor:
            continue
        for ww in dsg.edges:
            if ww.kind is not DepKind.WW or ww.obj != anti.obj:
                continue
            first = _dep_path(dsg, anti.dst, ww.src, dep)
            if first is None:
                continue
            second = _dep_path(dsg, ww.dst, anti.src, dep)
            if second is None:
                continue
            try:
                cycle = Cycle((anti, *first, ww, *second))
            except ValueError:
                continue
            return _cycle_report(
                Phenomenon.G_CURSOR,
                cycle,
                f"lost cursor update on {anti.obj!r}",
            )
    return PhenomenonReport(Phenomenon.G_CURSOR, False)


def _dep_path(dsg, src: int, dst: int, keep):
    from .dsg import _shortest_edge_path

    return _shortest_edge_path(dsg._filtered(keep), src, dst)
