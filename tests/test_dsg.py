"""Tests for DSG construction and cycle searches (repro.core.dsg)."""

import pytest

from repro.core import DSG, parse_history
from repro.core.conflicts import DepKind
from repro.core.dsg import Cycle, dependency_edge
from repro.core.conflicts import Edge
from repro.core.objects import Version


class TestStructure:
    def test_nodes_are_committed_transactions(self):
        h = parse_history("w1(x1) c1 w2(x2) a2 w3(y3) c3")
        assert DSG(h).nodes == (1, 3)

    def test_setup_transactions_are_nodes(self):
        h = parse_history("r1(x0) c1")
        assert DSG(h).nodes == (0, 1)

    def test_edges_between(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2")
        dsg = DSG(h)
        kinds = {e.kind for e in dsg.edges_between(1, 2)}
        assert kinds == {DepKind.WW, DepKind.WR}
        assert dsg.edges_between(2, 1) == []

    def test_edges_of_filters(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2")
        dsg = DSG(h)
        assert len(dsg.edges_of(DepKind.WW)) == 1
        assert len(dsg.edges_of(DepKind.WR, via_predicate=True)) == 0

    def test_to_dot_contains_edges(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        dot = DSG(h).to_dot()
        assert "T1 -> T2" in dot and "digraph" in dot


class TestAcyclicity:
    def test_serial_history_acyclic(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2")
        dsg = DSG(h)
        assert dsg.is_acyclic()
        assert dsg.topological_order() == [1, 2]

    def test_write_cycle_detected(self):
        h = parse_history("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]")
        dsg = DSG(h)
        assert not dsg.is_acyclic()
        cycle = dsg.find_cycle(lambda e: e.kind is DepKind.WW)
        assert cycle is not None
        assert set(cycle.nodes) == {1, 2}


class TestFindCycle:
    def test_dependency_only_search(self):
        h = parse_history(
            "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1"
        )
        dsg = DSG(h)
        assert dsg.find_cycle(dependency_edge) is None  # no G1c
        assert (
            dsg.find_cycle_with(
                special=lambda e: e.kind is DepKind.RW, keep=lambda e: True
            )
            is not None
        )  # but G2

    def test_exactly_one_anti(self):
        # Lost update: one rw + one ww.
        h = parse_history(
            "r1(x0, 10) r2(x0, 10) w2(x2, 15) c2 w1(x1, 11) c1 [x0 << x2 << x1]"
        )
        cycle = DSG(h).find_cycle_with(
            special=lambda e: e.kind is DepKind.RW,
            keep=lambda e: True,
            exactly_one=True,
        )
        assert cycle is not None
        assert cycle.count(DepKind.RW) == 1

    def test_exactly_one_anti_rejects_write_skew(self):
        h = parse_history(
            "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) w2(y2) c1 c2 [x0 << x1, y0 << y2]"
        )
        dsg = DSG(h)
        assert (
            dsg.find_cycle_with(
                special=lambda e: e.kind is DepKind.RW,
                keep=lambda e: True,
                exactly_one=True,
            )
            is None
        )
        # ... though a (two-anti) cycle does exist:
        assert (
            dsg.find_cycle_with(
                special=lambda e: e.kind is DepKind.RW, keep=lambda e: True
            )
            is not None
        )


class TestCycleClass:
    def test_cycle_must_chain(self):
        e1 = Edge(1, 2, DepKind.WW, "x", Version("x", 2))
        e2 = Edge(3, 1, DepKind.WW, "y", Version("y", 1))
        with pytest.raises(ValueError):
            Cycle((e1, e2))

    def test_cycle_describe(self):
        e1 = Edge(1, 2, DepKind.WW, "x", Version("x", 2))
        e2 = Edge(2, 1, DepKind.WW, "y", Version("y", 1))
        c = Cycle((e1, e2))
        assert c.describe() == "T1 -ww-> T2 -ww-> T1"
        assert len(c) == 2
        assert c.count(DepKind.WW) == 2

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            Cycle(())


class TestDepends:
    """Definition 8: the transitive dependency relation."""

    def test_direct_dependency(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        dsg = DSG(h)
        assert dsg.directly_depends(1, 2)
        assert dsg.depends(1, 2)
        assert not dsg.depends(2, 1)

    def test_transitive_dependency(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(y2) c2 r3(y2) c3")
        dsg = DSG(h)
        assert dsg.depends(1, 3)
        assert not dsg.directly_depends(1, 3)

    def test_anti_edges_are_not_dependencies(self):
        # Only an rw edge from T1 to T2: T2 does not *depend* on T1.
        h = parse_history("r1(x0) c1 w2(x2) c2")
        dsg = DSG(h)
        assert not dsg.depends(1, 2)

    def test_not_reflexive(self):
        h = parse_history("w1(x1) c1")
        assert not DSG(h).depends(1, 1)

    def test_paper_pl2_reading(self):
        """Section 5.2 item 3: if T2 depends on T1, T1 cannot depend on T2
        — equivalent to no G1c — checked on a G1c witness."""
        h = parse_history("w1(x1) w2(y2) r1(y2) r2(x1) c1 c2")
        dsg = DSG(h)
        assert dsg.depends(1, 2) and dsg.depends(2, 1)  # the violation
        from repro.core import Analysis
        from repro.core.phenomena import Phenomenon

        assert Analysis(h).exhibits(Phenomenon.G1C)
