"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HistoryError",
    "MalformedHistoryError",
    "VersionOrderError",
    "ParseError",
    "PredicateError",
    "EngineError",
    "TransactionAborted",
    "DeadlockError",
    "ValidationFailure",
    "WriteConflict",
    "InvalidOperation",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HistoryError(ReproError):
    """Base class for errors concerning transaction histories."""


class MalformedHistoryError(HistoryError):
    """The history violates one of the well-formedness constraints of
    Section 4.2 of the paper (e.g. a read of a version before its write,
    a transaction with two commit events, or a read of an unborn version).
    """


class VersionOrderError(HistoryError):
    """The version order part of a history is inconsistent (e.g. it orders a
    version of an aborted transaction, repeats a version, places a dead
    version before a visible one, or omits an installed version).
    """


class ParseError(HistoryError):
    """The textual history notation could not be parsed."""

    def __init__(self, message: str, token: str | None = None, position: int | None = None):
        self.token = token
        self.position = position
        if token is not None:
            message = f"{message} (token {token!r}"
            if position is not None:
                message += f" at index {position}"
            message += ")"
        super().__init__(message)


class PredicateError(ReproError):
    """A predicate was applied to an object or version it cannot evaluate."""


class EngineError(ReproError):
    """Base class for errors raised by the transactional engine."""


class TransactionAborted(EngineError):
    """Raised inside a transaction program when the scheduler aborts the
    transaction (deadlock victim, failed OCC validation, first-committer-wins
    conflict, ...).  The ``reason`` attribute carries a short machine-readable
    cause such as ``"deadlock"`` or ``"occ-validation"``.
    """

    def __init__(self, tid: int, reason: str):
        self.tid = tid
        self.reason = reason
        super().__init__(f"transaction T{tid} aborted: {reason}")


class DeadlockError(TransactionAborted):
    """A deadlock victim abort."""

    def __init__(self, tid: int):
        super().__init__(tid, "deadlock")


class ValidationFailure(TransactionAborted):
    """An optimistic transaction failed backward validation at commit."""

    def __init__(self, tid: int, conflicting_tid: int):
        self.conflicting_tid = conflicting_tid
        super().__init__(tid, f"occ-validation against T{conflicting_tid}")


class WriteConflict(TransactionAborted):
    """A snapshot-isolation transaction lost a first-committer-wins race."""

    def __init__(self, tid: int, obj: str, conflicting_tid: int):
        self.obj = obj
        self.conflicting_tid = conflicting_tid
        super().__init__(tid, f"first-committer-wins on {obj} against T{conflicting_tid}")


class WouldBlock(EngineError):
    """A (locking) scheduler cannot grant the lock an operation needs right
    now.  The simulator catches this, parks the transaction, and retries the
    operation once a holder releases; direct callers driving transactions by
    hand see it raised with the holders listed.
    """

    def __init__(self, tid: int, resource: str, holders):
        self.tid = tid
        self.resource = resource
        self.holders = frozenset(holders)
        pretty = ", ".join(f"T{t}" for t in sorted(self.holders))
        super().__init__(
            f"T{tid} must wait for {resource} held by {pretty or 'nobody'}"
        )


class InvalidOperation(EngineError):
    """An operation was issued against a transaction in the wrong state
    (e.g. reading after commit, or committing twice)."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
