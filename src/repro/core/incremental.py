"""Incremental (online) phenomenon analysis.

:class:`IncrementalAnalysis` consumes history events one at a time and
maintains, between events, everything the batch checker derives from a full
:class:`~repro.core.history.History`:

* per-object version chains (the version order ``<<``), including the
  paper's implicit *setup* versions discovered on first read;
* the three direct-conflict edge sets of Section 4.4 — ``ww``/``wr``/``rw``,
  item and predicate flavours — keyed for O(1) dedup and cursor-flag merge;
* the G1a/G1b witness sets.

G0/G1/G2 queries are then O(1) in the steady state: each cycle phenomenon
has a :class:`_CycleMonitor` — a Pearce–Kelly dynamic topological order
over its filtered edge set — that detects the cycle at the *edge insert*
that closes it, and presence is monotone over a growing history so a
positive verdict is cached permanently.  Only the anti-dependency
phenomena (G2/G2-item) ever fall back to a full SCC pass
(:mod:`repro.core.graph`), and only in the narrow regime where their view
contains a cycle that has not yet been proven to thread an anti-dependency
edge.  Appending one transaction and re-querying therefore costs amortised
O(new edges), not O(history) — the asymptotic gap
``bench_scaling_incremental`` pins.

Edges are *activated* lazily: a conflict materialises only once both
endpoint transactions have committed, mirroring the batch extractors'
restriction to ``committed_all``.  Most chain updates are appends and apply
purely incrementally; the rare structural mutation (a mid-chain insert from
an out-of-order install key or a late-discovered setup version) triggers a
localized rebuild of the affected object's edges only.

Install order
-------------

Batch histories order versions either explicitly or by the default rule
(committed transactions' final write events).  The incremental analysis
supports the same spectrum through install keys:

* ``order_mode="event"`` (default) keys a committed final version by its
  write event's index — exactly the :class:`History` default order;
* ``order_mode="commit"`` keys by a monotone commit counter — the order
  multi-version engines and :func:`~repro.workloads.synthetic_history` use;
* per-commit ``positions`` (as passed by
  :meth:`~repro.engine.recorder.HistoryRecorder.commit`) override the key
  per object;
* ``version_order_hint`` pins the final chain of selected objects outright
  (used when replaying a history whose explicit order is known up front).

``to_history()`` materialises the accumulated events and chains as a
regular :class:`History`, and ``check()`` runs the batch checker over it
when full witness reports are needed; the incremental layer itself answers
presence and level queries without that round trip.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from . import graph as _g
from .conflicts import DepKind, Edge, PredicateDepMode
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .objects import Version, relation_of
from .phenomena import Phenomenon, PhenomenonReport, Witness
from .predicates import Predicate, VersionSet

__all__ = ["IncrementalAnalysis"]

#: Phenomena the incremental layer answers directly.
CORE_PHENOMENA: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1A,
    Phenomenon.G1B,
    Phenomenon.G1C,
    Phenomenon.G1,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)

_EdgeKey = Tuple[int, int, DepKind, str, Optional[Version], Optional[Predicate]]


class _PreadRec:
    """Mutable record of one predicate read."""

    __slots__ = ("tid", "predicate", "vset", "committed")

    def __init__(self, tid: int, predicate: Predicate, vset: VersionSet):
        self.tid = tid
        self.predicate = predicate
        self.vset = vset
        self.committed = False


class _CycleMonitor:
    """Incremental cycle detection over one filtered view of the DSG.

    Maintains a topological order of the collapsed transaction graph with
    the Pearce–Kelly dynamic algorithm: inserting an edge that already
    respects the order costs O(1) (the overwhelmingly common case — DSG
    edges mostly point from older commits to newer ones), and a violating
    insert reorders only the affected region between the two endpoints'
    ranks.  The first insert that closes a cycle latches :attr:`has_cycle`.

    The latch is permanent because cycle presence in every view we monitor
    is monotone over a growing history: chain repairs replace edges with
    transitive refinements (a mid-chain insert turns ``u->w`` into
    ``u->v, v->w``), so a repair can reroute a cycle but never break the
    last one.  Removals therefore only decrement the pair refcounts; they
    never re-open the latch — which makes every subsequent presence query
    O(1).
    """

    __slots__ = ("order", "_next_rank", "fwd", "back", "count", "has_cycle")

    def __init__(self) -> None:
        self.order: Dict[int, int] = {}
        self._next_rank = 0
        self.fwd: Dict[int, Set[int]] = {}
        self.back: Dict[int, Set[int]] = {}
        self.count: Dict[Tuple[int, int], int] = {}
        self.has_cycle = False

    def _rank(self, node: int) -> int:
        rank = self.order.get(node)
        if rank is None:
            rank = self.order[node] = self._next_rank
            self._next_rank += 1
            self.fwd[node] = set()
            self.back[node] = set()
        return rank

    def add(self, u: int, v: int) -> None:
        if u == v:
            return  # a self-loop is a singleton SCC, not a cycle
        refs = self.count.get((u, v), 0)
        self.count[(u, v)] = refs + 1
        if refs:
            return  # collapsed pair already in the graph
        rank_u, rank_v = self._rank(u), self._rank(v)
        self.fwd[u].add(v)
        self.back[v].add(u)
        if self.has_cycle or rank_u < rank_v:
            return
        # Order violated: discover the affected region (Pearce–Kelly).
        # Forward from v, pruned to ranks below rank(u): in a valid order
        # any v=>u path stays inside that window, so meeting u here is the
        # definitive cycle test for the new edge.
        order, fwd, back = self.order, self.fwd, self.back
        lower, upper = rank_v, rank_u
        delta_f: List[int] = []
        seen = {v}
        stack = [v]
        while stack:
            node = stack.pop()
            delta_f.append(node)
            for succ in fwd[node]:
                if succ == u:
                    self.has_cycle = True
                    return
                if succ not in seen and order[succ] < upper:
                    seen.add(succ)
                    stack.append(succ)
        # Backward from u, pruned to ranks above rank(v).
        delta_b: List[int] = []
        seen = {u}
        stack = [u]
        while stack:
            node = stack.pop()
            delta_b.append(node)
            for pred in back[node]:
                if pred not in seen and order[pred] > lower:
                    seen.add(pred)
                    stack.append(pred)
        # Re-rank: the affected nodes permute among their own old ranks —
        # ancestors of u first, then descendants of v, each group keeping
        # its relative order.  Nodes outside the region are untouched.
        delta_b.sort(key=order.__getitem__)
        delta_f.sort(key=order.__getitem__)
        moved = delta_b + delta_f
        for rank, node in zip(sorted(order[n] for n in moved), moved):
            order[node] = rank

    def remove(self, u: int, v: int) -> None:
        if u == v:
            return
        refs = self.count.get((u, v), 0)
        if refs <= 1:
            self.count.pop((u, v), None)
            if refs:
                self.fwd[u].discard(v)
                self.back[v].discard(u)
        else:
            self.count[(u, v)] = refs - 1


class IncrementalAnalysis:
    """Online DSG maintenance and G-phenomenon detection.

    Parameters
    ----------
    mode:
        Predicate-read-dependency quantification (as in the batch checker).
    order_mode:
        ``"event"`` or ``"commit"`` — how committed final versions are keyed
        into their object's version order (see the module docstring).
    version_order_hint:
        Optional explicit chains ``{obj: [v1, v2, ...]}``; versions listed
        here install at their hinted position regardless of ``order_mode``.
    watch:
        Phenomena to probe after every consumed event; ``on_phenomenon(ph,
        analysis)`` fires the first time each one becomes present — this is
        the engine's commit-time online monitor hook.
    """

    def __init__(
        self,
        *,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        order_mode: str = "event",
        version_order_hint: Optional[Mapping[str, Sequence[Version]]] = None,
        watch: Iterable[Phenomenon] = (),
        on_phenomenon: Optional[Callable[[Phenomenon, "IncrementalAnalysis"], None]] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ):
        if order_mode not in ("event", "commit"):
            raise ValueError(f"unknown order_mode {order_mode!r}")
        # Optional observability sinks (see :mod:`repro.observability`):
        # per-event/per-edge counters and phenomenon events.
        self.metrics = metrics
        self.tracer = tracer
        self._ev_counter = (
            metrics.counter(
                "incremental_events_total", "events consumed by online analyses"
            ).labels()
            if metrics is not None
            else None
        )
        self._edge_counter = (
            metrics.counter(
                "incremental_edges_total", "DSG edges inserted by online analyses"
            ).labels()
            if metrics is not None
            else None
        )
        self.mode = mode
        self.order_mode = order_mode
        self.events: List[Event] = []
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()
        self._hint_key: Dict[Version, int] = {}
        if version_order_hint:
            for chain in version_order_hint.values():
                for i, v in enumerate(chain):
                    if not v.is_unborn:
                        self._hint_key[v] = i
        # --- chains -----------------------------------------------------
        self._chain: Dict[str, List[Version]] = {}
        self._index: Dict[str, Dict[Version, int]] = {}
        self._setup_count: Dict[str, int] = {}
        self._install_keys: Dict[str, List[Any]] = {}  # committed section keys
        self._commit_counter = 0
        # --- events indexes --------------------------------------------
        self._writes: Dict[Version, Write] = {}
        self._versions_of_tid: Dict[int, List[Version]] = {}
        self._final_seq: Dict[Tuple[str, int], int] = {}
        self._final_write_event: Dict[Tuple[str, int], int] = {}
        self._reads_by_version: Dict[Version, List[Read]] = {}
        self._reads_of_tid: Dict[int, List[Read]] = {}
        self._preads_of_tid: Dict[int, List[_PreadRec]] = {}
        self._preads_by_relation: Dict[str, List[_PreadRec]] = {}
        self._preads_by_vset_version: Dict[Version, List[_PreadRec]] = {}
        self._setup_versions: Set[Version] = set()
        self._setup_value: Dict[Version, Any] = {}
        self._objects_by_relation: Dict[str, List[str]] = {}
        self._known_objects: Set[str] = set()
        self._node_tids: Set[int] = set()  # committed txns + setup installers
        # --- edges and verdict caches ----------------------------------
        self._edges: Dict[_EdgeKey, Edge] = {}
        self._edge_keys_by_obj: Dict[str, Set[_EdgeKey]] = {}
        self._g1a: Set[Tuple[int, Version]] = set()
        self._g1b: Set[Tuple[int, Version]] = set()
        self._gen = 0
        # Incremental cycle monitors, one per phenomenon edge filter:
        # ww only (G0), ww+wr (G1c), everything (gates G2), and everything
        # except predicate anti-dependencies (gates G2-item).
        self._mon_g0 = _CycleMonitor()
        self._mon_g1c = _CycleMonitor()
        self._mon_full = _CycleMonitor()
        self._mon_item = _CycleMonitor()
        # Phenomena already proven present — permanent (presence over a
        # growing history is monotone), so re-queries are O(1).
        self._present: Set[Phenomenon] = set()
        self._presence_cache: Dict[Phenomenon, Tuple[int, bool]] = {}
        self._match_caches: Dict[int, Tuple[Predicate, Dict[Version, bool]]] = {}
        # --- monitoring -------------------------------------------------
        self.watch: Tuple[Phenomenon, ...] = tuple(watch)
        for ph in self.watch:
            if ph not in CORE_PHENOMENA:
                raise ValueError(
                    f"cannot watch {ph}: only core phenomena "
                    "(G0/G1a/G1b/G1c/G1/G2-item/G2) are maintained online"
                )
        self.on_phenomenon = on_phenomenon
        self._fired: Set[Phenomenon] = set()

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------

    def add(
        self,
        event: Event,
        *,
        finals: Optional[Mapping[str, Version]] = None,
        positions: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Consume one event.

        ``finals``/``positions`` apply to :class:`Commit` events only and
        mirror :meth:`HistoryRecorder.commit`: the versions to install (by
        default the transaction's final write per object) and their install
        keys (by default per ``order_mode``).
        """
        index = len(self.events)
        self.events.append(event)
        if self._ev_counter is not None:
            self._ev_counter.inc()
        if isinstance(event, Write):
            self._on_write(event, index)
        elif isinstance(event, Read):
            self._on_read(event)
        elif isinstance(event, PredicateRead):
            self._on_pread(event)
        elif isinstance(event, Commit):
            self._on_commit(event.tid, finals, positions)
        elif isinstance(event, Abort):
            self._on_abort(event.tid)
        elif isinstance(event, Begin):
            pass
        if self.watch and self.on_phenomenon is not None:
            for ph in self.watch:
                if ph not in self._fired and self.exhibits(ph):
                    self._fired.add(ph)
                    self.on_phenomenon(ph, self)

    def add_all(self, events: Iterable[Event]) -> "IncrementalAnalysis":
        """Feed a whole event sequence (convenience for tests/benchmarks)."""
        for ev in events:
            self.add(ev)
        return self

    def finish(self) -> None:
        """Section 4.2's completion rule: abort every unfinished
        transaction (mirrors ``History(auto_complete=True)``)."""
        finished = self.committed | self.aborted
        pending = []
        seen: Dict[int, None] = {}
        for ev in self.events:
            seen.setdefault(ev.tid, None)
        for tid in seen:
            if tid not in finished:
                pending.append(Abort(tid))
        for ev in pending:
            self.add(ev)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_write(self, ev: Write, index: int) -> None:
        v = ev.version
        self._register_object(v.obj)
        self._writes[v] = ev
        self._versions_of_tid.setdefault(v.tid, []).append(v)
        if v in self._setup_versions:
            # A version previously mis-classified as setup (read before its
            # write — invalid per Section 4.2, but stay consistent anyway).
            self._setup_versions.discard(v)
            self._setup_value.pop(v, None)
            self._invalidate_matches(v)
        key = (v.obj, v.tid)
        prev_seq = self._final_seq.get(key)
        if prev_seq is None or v.seq > prev_seq:
            if prev_seq is not None:
                self._now_intermediate(Version(v.obj, v.tid, prev_seq))
            self._final_seq[key] = v.seq
            self._final_write_event[key] = index
        else:
            self._now_intermediate(v)

    def _now_intermediate(self, old: Version) -> None:
        """``old`` stopped being its writer's final modification; committed
        transactions that observed it are now G1b witnesses."""
        for read in self._reads_by_version.get(old, ()):
            if read.tid != old.tid and read.tid in self.committed:
                self._add_g1b(read.tid, old)
        for rec in self._preads_by_vset_version.get(old, ()):
            if rec.committed and rec.tid != old.tid:
                self._add_g1b(rec.tid, old)

    def _on_read(self, ev: Read) -> None:
        v = ev.version
        self._register_object(v.obj)
        self._reads_by_version.setdefault(v, []).append(ev)
        self._reads_of_tid.setdefault(ev.tid, []).append(ev)
        self._note_possible_setup(v)
        if (
            v in self._setup_versions
            and ev.value is not None
            and self._setup_value.get(v) is None
        ):
            # First observed value of a setup version: predicate matching
            # may change retroactively — repair the object.
            self._setup_value[v] = ev.value
            self._invalidate_matches(v)
            self._repair_object(v.obj)

    def _on_pread(self, ev: PredicateRead) -> None:
        rec = _PreadRec(ev.tid, ev.predicate, ev.vset)
        self._preads_of_tid.setdefault(ev.tid, []).append(rec)
        for rel in ev.predicate.relations:
            self._preads_by_relation.setdefault(rel, []).append(rec)
        for v in ev.vset.versions():
            self._register_object(v.obj)
            self._preads_by_vset_version.setdefault(v, []).append(rec)
            self._note_possible_setup(v)
        for obj in ev.vset.objects():
            self._register_object(obj)

    def _on_commit(
        self,
        tid: int,
        finals: Optional[Mapping[str, Version]],
        positions: Optional[Mapping[str, Any]],
    ) -> None:
        self.committed.add(tid)
        self._node_tids.add(tid)
        if finals is None:
            finals = {}
            for written in self._versions_of_tid.get(tid, ()):
                obj = written.obj
                if obj not in finals:
                    finals[obj] = Version(obj, tid, self._final_seq[(obj, tid)])
        for obj in sorted(finals):
            v = finals[obj]
            if positions is not None and obj in positions:
                key = (0, positions[obj])
            elif v in self._hint_key:
                key = (-1, self._hint_key[v])
            elif self.order_mode == "commit":
                self._commit_counter += 1
                key = (0, self._commit_counter)
            else:
                key = (0, self._final_write_event.get((obj, tid), len(self.events)))
            self._install(obj, v, key)
        # Item reads by the newly committed transaction.
        for read in self._reads_of_tid.get(tid, ()):
            v = read.version
            writer = v.tid
            if writer in self.aborted:
                self._add_g1a(tid, v)
            if writer != tid and self._is_intermediate(v):
                self._add_g1b(tid, v)
            if (
                writer != tid
                and not v.is_unborn
                and writer in self._node_tids
                and writer not in self.aborted
            ):
                self._add_edge(Edge(writer, tid, DepKind.WR, v.obj, v))
            idx = self._index.get(v.obj, {}).get(v)
            if idx is not None:
                chain = self._chain[v.obj]
                if idx + 1 < len(chain):
                    nxt = chain[idx + 1]
                    if nxt.tid != tid:
                        self._add_edge(
                            Edge(
                                tid,
                                nxt.tid,
                                DepKind.RW,
                                v.obj,
                                nxt,
                                cursor=read.cursor,
                            )
                        )
        # Predicate reads by the newly committed transaction.
        for rec in self._preads_of_tid.get(tid, ()):
            rec.committed = True
            for v in rec.vset.versions():
                if v.tid in self.aborted:
                    self._add_g1a(tid, v)
                if v.tid != tid and self._is_intermediate(v):
                    self._add_g1b(tid, v)
            for obj in self._vset_objects(rec):
                self._pread_read_edges(rec, obj)
                self._pread_anti_edges(rec, obj)
        # The new commit as a read-dependency *source*: readers that
        # committed earlier were waiting on this writer.
        for v in self._versions_of_tid.get(tid, ()):
            for read in self._reads_by_version.get(v, ()):
                if read.tid != tid and read.tid in self.committed:
                    self._add_edge(Edge(tid, read.tid, DepKind.WR, v.obj, v))

    def _on_abort(self, tid: int) -> None:
        self.aborted.add(tid)
        for v in self._versions_of_tid.get(tid, ()):
            for read in self._reads_by_version.get(v, ()):
                if read.tid in self.committed:
                    self._add_g1a(read.tid, v)
            for rec in self._preads_by_vset_version.get(v, ()):
                if rec.committed:
                    self._add_g1a(rec.tid, v)

    # ------------------------------------------------------------------
    # chains
    # ------------------------------------------------------------------

    def _register_object(self, obj: str) -> None:
        if obj in self._known_objects:
            return
        self._known_objects.add(obj)
        unborn = Version.unborn(obj)
        self._chain[obj] = [unborn]
        self._index[obj] = {unborn: 0}
        self._setup_count[obj] = 0
        self._install_keys[obj] = []
        self._objects_by_relation.setdefault(relation_of(obj), []).append(obj)

    def _note_possible_setup(self, v: Version) -> None:
        """A read (or version-set selection) of a never-written version is a
        setup version: implicit initial state, installed right after the
        unborn version (cf. ``History._build_order``)."""
        if v.is_unborn or v in self._writes or v in self._setup_versions:
            return
        self._setup_versions.add(v)
        self._setup_value.setdefault(v, None)
        self._node_tids.add(v.tid)
        obj = v.obj
        if v in self._hint_key:
            # An explicit order hint may place a setup version anywhere in
            # the chain; honour it instead of the default front position.
            self._install(obj, v, (-1, self._hint_key[v]))
            return
        chain = self._chain[obj]
        pos = 1 + self._setup_count[obj]
        self._setup_count[obj] += 1
        if pos == len(chain):
            chain.append(v)
            self._index[obj][v] = pos
            self._append_effects(obj, pos)
        else:
            chain.insert(pos, v)
            self._repair_object(obj)

    def _install(self, obj: str, v: Version, key: Any) -> None:
        """Install a committed final version with the given sort key."""
        self._register_object(obj)
        if v in self._index[obj]:
            return  # already installed (duplicate finals are harmless)
        keys = self._install_keys[obj]
        at = bisect_right(keys, key)
        keys.insert(at, key)
        chain = self._chain[obj]
        pos = 1 + self._setup_count[obj] + at
        if pos == len(chain):
            chain.append(v)
            self._index[obj][v] = pos
            self._append_effects(obj, pos)
        else:
            chain.insert(pos, v)
            self._repair_object(obj)

    def _append_effects(self, obj: str, pos: int) -> None:
        """Edge updates after appending ``chain[pos]`` at the tail."""
        chain = self._chain[obj]
        v = chain[pos]
        prev = chain[pos - 1]
        if not prev.is_unborn and prev.tid != v.tid:
            self._add_edge(Edge(prev.tid, v.tid, DepKind.WW, obj, v))
        for read in self._reads_by_version.get(prev, ()):
            if read.tid in self.committed and read.tid != v.tid:
                self._add_edge(
                    Edge(read.tid, v.tid, DepKind.RW, obj, v, cursor=read.cursor)
                )
        for rec in self._preads_by_relation.get(relation_of(obj), ()):
            if not rec.committed:
                continue
            selected = rec.vset.get(obj) or Version.unborn(obj)
            if selected == v:
                # The selected version itself just installed: the read-
                # dependency edges of this (pread, object) pair now exist.
                self._pread_read_edges(rec, obj)
                continue
            idx = 0 if selected.is_unborn else self._index[obj].get(selected)
            if idx is None:
                continue  # uninstalled selection yields no edges (yet)
            if pos > idx and v.tid != rec.tid and self._changes_at(obj, pos, rec.predicate):
                self._add_edge(
                    Edge(rec.tid, v.tid, DepKind.RW, obj, v, predicate=rec.predicate)
                )

    def _repair_object(self, obj: str) -> None:
        """Localized rebuild after a structural (non-append) chain change:
        drop and recompute every chain-dependent edge of ``obj``."""
        for key in self._edge_keys_by_obj.get(obj, ()):
            dropped = self._edges.pop(key, None)
            if dropped is not None:
                self._feed_monitors(dropped, _CycleMonitor.remove)
        self._edge_keys_by_obj[obj] = set()
        self._gen += 1
        chain = self._chain[obj]
        self._index[obj] = {v: i for i, v in enumerate(chain)}
        for pos in range(1, len(chain)):
            v, prev = chain[pos], chain[pos - 1]
            if not prev.is_unborn and prev.tid != v.tid:
                self._add_edge(Edge(prev.tid, v.tid, DepKind.WW, obj, v))
            for read in self._reads_by_version.get(prev, ()):
                if read.tid in self.committed and read.tid != v.tid:
                    self._add_edge(
                        Edge(read.tid, v.tid, DepKind.RW, obj, v, cursor=read.cursor)
                    )
        for rec in self._preads_by_relation.get(relation_of(obj), ()):
            if rec.committed:
                self._pread_read_edges(rec, obj)
                self._pread_anti_edges(rec, obj)

    # ------------------------------------------------------------------
    # predicate machinery
    # ------------------------------------------------------------------

    def _vset_objects(self, rec: _PreadRec) -> Tuple[str, ...]:
        objs: Dict[str, None] = {}
        for rel in rec.predicate.relations:
            for obj in self._objects_by_relation.get(rel, ()):
                objs.setdefault(obj, None)
        for obj in rec.vset.objects():
            if rec.predicate.covers(obj):
                objs.setdefault(obj, None)
        return tuple(objs)

    def _match_cache(self, predicate: Predicate) -> Dict[Version, bool]:
        entry = self._match_caches.get(id(predicate))
        if entry is None or entry[0] is not predicate:
            entry = (predicate, {})
            self._match_caches[id(predicate)] = entry
        return entry[1]

    def _invalidate_matches(self, version: Version) -> None:
        for _pred, cache in self._match_caches.values():
            cache.pop(version, None)

    def _version_matches(self, predicate: Predicate, v: Version) -> bool:
        cache = self._match_cache(predicate)
        hit = cache.get(v)
        if hit is not None:
            return hit
        if v.is_unborn:
            result = False
        else:
            write = self._writes.get(v)
            if write is None:
                result = (
                    v in self._setup_versions
                    and predicate.matches(v, self._setup_value.get(v))
                )
            elif write.dead:
                result = False
            else:
                result = predicate.matches(v, write.value)
        cache[v] = result
        return result

    def _changes_at(self, obj: str, pos: int, predicate: Predicate) -> bool:
        chain = self._chain[obj]
        return self._version_matches(predicate, chain[pos]) != self._version_matches(
            predicate, chain[pos - 1]
        )

    def _selected_index(self, rec: _PreadRec, obj: str) -> Optional[int]:
        selected = rec.vset.get(obj)
        if selected is None:
            return 0  # implicit unborn selection
        return self._index[obj].get(selected)

    def _pread_read_edges(self, rec: _PreadRec, obj: str) -> None:
        idx = self._selected_index(rec, obj)
        if idx is None or idx == 0:
            return
        chain = self._chain[obj]
        changers = [
            k for k in range(1, idx + 1) if self._changes_at(obj, k, rec.predicate)
        ]
        if self.mode is PredicateDepMode.LATEST:
            changers = changers[-1:]
        for k in changers:
            v = chain[k]
            if v.tid != rec.tid:
                self._add_edge(
                    Edge(v.tid, rec.tid, DepKind.WR, obj, v, predicate=rec.predicate)
                )

    def _pread_anti_edges(self, rec: _PreadRec, obj: str) -> None:
        idx = self._selected_index(rec, obj)
        if idx is None:
            return
        chain = self._chain[obj]
        for k in range(idx + 1, len(chain)):
            v = chain[k]
            if v.tid != rec.tid and self._changes_at(obj, k, rec.predicate):
                self._add_edge(
                    Edge(rec.tid, v.tid, DepKind.RW, obj, v, predicate=rec.predicate)
                )

    # ------------------------------------------------------------------
    # edge store and verdicts
    # ------------------------------------------------------------------

    def _add_edge(self, edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.obj, edge.version, edge.predicate)
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = edge
            self._gen += 1
            if self._edge_counter is not None:
                self._edge_counter.inc()
            # Chain-dependent flavours are re-derived on object repair.
            if edge.kind is DepKind.WW or edge.kind is DepKind.RW or edge.via_predicate:
                self._edge_keys_by_obj.setdefault(edge.obj, set()).add(key)
            self._feed_monitors(edge, _CycleMonitor.add)
        elif edge.cursor and not existing.cursor:
            self._edges[key] = edge
            self._gen += 1

    def _feed_monitors(self, edge: Edge, op) -> None:
        """Apply ``op`` (add/remove of one collapsed pair) to every cycle
        monitor whose filter admits ``edge``."""
        src, dst = edge.src, edge.dst
        op(self._mon_full, src, dst)
        if edge.kind is DepKind.WW:
            op(self._mon_g0, src, dst)
            op(self._mon_g1c, src, dst)
            op(self._mon_item, src, dst)
        elif edge.kind is DepKind.WR:
            op(self._mon_g1c, src, dst)
            op(self._mon_item, src, dst)
        elif not edge.via_predicate:
            op(self._mon_item, src, dst)

    def _add_g1a(self, tid: int, version: Version) -> None:
        if (tid, version) not in self._g1a:
            self._g1a.add((tid, version))
            self._gen += 1

    def _add_g1b(self, tid: int, version: Version) -> None:
        if version in self._setup_versions:
            return  # setup versions are never intermediate
        if (tid, version) not in self._g1b:
            self._g1b.add((tid, version))
            self._gen += 1

    def _is_intermediate(self, v: Version) -> bool:
        if v.is_unborn or v not in self._writes:
            return False
        return self._final_seq.get((v.obj, v.tid)) != v.seq

    @property
    def edges(self) -> List[Edge]:
        """The direct-conflict edges accumulated so far."""
        return list(self._edges.values())

    @property
    def events_consumed(self) -> int:
        """Events fed through :meth:`add` so far (free to read — no
        registry required)."""
        return len(self.events)

    @property
    def edges_inserted(self) -> int:
        """Distinct DSG edges currently held (free to read)."""
        return len(self._edges)

    def _cycle_presence(self, keep: Callable[[Edge], bool], special=None) -> bool:
        """Whether the kept subgraph has a cycle (``special is None``) or a
        cycle through at least one ``special`` edge."""
        kept = [e for e in self._edges.values() if keep(e)]
        adj = _g.adjacency(kept)
        comp = _g.component_index(adj)
        if special is None:
            counts: Dict[int, int] = {}
            for node, c in comp.items():
                counts[c] = counts.get(c, 0) + 1
            return any(n >= 2 for n in counts.values())
        return any(
            special(e) and comp.get(e.src) == comp.get(e.dst) for e in kept
        )

    def _gated_cycle(self, monitor: _CycleMonitor, phenomenon, keep, special) -> bool:
        """Presence of a special-edge cycle, gated on the cheap monitor.

        While ``monitor``'s view is acyclic the phenomenon is trivially
        absent (O(1)).  Once the view has *some* cycle it may still be a
        pure ww/wr (G1c) cycle, so the anti-dependency question falls back
        to the full SCC test, cached against the edge-set generation — the
        slow path runs only until the verdict flips to (permanently) True.
        """
        if not monitor.has_cycle:
            return False
        cached = self._presence_cache.get(phenomenon)
        if cached is not None and cached[0] == self._gen:
            return cached[1]
        present = self._cycle_presence(keep, special)
        self._presence_cache[phenomenon] = (self._gen, present)
        return present

    def exhibits(self, phenomenon: Phenomenon) -> bool:
        """Presence of one core phenomenon over the events consumed so far.

        O(1) in the common case: G1a/G1b read their witness sets, the
        cycle phenomena read the incremental monitors, and any phenomenon
        proven present stays present (growing a history never removes
        events, so presence is monotone) and is answered from a permanent
        cache.
        """
        if phenomenon in self._present:
            return True
        if phenomenon is Phenomenon.G1A:
            present = bool(self._g1a)
        elif phenomenon is Phenomenon.G1B:
            present = bool(self._g1b)
        elif phenomenon is Phenomenon.G0:
            present = self._mon_g0.has_cycle
        elif phenomenon is Phenomenon.G1C:
            present = self._mon_g1c.has_cycle
        elif phenomenon is Phenomenon.G1:
            present = (
                self.exhibits(Phenomenon.G1A)
                or self.exhibits(Phenomenon.G1B)
                or self.exhibits(Phenomenon.G1C)
            )
        elif phenomenon is Phenomenon.G2:
            present = self._gated_cycle(
                self._mon_full,
                phenomenon,
                lambda e: True,
                lambda e: e.kind is DepKind.RW,
            )
        elif phenomenon is Phenomenon.G2_ITEM:
            present = self._gated_cycle(
                self._mon_item,
                phenomenon,
                lambda e: not (e.kind is DepKind.RW and e.via_predicate),
                lambda e: e.kind is DepKind.RW and not e.via_predicate,
            )
        else:
            raise ValueError(
                f"{phenomenon} is not maintained incrementally; materialise "
                "with to_history()/check() for extension phenomena"
            )
        if present:
            self._present.add(phenomenon)
        return present

    def report(self, phenomenon: Phenomenon) -> PhenomenonReport:
        """Presence-only report (no witnesses — those need the batch
        analysis, see :meth:`check`)."""
        present = self.exhibits(phenomenon)
        witnesses: Tuple[Witness, ...] = ()
        if phenomenon is Phenomenon.G1A and present:
            witnesses = tuple(
                Witness(
                    f"committed T{tid} observed {v}, written by aborted T{v.tid}",
                    tid=tid,
                )
                for tid, v in sorted(self._g1a, key=lambda p: (p[0], str(p[1])))
            )
        if phenomenon is Phenomenon.G1B and present:
            witnesses = tuple(
                Witness(
                    f"committed T{tid} observed intermediate version "
                    f"{v.label(explicit_seq=True)}",
                    tid=tid,
                )
                for tid, v in sorted(self._g1b, key=lambda p: (p[0], str(p[1])))
            )
        return PhenomenonReport(phenomenon, present, witnesses)

    def strongest_level(self, levels=None):
        """The strongest ANSI-chain level the history-so-far provides
        (``None`` when even PL-1 is violated), matching batch
        :func:`repro.core.levels.classify`."""
        from .levels import ANSI_CHAIN

        strongest = None
        for level in levels or ANSI_CHAIN:
            if not any(self.exhibits(p) for p in level.proscribed):
                if strongest is None or level.implies(strongest):
                    strongest = level
        return strongest

    def provides(self, level) -> bool:
        """Live certification: does the execution so far provide ``level``?

        True iff none of the level's proscribed phenomena is present.  The
        level must proscribe only core phenomena (the ANSI chain PL-1,
        PL-2, PL-2.99, PL-3); extension levels (PL-SI, PL-2+, PL-CS,
        PL-SS) need the batch checker — use :meth:`check`.  This is what
        the service layer calls after every commit to certify committed
        transactions at their declared levels while the workload runs.
        """
        from .levels import IsolationLevel

        if isinstance(level, str):
            level = IsolationLevel.from_string(level)
        for p in level.proscribed:
            if p not in CORE_PHENOMENA:
                raise ValueError(
                    f"{level} proscribes {p}, which is not maintained "
                    "incrementally; use check() for extension levels"
                )
        return not any(self.exhibits(p) for p in level.proscribed)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def to_history(self, *, validate: bool = False):
        """The consumed events and maintained version order as a batch
        :class:`~repro.core.history.History`."""
        from .history import History

        return History(
            self.events,
            {obj: tuple(chain[1:]) for obj, chain in self._chain.items()},
            validate=validate,
        )

    def check(self, **kwargs):
        """Full batch analysis (witnesses, extension levels) of the events
        consumed so far; see :func:`repro.check`."""
        from ..checker import check as batch_check

        return batch_check(self.to_history(), mode=self.mode, **kwargs)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"IncrementalAnalysis({len(self.events)} events, "
            f"{len(self.committed)} committed, {len(self._edges)} edges)"
        )
