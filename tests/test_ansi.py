"""Tests for the strict ANSI A1–A3 baseline (repro.baseline.ansi)."""

import pytest

import repro
from repro.baseline import (
    AnsiAnalysis,
    AnsiPhenomenon as A,
    ansi_strict_satisfies,
)
from repro.core import parse_history
from repro.core.canonical import H1, H2, H1_PRIME, H2_PRIME
from repro.core.levels import IsolationLevel as L


def analysis(text, **kw):
    return AnsiAnalysis(parse_history(text, **kw))


class TestA1:
    def test_completed_dirty_read(self):
        assert analysis("w1(x1) r2(x1) c2 a1").exhibits(A.A1)

    def test_writer_commits_no_a1(self):
        assert not analysis("w1(x1) r2(x1) c1 c2").exhibits(A.A1)

    def test_reader_aborts_no_a1(self):
        assert not analysis("w1(x1) r2(x1) a2 a1").exhibits(A.A1)


class TestA2:
    def test_completed_fuzzy_read(self):
        a = analysis("r1(x0, 10) w2(x2, 15) c2 r1(x2, 15) c1 [x0 << x2]")
        assert a.exhibits(A.A2)

    def test_no_reread_no_a2(self):
        """H1: T2 never re-reads x, so strict ANSI sees nothing — the
        ambiguity that forced the P-interpretation."""
        assert not AnsiAnalysis(H1.history).exhibits(A.A2)

    def test_uncommitted_writer_no_a2(self):
        # T2 never commits: the strict reading requires the full anomaly.
        a = analysis("r1(x0) w2(x2) r1(x0) c1 a2")
        assert not a.exhibits(A.A2)

    def test_own_rewrite_not_a2(self):
        a = analysis("r1(x0) w1(x1) r1(x1) c1")
        assert not a.exhibits(A.A2)


class TestA3:
    def test_completed_phantom(self):
        a = analysis(
            "r1(P: x0*) w2(y2) c2 r1(P: x0*, y2*) c1 [P matches: y2]"
        )
        assert a.exhibits(A.A3)

    def test_single_predicate_read_no_a3(self):
        a = analysis("r1(P: x0*) w2(y2) c2 c1 [P matches: y2]")
        assert not a.exhibits(A.A3)

    def test_irrelevant_change_no_a3(self):
        # y2 does not match: the second read's version set changed but the
        # matched set did not.
        a = analysis("r1(P: x0*) w2(y2) c2 r1(P: x0*, y2) c1")
        assert not a.exhibits(A.A3)


class TestUnsoundness:
    """The Section 2 story: strict ANSI admits non-serializable histories."""

    @pytest.mark.parametrize("entry", [H1, H2], ids=lambda e: e.name)
    def test_bad_histories_show_no_a_phenomenon(self, entry):
        a = AnsiAnalysis(entry.history)
        assert not any(a.exhibits(p) for p in A)
        assert ansi_strict_satisfies(entry.history, L.PL_3)
        assert not repro.satisfies(entry.history, L.PL_3).ok

    def test_dirty_write_invisible_to_strict_ansi(self):
        h = parse_history(
            "w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]"
        )
        assert ansi_strict_satisfies(h, L.PL_3)  # missing P0
        assert repro.classify(h) is None

    def test_read_uncommitted_always_admits(self):
        h = parse_history("w1(x1) r2(x1) c2 a1")
        assert ansi_strict_satisfies(h, L.PL_1)

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            ansi_strict_satisfies(H1.history, L.PL_SI)


class TestLevelPrefixes:
    def test_read_committed_proscribes_a1_only(self):
        dirty = parse_history("w1(x1) r2(x1) c2 a1")
        fuzzy = parse_history(
            "r1(x0, 10) w2(x2, 15) c2 r1(x2, 15) c1 [x0 << x2]"
        )
        assert not ansi_strict_satisfies(dirty, L.PL_2)
        assert ansi_strict_satisfies(fuzzy, L.PL_2)
        assert not ansi_strict_satisfies(fuzzy, L.PL_2_99)

    def test_good_histories_admitted_everywhere(self):
        for entry in (H1_PRIME, H2_PRIME):
            assert ansi_strict_satisfies(entry.history, L.PL_3)
