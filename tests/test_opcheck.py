"""The operation-interval checker, and its agreement with the DSG.

Unit tests drive :func:`repro.analysis.opcheck.check_operations` on
hand-built interval sets (chains, stale reads, unknown outcomes, disjoint
components, real-time windows).  The integration half pins the two-checker
contract from the replication work:

* **agreement** — every strict-serializable cluster run (strict 2PL at
  the primaries, reads never served by a lagging replica) gets the same
  verdict from both ends of the telescope: ``opcheck().ok`` and the
  online DSG monitor certifying PL-3;
* **divergence, explained** — weak runs serving stale replica reads fail
  opcheck with stale-read witnesses while the DSG (correctly) still
  certifies the declared weak level: isolation levels are properties of
  histories, not of client-visible value sequences.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Op, check_operations
from repro.core import IsolationLevel
from repro.service import (
    ClusterConfig,
    NetworkConfig,
    SessionGuarantees,
    StressConfig,
    run_stress,
)


def op(op_id, invoked, responded, reads=(), writes=(), session="c0",
       tid=None):
    return Op(
        op_id=op_id, session=session, tid=tid or op_id, invoked=invoked,
        responded=responded, reads=tuple(reads), writes=tuple(writes),
    )


class TestUnitIntervals:
    def test_empty_is_ok(self):
        result = check_operations([])
        assert result.ok and result.components == 0

    def test_serial_chain(self):
        ops = [
            op(1, 0, 1, writes=[("x", 1)]),
            op(2, 2, 3, reads=[("x", 1)], writes=[("x", 2)]),
            op(3, 4, 5, reads=[("x", 2)]),
        ]
        result = check_operations(ops, initial={"x": 0})
        assert result.ok
        assert result.windows == 3  # fully sequential: one op per window

    def test_stale_read_fails_with_witness(self):
        ops = [
            op(1, 0, 1, writes=[("x", 1)]),
            op(2, 2, 3, reads=[("x", 0)]),  # x=1 already settled
        ]
        result = check_operations(ops, initial={"x": 0})
        assert not result.ok
        (failure,) = result.failures
        (witness,) = failure["witnesses"]
        assert witness["obj"] == "x"
        assert witness["observed"] == 0
        assert witness["expected"] == 1
        assert "stale read" in result.explain()

    def test_concurrent_ops_commute(self):
        # Overlapping intervals: either order must be tried.
        ops = [
            op(1, 0, 10, writes=[("x", 1)]),
            op(2, 0, 10, reads=[("x", 1)], writes=[("x", 2)]),
            op(3, 11, 12, reads=[("x", 2)]),
        ]
        assert check_operations(ops, initial={"x": 0}).ok

    def test_real_time_order_enforced(self):
        # T2 invoked after T1 responded, so T1 < T2 in every witness
        # order; T2's read of the overwritten value cannot linearize.
        ops = [
            op(1, 0, 1, writes=[("x", 1)]),
            op(2, 5, 6, reads=[("x", 0)], writes=[("x", 7)]),
        ]
        assert not check_operations(ops, initial={"x": 0}).ok
        # The same reads with overlapping intervals are fine (T2 may
        # linearize before T1).
        ops = [
            op(1, 0, 6, writes=[("x", 1)]),
            op(2, 5, 6, reads=[("x", 0)], writes=[("x", 7)]),
        ]
        assert check_operations(ops, initial={"x": 0}).ok

    def test_unknown_outcome_is_optional(self):
        # The write op never got its commit reply; a later read may see
        # either the old or the new value.
        unknown = op(1, 0, None, writes=[("x", 1)])
        sees_new = op(2, 5, 6, reads=[("x", 1)])
        sees_old = op(3, 7, 8, reads=[("x", 0)])
        assert check_operations([unknown, sees_new], initial={"x": 0}).ok
        assert check_operations([unknown, sees_old], initial={"x": 0}).ok
        # But it cannot be both applied and not applied.
        result = check_operations(
            [unknown, sees_new, replace_read(sees_old, 9, 10)],
            initial={"x": 0},
        )
        assert not result.ok

    def test_unknown_read_only_dropped(self):
        result = check_operations(
            [op(1, 0, None, reads=[("x", 99)])], initial={"x": 0}
        )
        assert result.ok and result.ops == 0

    def test_disjoint_components_partition(self):
        ops = [
            op(1, 0, 1, writes=[("x", 1)]),
            op(2, 0, 1, writes=[("y", 1)]),
            op(3, 2, 3, reads=[("x", 1)]),
            op(4, 2, 3, reads=[("y", 1)]),
        ]
        result = check_operations(ops)
        assert result.ok and result.components == 2

    def test_budget_exceeded_raises(self):
        ops = [
            op(i, 0, 100, writes=[("x", i)]) for i in range(1, 9)
        ]
        with pytest.raises(RuntimeError, match="explored states"):
            check_operations(ops, initial={"x": 0}, max_states=10)

    def test_explain_on_success_counts(self):
        text = check_operations(
            [op(1, 0, 1, writes=[("x", 1)])], initial={"x": 0}
        ).explain()
        assert "strict-serializable" in text


def replace_read(o: Op, invoked: int, responded: int) -> Op:
    return Op(
        op_id=o.op_id + 100, session=o.session, tid=(o.tid or 0) + 100,
        invoked=invoked, responded=responded, reads=o.reads, writes=o.writes,
    )


FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)


def _strict_config(seed, *, guarantees=None, read_preference="primary"):
    return StressConfig(
        scheduler="locking", clients=4, txns_per_client=8, keys=8,
        ops_per_txn=2, seed=seed, network=FAULTY,
        cluster=ClusterConfig(shards=2, replicas=2),
        read_preference=read_preference,
        session_guarantees=guarantees,
        read_only_fraction=0.5,
    )


class TestAgreementWithDSG:
    """Strict-serializable runs: identical verdicts from both checkers."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_primary_reads_agree(self, seed):
        result = run_stress(_strict_config(seed))
        verdict = result.opcheck()
        assert verdict.ok, verdict.explain()
        assert result.monitor.provides(IsolationLevel.PL_3)
        assert result.strongest_level() == IsolationLevel.PL_3

    @pytest.mark.parametrize("seed", range(4))
    def test_guarded_replica_reads_agree(self, seed):
        """Causal+redirect routes every below-floor read back to the
        primary; on these seeds the result is strict-serializable and
        both checkers say so."""
        result = run_stress(
            _strict_config(
                seed,
                guarantees=SessionGuarantees(causal=True),
                read_preference="replica",
            )
        )
        assert result.session_violations == ()
        if result.strongest_level() == IsolationLevel.PL_3:
            assert result.opcheck().ok


#: Divergence table: weak configurations serving stale replica reads.
#: Each row: declared level, seed, cluster config — every row is a run
#: whose client-visible values admit no witness order while its history
#: certifies at the declared level.
DIVERGENCE_TABLE = [
    pytest.param(
        "PL-2", 1,
        ClusterConfig(
            shards=2, replicas=2, replication_every=12,
            replication_lag=(4, 10),
        ),
        id="pl2-slow-replication",
    ),
    pytest.param(
        "PL-2", 0,
        ClusterConfig(
            shards=2, replicas=2, replication_every=12,
            replication_lag=(4, 10),
            partition_primary_after_commits=(1, 5), heal_after=60,
        ),
        id="pl2-partitioned-primary",
    ),
]


class TestExplainedDivergence:
    """Weak runs: opcheck fails with witnesses, the DSG still certifies."""

    @pytest.mark.parametrize("level,seed,cluster", DIVERGENCE_TABLE)
    def test_stale_replica_reads_diverge(self, level, seed, cluster):
        config = StressConfig(
            scheduler="locking", level=level, clients=4, txns_per_client=10,
            keys=4, ops_per_txn=2, seed=seed, network=FAULTY, cluster=cluster,
            read_preference="replica", read_only_fraction=0.5,
        )
        result = run_stress(config)
        # The DSG end: every commit certified at the declared weak level.
        assert result.all_certified
        # The client end: stale values were really served...
        assert len(result.session_violations) >= 1
        # ...and the operation checker rejects them with explanations.
        verdict = result.opcheck()
        assert not verdict.ok
        witnesses = [
            w for failure in verdict.failures
            for w in failure["witnesses"]
        ]
        assert witnesses, "divergence must carry stale-read witnesses"
        assert "stale read" in verdict.explain()

    def test_divergence_is_deterministic(self):
        config = StressConfig(
            scheduler="locking", level="PL-2", clients=4,
            txns_per_client=10, keys=4, ops_per_txn=2, seed=0,
            network=FAULTY,
            cluster=ClusterConfig(
                shards=2, replicas=2, replication_every=12,
                replication_lag=(4, 10),
            ),
            read_preference="replica", read_only_fraction=0.5,
        )
        a, b = run_stress(config), run_stress(config)
        assert a.ops == b.ops
        assert a.opcheck().explain() == b.opcheck().explain()
