"""Start-ordered serialization graphs (Adya's thesis, Chapter 4).

Snapshot Isolation constrains not just what committed transactions read and
wrote but *when they started* relative to each other's commits.  The
start-ordered serialization graph ``SSG(H)`` is ``DSG(H)`` plus a
*start-dependency* edge ``T_i --so--> T_j`` whenever ``T_i``'s commit event
precedes ``T_j``'s start.

A transaction's start is its ``Begin`` event if it has one, else its first
event; histories written without ``Begin`` events therefore still have a
well-defined (if late) start point.  Implicit setup transactions committed
before the history began, so they start-precede every event transaction.
"""

from __future__ import annotations

from typing import List

from .conflicts import DepKind, Edge, PredicateDepMode
from .dsg import DSG
from .history import History

__all__ = ["start_dependencies", "SSG", "starts_before"]


def starts_before(history: History, ti: int, tj: int) -> bool:
    """Whether committed ``T_i``'s commit precedes ``T_j``'s start.

    Setup transactions (no events) precede everything; nothing precedes a
    setup transaction.
    """
    if tj in history.setup_tids:
        return False
    if ti in history.setup_tids:
        return True
    ci = history.commit_index(ti)
    if ci is None:
        return False
    return ci < history.begin_index(tj)


def start_dependencies(history: History) -> List[Edge]:
    """All start-dependency edges among committed transactions."""
    committed = sorted(history.committed_all)
    edges = []
    for ti in committed:
        for tj in committed:
            if ti != tj and starts_before(history, ti, tj):
                edges.append(Edge(ti, tj, DepKind.SO))
    return edges


class SSG(DSG):
    """``DSG(H)`` augmented with start-dependency edges.

    ``edges`` optionally supplies the precomputed direct-conflict edges
    (sans start edges), so an :class:`~repro.core.phenomena.Analysis` that
    already extracted them does not run the extractors a second time.
    """

    def __init__(
        self,
        history: History,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        *,
        edges=None,
    ):
        super().__init__(
            history, mode, extra_edges=start_dependencies(history), edges=edges
        )

    def start_edge(self, src: int, dst: int) -> bool:
        return any(e.kind is DepKind.SO for e in self.edges_between(src, dst))
