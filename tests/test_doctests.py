"""Run the doctests embedded in module docstrings (the documented examples
must actually work)."""

import doctest

import pytest

import importlib

import repro
import repro.checker.checker


@pytest.mark.parametrize(
    "module_name",
    ["repro.checker.checker", "repro.core.timeline", "repro.workloads.arrivals"],
)
def test_module_doctests(module_name):
    # importlib avoids the package attribute shadowing the submodule
    # (repro.core re-exports the `timeline` *function* under that name).
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_package_docstring_example():
    """The quickstart in ``repro``'s package docstring, executed."""
    report = repro.check(
        "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1"
    )
    assert str(report.strongest_level) == "PL-2"
    assert "PL-2" in report.explain()


def test_readme_quickstart_block():
    """The README's engine quickstart, executed."""
    from repro.engine import Database, SnapshotIsolationScheduler

    db = Database(SnapshotIsolationScheduler())
    db.load({"x": 1, "y": 1})
    t1, t2 = db.begin(), db.begin()
    t1.write("x", t1.read("x") + t1.read("y"))
    t2.write("y", t2.read("x") + t2.read("y"))
    t1.commit()
    t2.commit()
    report = repro.check(db.history(), extensions=True)
    assert report.ok(repro.IsolationLevel.PL_SI)
    assert not report.ok(repro.IsolationLevel.PL_3)
