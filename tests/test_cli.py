"""Tests for the command-line interface (repro.cli)."""

import io
import subprocess
import sys


from repro.cli import main

H_SERIAL = "w1(x1) c1 r2(x1) c2"
H_DIRTY = "w1(x1) r2(x1) c2 a1"
H_WCYCLE = "w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]"


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestClassify:
    def test_serial(self):
        status, text = run_cli("classify", H_SERIAL)
        assert status == 0
        assert text.strip() == "PL-3"

    def test_below_pl1(self):
        status, text = run_cli("classify", H_WCYCLE)
        assert status == 0
        assert text.strip() == "none"


class TestCheck:
    def test_full_report(self):
        status, text = run_cli("check", H_DIRTY)
        assert status == 0
        assert "G1a" in text and "strongest level: PL-1" in text

    def test_single_level_ok(self):
        status, text = run_cli("check", "--level", "PL-3", H_SERIAL)
        assert status == 0
        assert "PROVIDED" in text

    def test_single_level_violated_exit_1(self):
        status, text = run_cli("check", "--level", "serializable", H_DIRTY)
        assert status == 1
        assert "VIOLATED" in text

    def test_extensions_flag(self):
        status, text = run_cli("check", "--extensions", H_SERIAL)
        assert status == 0
        assert "PL-SI" in text

    def test_unknown_level_exit_2(self):
        status, _text = run_cli("check", "--level", "chaos", H_SERIAL)
        assert status == 2

    def test_parse_error_exit_2(self):
        status, _text = run_cli("check", "w1(x1) garbage")
        assert status == 2

    def test_auto_complete(self):
        status, text = run_cli("check", "--auto-complete", "w1(x1) c1 w2(x2)")
        assert status == 0


class TestOtherCommands:
    def test_dsg_outputs_dot(self):
        status, text = run_cli("dsg", H_SERIAL)
        assert status == 0
        assert "digraph" in text and "T1 -> T2" in text

    def test_phenomena(self):
        status, text = run_cli("phenomena", H_DIRTY)
        assert status == 0
        assert "G1a: EXHIBITED" in text
        assert "G0: absent" in text

    def test_mixing_ok(self):
        status, text = run_cli("mixing", H_SERIAL)
        assert status == 0
        assert "mixing-correct" in text

    def test_mixing_violation_exit_1(self):
        history = (
            "b1@PL-3 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
            "[x0 << x2]"
        )
        status, text = run_cli("mixing", history)
        assert status == 1
        assert "NOT mixing-correct" in text

    def test_preventative(self):
        status, text = run_cli("preventative", "w1(x1) r2(x1) c1 c2")
        assert status == 0
        assert "P1: EXHIBITED" in text


class TestFileInput:
    def test_reads_file(self, tmp_path):
        path = tmp_path / "h.txt"
        path.write_text(H_SERIAL)
        status, text = run_cli("classify", "--file", str(path))
        assert status == 0
        assert text.strip() == "PL-3"

    def test_missing_file_exit_2(self):
        status, _ = run_cli("classify", "--file", "/nonexistent/h.txt")
        assert status == 2


class TestModuleEntrypoint:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "classify", H_SERIAL],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert proc.stdout.strip() == "PL-3"


class TestCorpusCommand:
    def test_self_test_passes(self):
        status, text = run_cli("corpus")
        assert status == 0
        assert "0 mismatches" in text
        assert "H_phantom" in text and "write-skew" in text


class TestRepairCommand:
    def test_repair_lost_update(self):
        status, text = run_cli(
            "repair",
            "r1(x0, 10) r2(x0, 10) w2(x2, 15) c2 w1(x1, 11) c1 [x0 << x2 << x1]",
        )
        assert status == 0
        assert "yields PL-3" in text
        assert "repaired history:" in text

    def test_repair_clean_history(self):
        status, text = run_cli("repair", H_SERIAL)
        assert status == 0
        assert "nothing to abort" in text

    def test_repair_custom_level(self):
        status, text = run_cli("repair", "--level", "PL-2", H_DIRTY)
        assert status == 0
        assert "yields PL-2" in text

    def test_repair_bad_level(self):
        status, _text = run_cli("repair", "--level", "chaos", H_SERIAL)
        assert status == 2


class TestReportCommand:
    def test_report_reproduces_everything(self):
        status, text = run_cli("report")
        assert status == 0
        assert "Overall: all artifacts reproduce" in text
        for section in ("FIG3", "FIG4", "FIG5", "FIG6", "SEC2", "SEC3", "SEC55"):
            assert f"{section} " in text
        assert "FAIL" not in text


H_WRITE_SKEW = "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) c1 w2(y2) c2"


class TestStatsCommand:
    def test_text_format(self):
        status, text = run_cli("stats", H_SERIAL)
        assert status == 0
        assert "checker_checks_total" in text
        assert "history_events" in text

    def test_json_format_parses(self):
        import json

        status, text = run_cli("stats", "--format", "json", H_SERIAL)
        assert status == 0
        data = json.loads(text)
        assert data["checker_checks_total"]["series"][0]["value"] == 1
        assert data["history_events"]["series"][0]["value"] == 4
        assert data["history_transactions"]["series"][0]["value"] == 2
        assert data["checker_extract_seconds"]["type"] == "histogram"

    def test_prometheus_format(self):
        status, text = run_cli("stats", "--format", "prometheus", H_SERIAL)
        assert status == 0
        assert "# TYPE checker_checks_total counter" in text
        assert "checker_checks_total 1" in text
        assert "checker_extract_seconds_count 1" in text


class TestTraceCommand:
    def test_stdout_jsonl(self):
        import json

        status, text = run_cli("trace", H_SERIAL)
        assert status == 0
        records = [json.loads(line) for line in text.splitlines() if line]
        assert all(r["kind"] in ("span", "event") for r in records)
        assert any(r["kind"] == "span" and r["name"] == "checker.check" for r in records)

    def test_out_file_round_trips(self, tmp_path):
        from repro.observability import read_trace, span_tree

        path = tmp_path / "spans.jsonl"
        status, text = run_cli("trace", "--out", str(path), H_WRITE_SKEW)
        assert status == 0
        assert "G2" in text  # summary line names latched phenomena
        records = read_trace(str(path))
        roots = span_tree(records)
        assert {r["record"]["name"] for r in roots} >= {
            "trace.replay",
            "checker.check",
        }

    def test_provenance_event_names_witness_edges(self, tmp_path):
        import json

        path = tmp_path / "spans.jsonl"
        status, _text = run_cli("trace", "-o", str(path), H_WRITE_SKEW)
        assert status == 0
        phenomena = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if record["kind"] == "event" and record["name"] == "phenomenon":
                    phenomena.append(record["attrs"])
        g2 = [p for p in phenomena if p["phenomenon"] == "G2"]
        assert len(g2) == 1
        assert sorted(g2[0]["cycle_tids"]) == [1, 2]
        assert [e["kind"] for e in g2[0]["cycle"]] == ["rw", "rw"]


class TestCheckMetricsFlag:
    def test_check_metrics_appends_registry_dump(self):
        status, text = run_cli("check", "--metrics", H_SERIAL)
        assert status == 0
        assert "strongest level: PL-3" in text
        assert "metrics:" in text
        assert "checker_checks_total" in text

    def test_check_level_metrics(self):
        status, text = run_cli("check", "--level", "PL-3", "--metrics", H_SERIAL)
        assert status == 0
        assert "checker_checks_total" in text

    def test_check_without_flag_has_no_metrics(self):
        status, text = run_cli("check", H_SERIAL)
        assert status == 0
        assert "checker_checks_total" not in text

    def test_check_many_metrics(self, tmp_path):
        paths = []
        for i, h in enumerate((H_SERIAL, H_DIRTY)):
            p = tmp_path / f"h{i}.txt"
            p.write_text(h + "\n")
            paths.append(str(p))
        status, text = run_cli("check-many", "--metrics", *paths)
        assert status == 0
        assert "checker_checks_total" in text
        assert "2" in text


class TestServe:
    def test_serve_demo(self):
        status, text = run_cli("serve")
        assert status == 0
        assert "alice: begin" in text and "bob: commit() -> ok" in text
        assert "history:" in text

    def test_serve_selftest(self):
        status, text = run_cli("serve", "--selftest")
        assert status == 0
        assert "reproducible           : yes" in text
        assert "selftest               : ok" in text
        assert "all 30 commits certified" in text

    def test_serve_selftest_other_scheduler(self):
        status, text = run_cli("serve", "--selftest", "--scheduler", "mvcc")
        assert status == 0
        assert "selftest               : ok" in text


class TestStress:
    def test_stress_certifies(self):
        status, text = run_cli(
            "stress", "--clients", "2", "--txns", "4", "--seed", "9",
            "--crash-after", "4",
        )
        assert status == 0
        assert "committed transactions : 8" in text
        assert "server crashes/restarts: 1/1" in text
        assert "all 8 commits certified" in text

    def test_stress_journal_and_history(self):
        status, text = run_cli(
            "stress", "--clients", "1", "--txns", "2", "--drop", "0",
            "--duplicate", "0", "--journal", "--history",
        )
        assert status == 0
        assert "client journals:" in text and "c0:" in text
        assert "history:" in text and "c1" in text

    def test_stress_bad_scheduler(self):
        status, _ = run_cli("stress", "--scheduler", "bogus")
        assert status == 2


class TestObservabilityFlags:
    def test_stress_trace_records_service_spans(self, tmp_path):
        from repro.observability import read_trace, span_tree

        path = tmp_path / "stress.jsonl"
        status, text = run_cli(
            "stress", "--clients", "2", "--txns", "3", "--seed", "3",
            "--trace", str(path),
        )
        assert status == 0
        assert f"wrote" in text and "trace records" in text
        records = read_trace(str(path))
        assert records.skipped == 0
        names = {r["name"] for r in records}
        assert {
            "stress.run", "client.txn", "client.request",
            "net.msg", "server.handle",
        } <= names
        roots = span_tree(records)
        assert [n["record"]["name"] for n in roots] == ["stress.run"]

    def test_stress_trace_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            status, _ = run_cli(
                "stress", "--clients", "2", "--txns", "3", "--seed", "5",
                "--crash-after", "3", "--trace", str(path),
            )
            assert status == 0
        assert a.read_bytes() == b.read_bytes()

    def test_stress_metrics_flags(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        status, text = run_cli(
            "stress", "--clients", "2", "--txns", "3",
            "--metrics", "--metrics-out", str(path),
        )
        assert status == 0
        assert "metrics:" in text
        assert "service_requests_total" in text
        data = json.loads(path.read_text())
        assert "service_messages_total" in data

    def test_serve_selftest_trace_and_metrics(self, tmp_path):
        from repro.observability import read_trace

        path = tmp_path / "selftest.jsonl"
        status, text = run_cli(
            "serve", "--selftest", "--trace", str(path), "--metrics",
        )
        assert status == 0
        assert "selftest               : ok" in text
        assert "service_requests_total" in text
        records = read_trace(str(path))
        assert any(r["name"] == "stress.run" for r in records)

    def test_serve_demo_trace(self, tmp_path):
        from repro.observability import read_trace

        path = tmp_path / "demo.jsonl"
        status, _text = run_cli("serve", "--trace", str(path))
        assert status == 0
        records = read_trace(str(path))
        sessions = {
            r["attrs"]["session"]
            for r in records
            if r["kind"] == "span" and r["name"] == "client.txn"
        }
        assert sessions == {"alice", "bob"}


class TestRunReportCommand:
    def test_report_stress_markdown(self):
        status, text = run_cli(
            "report", "--stress", "--clients", "2", "--txns", "3",
            "--seed", "3", "--crash-after", "3",
        )
        assert status == 0
        assert "# Run report — stress scheduler=locking seed=3" in text
        assert "## Fault schedule and configuration" in text
        assert "## Logical latency by verb" in text
        assert "server crashes/restarts | 1/1" in text

    def test_report_stress_json(self):
        import json

        status, text = run_cli(
            "report", "--stress", "--clients", "2", "--txns", "3",
            "--format", "json",
        )
        assert status == 0
        data = json.loads(text)
        assert data["summary"]["committed transactions"] == 6
        assert data["latencies"]["commit"]["count"] >= 6

    def test_report_from_recorded_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        status, _ = run_cli(
            "stress", "--clients", "2", "--txns", "3", "--seed", "4",
            "--trace", str(trace), "--metrics-out", str(metrics),
        )
        assert status == 0
        status, text = run_cli(
            "report", "--trace", str(trace), "--metrics-file", str(metrics),
        )
        assert status == 0
        assert f"# Run report — trace {trace}" in text
        assert "## Logical latency by verb" in text
        assert "service_requests_total" in text

    def test_report_stress_with_trace_records_both(self, tmp_path):
        trace = tmp_path / "both.jsonl"
        status, text = run_cli(
            "report", "--stress", "--clients", "2", "--txns", "3",
            "--trace", str(trace),
        )
        assert status == 0
        assert "# Run report" in text
        assert trace.exists()

    def test_report_reports_identically_for_equal_seeds(self):
        args = (
            "report", "--stress", "--clients", "2", "--txns", "3",
            "--seed", "6", "--format", "json",
        )
        first, second = run_cli(*args), run_cli(*args)
        assert first == second

    def test_report_missing_trace_file(self):
        status, _ = run_cli("report", "--trace", "/nonexistent/trace.jsonl")
        assert status == 2

    def test_plain_report_still_reproduces_paper(self):
        status, text = run_cli("report")
        assert status == 0
        assert "Overall: all artifacts reproduce" in text


class TestCapacity:
    def test_selftest_passes(self):
        status, text = run_cli("capacity", "--selftest")
        assert status == 0
        assert "selftest               : ok" in text
        assert "reproducible           : yes" in text

    def test_sweep_markdown_report(self):
        status, text = run_cli(
            "capacity", "--rates", "0.03,0.1", "--horizon", "300",
            "--clients", "3", "--keys", "4", "--max-active", "2",
        )
        assert status == 0
        assert "## Capacity" in text
        assert "### Contention heatmap" in text

    def test_sweep_json_has_capacity_section(self):
        import json

        status, text = run_cli(
            "capacity", "--rates", "0.05", "--horizon", "300",
            "--clients", "3", "--keys", "4", "--format", "json",
            "--no-heatmap",
        )
        assert status == 0
        data = json.loads(text)
        assert data["capacity"]["ladder"]
        assert data["capacity"]["heatmap"]["objects"] == []

    def test_violated_slo_exits_1(self):
        status, text = run_cli(
            "capacity", "--rates", "0.1", "--horizon", "300",
            "--clients", "3", "--keys", "4", "--slo-p99", "1",
        )
        assert status == 1
        assert "### SLO verdicts" in text
        assert "violated" in text

    def test_bad_rates_exit_2(self):
        status, _ = run_cli("capacity", "--rates", "fast,faster")
        assert status == 2
        status, _ = run_cli("capacity", "--rates", ",")
        assert status == 2

    def test_sweeps_reproduce_for_equal_seeds(self):
        args = (
            "capacity", "--rates", "0.04,0.09", "--horizon", "300",
            "--clients", "3", "--keys", "4", "--seed", "9",
            "--zipf", "0.9", "--max-active", "2",
        )
        assert run_cli(*args) == run_cli(*args)
