"""Capacity-path guard: open-loop load must not tax the service path.

Two pins plus a regenerated table:

* **telemetry-off floor** — the open-loop driver with no telemetry
  attached must stay at the same bounded multiple of direct ``Database``
  calls that ``bench_service_faults`` pins for the closed-loop path.  The
  arrival schedule, tick-waits and admission hooks are bookkeeping around
  the same engine work; if they push the stack past the service baseline,
  the open-loop machinery regressed.
* **telemetry overhead** — attaching a :class:`WindowedTelemetry` (full
  SLO set, sampling on) is observation only; it may cost a bounded
  fraction on top of the telemetry-off run, never a multiple.
* **capacity ladder table** — one tiny sweep, the regenerated table
  recording per-rung completion and shedding (and implicitly that the
  sweep still finds a knee).
"""

from __future__ import annotations

import time

import pytest

from repro.engine import connect
from repro.observability import SLO, WindowedTelemetry
from repro.service import AdmissionConfig, StressConfig, run_capacity, run_stress
from repro.workloads import PoissonArrivals

_KEYS = 8
_RATE = 0.1
_HORIZON = 2000  # ~200 offered transactions at _RATE


def _run_direct(txns: int) -> float:
    best = float("inf")
    for _round in range(3):
        db = connect("locking", initial={f"k{i}": 0 for i in range(_KEYS)})
        start = time.perf_counter()
        for i in range(txns):
            t = db.begin()
            key = f"k{i % _KEYS}"
            t.write(key, t.read(key, for_update=True) + 1)
            t.commit()
        best = min(best, time.perf_counter() - start)
    return best


def _open_loop_config(windows=None) -> StressConfig:
    return StressConfig(
        scheduler="locking",
        clients=4,
        keys=_KEYS,
        ops_per_txn=1,
        seed=11,
        arrivals=PoissonArrivals(rate=_RATE),
        horizon=_HORIZON,
        admission=AdmissionConfig(max_active=8, retry_after=8),
        windows=windows,
    )


def _run_open_loop(windows_factory=None) -> tuple:
    best = float("inf")
    committed = 0
    for _round in range(3):
        windows = windows_factory() if windows_factory is not None else None
        start = time.perf_counter()
        result = run_stress(_open_loop_config(windows=windows))
        best = min(best, time.perf_counter() - start)
        committed = result.committed
    return best, committed


def _full_telemetry() -> WindowedTelemetry:
    return WindowedTelemetry(
        window=500,
        sample_every=100,
        slos=(
            SLO(name="p99", kind="latency", threshold=500, verb="txn"),
            SLO(name="certified", kind="certified_fraction", threshold=0.9),
            SLO(name="queue", kind="queue_depth", threshold=50),
        ),
    )


@pytest.mark.benchguard
def test_open_loop_telemetry_off_at_service_baseline():
    service, committed = _run_open_loop()
    assert committed > 0
    direct = _run_direct(committed)
    # Same ceiling bench_service_faults pins for the closed-loop path:
    # one order of magnitude over direct engine calls, floored for timer
    # noise.  The open-loop extras (schedule claims, tick-waits, admission
    # checks) must disappear into that budget.
    assert service < max(direct * 12, direct + 0.05), (
        f"open-loop telemetry-off run {service * 1000:.1f} ms vs direct "
        f"{direct * 1000:.1f} ms for {committed} txns"
    )


@pytest.mark.benchguard
def test_windowed_telemetry_overhead_bounded():
    bare, _ = _run_open_loop()
    telemetry, _ = _run_open_loop(_full_telemetry)
    # Windowed counters + SLO evaluation are a fraction of the run, not a
    # multiple of it (absolute floor keeps sub-ms noise from tripping it).
    assert telemetry < max(bare * 1.5, bare + 0.05), (
        f"telemetry-on {telemetry * 1000:.1f} ms vs off {bare * 1000:.1f} ms"
    )


def test_capacity_ladder_table(record_table):
    sweep = run_capacity(
        rates=[0.03, 0.08, 0.16],
        horizon=500,
        seed=11,
        clients=4,
        keys=6,
        admission=AdmissionConfig(max_active=3, retry_after=8),
        zipf_theta=0.9,
        slos=(SLO(name="p99", kind="latency", threshold=400, verb="txn"),),
        window=200,
        sample_every=50,
        trace=False,
    )
    rows = [
        f"{'rate':>6} {'offered':>7} {'committed':>9} {'completion':>10} "
        f"{'shed':>5} {'max queue':>9} {'p99':>6}"
    ]
    for rung in sweep.rungs:
        rows.append(
            f"{rung.rate:6g} {rung.offered:7d} {rung.committed:9d} "
            f"{rung.completion_ratio:10.0%} {rung.shed:5d} "
            f"{rung.max_queue_depth:9d} "
            f"{rung.p99 if rung.p99 is not None else '-':>6}"
        )
    knee = sweep.knee
    rows.append(
        "knee: "
        + (f"rate={knee.rate:g}/tick" if knee is not None else "none")
    )
    assert sum(r.committed for r in sweep.rungs) > 0
    record_table("capacity_ladder", "\n".join(rows))
