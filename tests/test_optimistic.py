"""Tests for the OCC scheduler (repro.engine.optimistic)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.core.predicates import FieldPredicate
from repro.engine import Database, OptimisticScheduler
from repro.exceptions import ValidationFailure


def make_db(initial=None):
    db = Database(OptimisticScheduler())
    db.load(initial or {"x": 5, "y": 5})
    return db


class TestReads:
    def test_reads_latest_committed(self):
        db = make_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 10)  # buffered privately
        assert t2.read("x") == 5  # T2 cannot see it

    def test_read_your_own_writes(self):
        db = make_db()
        t1 = db.begin()
        t1.write("x", 10)
        assert t1.read("x") == 10

    def test_nonexistent_object(self):
        db = make_db()
        assert db.begin().read("ghost") is None


class TestValidation:
    def test_read_overwritten_by_concurrent_commit_aborts(self):
        db = make_db()
        t1, t2 = db.begin(), db.begin()
        assert t1.read("x") == 5
        t2.write("x", 6)
        t2.commit()
        t1.write("y", 0)
        with pytest.raises(ValidationFailure):
            t1.commit()

    def test_blind_write_conflict_commits(self):
        # Write-write with no reads is serializable in commit order.
        db = make_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.commit()
        t2.commit()
        assert repro.classify(db.history()) is L.PL_3

    def test_transaction_that_started_after_commit_is_safe(self):
        db = make_db()
        t1 = db.begin()
        t1.write("x", 6)
        t1.commit()
        t2 = db.begin()
        assert t2.read("x") == 6
        t2.write("y", 1)
        t2.commit()

    def test_h2_prime_shape_commits(self):
        """The paper's H2': T2 reads old values, T1 overwrites, T2 commits
        first — OCC admits it, P2 would not."""
        db = make_db()
        t2 = db.begin()
        t1 = db.begin()
        assert t2.read("x") == 5
        t1.write("x", 1)
        assert t2.read("y") == 5
        t1.write("y", 9)
        t2.commit()  # read set untouched by committed peers: fine
        t1.commit()
        h = db.history()
        assert repro.classify(h) is L.PL_3
        from repro.baseline import PreventativeAnalysis, PreventativePhenomenon

        assert PreventativeAnalysis(h).exhibits(PreventativePhenomenon.P2)

    def test_predicate_read_validated(self):
        db = make_db({"emp:1": {"dept": "Sales", "sal": 10}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1, t2 = db.begin(), db.begin()
        assert t1.count(pred) == 1
        t2.insert("emp", {"dept": "Sales", "sal": 5})
        t2.commit()
        t1.write("x", 0)
        with pytest.raises(ValidationFailure):
            t1.commit()  # T2 changed the predicate's matches

    def test_failed_validation_emits_abort(self):
        db = make_db()
        t1, t2 = db.begin(), db.begin()
        t1.read("x")
        t2.write("x", 6)
        t2.commit()
        with pytest.raises(ValidationFailure):
            t1.commit()
        assert t1.tid in db.history().aborted


class TestEmittedHistories:
    def test_concurrent_runs_always_pl3(self):
        """Whatever the interleaving, committed OCC histories provide PL-3."""
        from repro.engine import Program, Read, Simulator, Write

        def programs():
            return [
                Program(
                    f"p{i}",
                    [
                        Read("x", into="x"),
                        Write("y", lambda r: (r["x"] or 0) + 1),
                        Read("y", into="y"),
                        Write("x", lambda r: (r["y"] or 0) + 1),
                    ],
                )
                for i in range(3)
            ]

        for seed in range(5):
            db = make_db()
            Simulator(db, programs(), seed=seed).run()
            assert repro.classify(db.history()) is L.PL_3
