"""History events (paper Section 4.2).

A history's first component is a partial order of *events*: reads, writes,
predicate-based reads, commits and aborts, plus an optional ``begin`` event
used for declaring a transaction's isolation level (Section 5.5 mixed
systems) and for the start-ordering needed by Snapshot Isolation's
start-ordered serialization graph (extension levels).

Histories in this library store one linearization of the partial order — a
tuple of these events.  Every example history in the paper is itself
presented that way ("we will present event histories in examples as a total
order ... consistent with the partial order").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .objects import Version
from .predicates import Predicate, VersionSet

__all__ = [
    "Event",
    "Begin",
    "Read",
    "Write",
    "PredicateRead",
    "Commit",
    "Abort",
]


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every event belongs to exactly one transaction."""

    tid: int

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ValueError("application transaction ids are non-negative")


@dataclass(frozen=True, slots=True)
class Begin(Event):
    """Optional explicit start of a transaction.

    ``level`` is the isolation level the transaction requested (a
    :class:`repro.core.levels.IsolationLevel` value), used when checking
    mixed histories; ``None`` means "the history-wide default".  When a
    history has no ``Begin`` for a transaction, the transaction is considered
    to start at its first event.
    """

    level: Optional[object] = None

    def __str__(self) -> str:
        if self.level is None:
            return f"b{self.tid}"
        return f"b{self.tid}@{self.level}"


@dataclass(frozen=True, slots=True)
class Read(Event):
    """``r_i(x_{j:m})`` — transaction ``tid`` reads ``version``.

    ``value`` is the value observed, if the history records one (the paper's
    ``r_j(x_i, v)`` form).  ``cursor`` marks the read as made through a
    cursor, which only matters for the Cursor Stability extension level.
    """

    version: Version
    value: Any = None
    cursor: bool = False

    def __str__(self) -> str:
        inner = self.version.label()
        if self.value is not None:
            inner += f", {self.value}"
        op = "rc" if self.cursor else "r"
        return f"{op}{self.tid}({inner})"


@dataclass(frozen=True, slots=True)
class Write(Event):
    """``w_i(x_{i:m})`` — transaction ``tid`` creates ``version``.

    Inserts, updates, and deletes are all writes (Section 4.1); a delete
    installs a *dead* version, flagged here with ``dead=True``.  ``value``
    is the value written, if any (dead versions carry no value).
    """

    version: Version
    value: Any = None
    dead: bool = False

    def __post_init__(self) -> None:
        # Explicit base call: dataclass(slots=True) rebuilds the class, so
        # the zero-arg super() closure would point at the pre-slots class.
        Event.__post_init__(self)
        if self.version.tid != self.tid:
            raise ValueError(
                f"T{self.tid} cannot write version {self.version} owned by T{self.version.tid}"
            )
        if self.dead and self.value is not None:
            raise ValueError("a dead version carries no value")

    def __str__(self) -> str:
        inner = self.version.label()
        if self.dead:
            inner += ", dead"
        elif self.value is not None:
            inner += f", {self.value}"
        return f"w{self.tid}({inner})"


@dataclass(frozen=True, slots=True)
class PredicateRead(Event):
    """``r_i(P: Vset(P))`` — a read based on predicate ``predicate``.

    ``vset`` holds the explicitly selected versions; objects of the
    predicate's relations absent from it were selected at their unborn
    version (see :class:`repro.core.predicates.VersionSet`).  Versions of the
    version set that *match* the predicate and are actually read by the
    transaction appear as separate :class:`Read` events after this one, as in
    the paper; a COUNT-style query has no follow-up reads.
    """

    predicate: Predicate
    vset: VersionSet

    def matched_versions(self, kind_of, value_of) -> Tuple[Version, ...]:
        """Versions in the explicit vset satisfying the predicate.

        ``kind_of(version)`` and ``value_of(version)`` are lookups supplied by
        the owning history; unborn and dead versions never match.
        """
        from .objects import VersionKind

        out = []
        for version in self.vset.versions():
            if kind_of(version) is not VersionKind.VISIBLE:
                continue
            if self.predicate.matches(version, value_of(version)):
                out.append(version)
        return tuple(out)

    def __str__(self) -> str:
        return f"r{self.tid}({self.predicate}: {self.vset})"


@dataclass(frozen=True, slots=True)
class Commit(Event):
    """``c_i`` — the transaction's (single) successful final event."""

    def __str__(self) -> str:
        return f"c{self.tid}"


@dataclass(frozen=True, slots=True)
class Abort(Event):
    """``a_i`` — the transaction's (single) unsuccessful final event."""

    def __str__(self) -> str:
        return f"a{self.tid}"
