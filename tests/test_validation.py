"""Tests for every well-formedness rule of Section 4.2 (repro.core.validation)."""

import pytest

from repro.core import parse_history
from repro.core.events import Begin, Commit, Read, Write
from repro.core.history import History
from repro.core.objects import Version
from repro.exceptions import MalformedHistoryError, VersionOrderError


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestE1Completeness:
    def test_unfinished_transaction_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E1"):
            parse_history("w1(x1)")

    def test_event_after_commit_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E1"):
            History([Write(1, v("x", 1)), Commit(1), Write(1, v("y", 1))])

    def test_double_commit_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E1"):
            History([Commit(1), Commit(1)])

    def test_commit_then_abort_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E1"):
            parse_history("w1(x1) c1 a1")


class TestE2Begin:
    def test_begin_not_first_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E2"):
            History([Write(1, v("x", 1)), Begin(1), Commit(1)])

    def test_begin_first_accepted(self):
        h = parse_history("b1 w1(x1) c1")
        assert h.begin_index(1) == 0


class TestE3ReadAfterWrite:
    def test_read_before_write_rejected(self):
        # x1 is read at a point where T1 (which has events) has not yet
        # written it — not a setup version, so E3 fires.
        with pytest.raises(MalformedHistoryError, match="E3"):
            History(
                [Read(2, v("x", 1)), Write(1, v("x", 1)), Commit(1), Commit(2)]
            )

    def test_setup_version_read_accepted(self):
        h = parse_history("r1(x0, 5) c1")
        assert v("x", 0) in h.setup_versions

    def test_vset_selection_before_write_rejected(self):
        from repro.core.events import PredicateRead
        from repro.core.predicates import MembershipPredicate, VersionSet

        pread = PredicateRead(
            2, MembershipPredicate("P"), VersionSet.of(v("x", 1))
        )
        with pytest.raises(MalformedHistoryError, match="E3"):
            History([pread, Write(1, v("x", 1)), Commit(1), Commit(2)])

    def test_setup_version_of_aborted_transaction_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E3"):
            parse_history("r2(x1, 5) c2 a1")


class TestE4ReadOwnWrites:
    def test_must_read_own_last_write(self):
        with pytest.raises(MalformedHistoryError, match="E4"):
            parse_history("w2(x2) c2 w1(x1) r1(x2) c1")

    def test_reading_own_write_accepted(self):
        h = parse_history("w1(x1) r1(x1) c1")
        assert len(h.reads) == 1

    def test_read_before_own_write_is_fine(self):
        h = parse_history("w2(x2) c2 r1(x2) w1(x1) c1")
        assert h.committed == {1, 2}


class TestE5VisibleReads:
    def test_read_of_dead_version_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E5"):
            parse_history("w1(x1, dead) c1 r2(x1) c2")

    def test_vset_may_select_dead_version(self):
        h = parse_history("w1(x1, dead) c1 r2(P: x1) c2")
        assert len(h.predicate_reads) == 1


class TestE6WriteNumbering:
    def test_sequences_inferred_in_order(self):
        h = parse_history("w1(x1) w1(x1) c1")
        assert h.final_version("x", 1) == v("x", 1, 2)

    def test_explicit_gap_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E6"):
            parse_history("w1(x1.2) c1")

    def test_explicit_out_of_order_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E6"):
            parse_history("w1(x1.1) w1(x1.3) c1")


class TestE7DeadUsage:
    def test_write_after_own_delete_rejected(self):
        with pytest.raises(MalformedHistoryError, match="E7"):
            parse_history("w1(x1.1, dead) w1(x1.2) c1")

    def test_read_after_own_delete_rejected(self):
        # Both E5 (dead read) and E7 (use after delete) condemn this; the
        # validator reports whichever it reaches first.
        with pytest.raises(MalformedHistoryError, match="E5|E7"):
            parse_history("w1(x1, dead) r1(x1) c1")

    def test_other_transactions_may_write_after_uncommitted_delete(self):
        h = parse_history("w1(x1, dead) a1 w2(x2) c2")
        assert h.committed == {2}


class TestV1DeadLast:
    def test_dead_version_must_be_last(self):
        with pytest.raises(VersionOrderError, match="V1"):
            parse_history("w1(x1, dead) w2(x2) c1 c2 [x1 << x2]")

    def test_dead_last_accepted(self):
        h = parse_history("w1(x1) w2(x2, dead) c1 c2 [x1 << x2]")
        assert h.order_of("x")[-1] == v("x", 2)


class TestV2InstalledVersions:
    def test_order_with_uncommitted_version_rejected(self):
        with pytest.raises(VersionOrderError, match="V2"):
            parse_history("w1(x1) a1 w2(x2) c2 [x1 << x2]")

    def test_order_only_version_is_setup_state(self):
        # Declaring a never-written version in the order declares initial
        # state, same as reading it (H_pred-read's y0 shape).
        h = parse_history("w2(x2) c2 [x1 << x2]")
        from repro.core.objects import Version as V

        assert V("x", 1) in h.setup_versions

    def test_missing_committed_version_rejected(self):
        with pytest.raises(VersionOrderError, match="V2"):
            # explicit order omits T2's committed write of x
            parse_history("w1(x1) w2(x2) c1 c2 [x1]")

    def test_duplicate_version_rejected(self):
        with pytest.raises(VersionOrderError, match="V2"):
            History(
                [Write(1, v("x", 1)), Commit(1)],
                {"x": [v("x", 1), v("x", 1)]},
            )

    def test_intermediate_version_in_order_rejected(self):
        with pytest.raises(VersionOrderError, match="V2"):
            History(
                [Write(1, v("x", 1, 1)), Write(1, v("x", 1, 2)), Commit(1)],
                {"x": [v("x", 1, 1)]},
            )

    def test_wrong_object_in_chain_rejected(self):
        with pytest.raises(VersionOrderError):
            History([Write(1, v("x", 1)), Commit(1)], {"x": [v("y", 1)]})


class TestWriteEventGuards:
    def test_write_of_foreign_version_rejected(self):
        with pytest.raises(ValueError):
            Write(1, v("x", 2))

    def test_dead_write_with_value_rejected(self):
        with pytest.raises(ValueError):
            Write(1, v("x", 1), value=5, dead=True)
