"""The paper's Section 5.1 recovery discussion, made executable.

"In the absence of this proscription [P0], a system that allows writes to
happen in place cannot recover the pre-states of aborted transactions using
a simple undo log approach.  For example, suppose T1 updates x (...),
T2 overwrites x, and then T1 aborts.  The system must not restore x to T1's
pre-state.  However, if T2 aborts later, x must be restored to T1's
pre-state and not to x1."

The engine's locking scheduler runs writes in place with version stacks
(undo removes a transaction's entries wherever they are), so at Degree 0 —
where short write locks let T2 overwrite T1's uncommitted write — the
paper's scenario really happens, and these tests check the recovery rules
the paper spells out.
"""

import pytest

from repro.engine import Database, LockingScheduler


def degree0_db():
    db = Database(LockingScheduler("degree-0"))
    db.load({"x": 0})
    return db


class TestPaperRecoveryScenario:
    def test_abort_of_overwritten_writer_keeps_overwrite(self):
        """T1 writes, T2 overwrites, T1 aborts: x must stay at T2's value,
        not revert to T1's pre-state."""
        db = degree0_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.abort()
        t3 = db.begin()
        assert t3.read("x") == 2

    def test_subsequent_abort_restores_original_prestate(self):
        """...and if T2 then aborts too, x must return to T1's pre-state
        (the loaded value), not to x1."""
        db = degree0_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.abort()
        t2.abort()
        t3 = db.begin()
        assert t3.read("x") == 0

    def test_abort_order_is_immaterial(self):
        db = degree0_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t2.abort()  # reverse order: top of stack pops first
        t3 = db.begin()
        assert t3.read("x") == 1  # T1's (still uncommitted) value visible
        t1.abort()
        t4 = db.begin()
        assert t4.read("x") == 0

    def test_commit_of_survivor_installs_its_value(self):
        db = degree0_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.abort()
        t2.commit()
        assert db.history().committed_state()["x"] == 2

    def test_interleaved_multiobject_aborts(self):
        """Three transactions stacking writes on one object unwind
        correctly in any abort order."""
        db = degree0_db()
        txns = [db.begin() for _ in range(3)]
        for i, txn in enumerate(txns, start=1):
            txn.write("x", i * 10)
        txns[1].abort()  # middle of the stack
        t = db.begin()
        assert t.read("x") == 30  # top survivor
        txns[2].abort()
        t = db.begin()
        assert t.read("x") == 10
        txns[0].commit()
        assert db.history(validate=False).committed_state()["x"] == 10


class TestHigherLevelsAvoidTheProblem:
    def test_long_write_locks_prevent_the_scenario(self):
        """At READ UNCOMMITTED and above, long write locks mean T2 simply
        cannot overwrite T1's uncommitted write — the paper's first
        motivation for proscribing P0 in locking systems."""
        from repro.exceptions import WouldBlock

        db = Database(LockingScheduler("read-uncommitted"))
        db.load({"x": 0})
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        with pytest.raises(WouldBlock):
            t2.write("x", 2)
