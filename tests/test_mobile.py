"""Tests for the mobile tentative-commit system (repro.engine.mobile)."""


import repro
from repro.baseline import PreventativeAnalysis, PreventativePhenomenon as P
from repro.core.levels import IsolationLevel as L
from repro.engine.mobile import MobileCluster


def cluster_with(initial=None):
    cluster = MobileCluster()
    cluster.load(initial or {"x": 5, "y": 5})
    return cluster


class TestTentativeVisibility:
    def test_later_local_txn_reads_tentative_write(self):
        cluster = cluster_with()
        client = cluster.client(0)
        t1 = client.begin()
        t1.write("x", 1)
        t1.tentative_commit()
        t2 = client.begin()
        assert t2.read("x") == 1  # uncommitted data, the H1' pattern

    def test_other_clients_do_not_see_tentative_writes(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        t1 = a.begin()
        t1.write("x", 1)
        t1.tentative_commit()
        t2 = b.begin()
        assert t2.read("x") == 5

    def test_sync_publishes(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        t1 = a.begin()
        t1.write("x", 1)
        t1.tentative_commit()
        a.sync()
        t2 = b.begin()
        assert t2.read("x") == 1


class TestH1PrimeScenario:
    def test_paper_h1_prime_realized(self):
        """T2 reads both of T1's tentative values, both certify: the exact
        history P1 forbids and the paper defends."""
        cluster = cluster_with()
        client = cluster.client(0)
        t1 = client.begin()
        t1.write("x", t1.read("x") - 4)   # 5 -> 1
        t1.write("y", t1.read("y") + 4)   # 5 -> 9
        t1.tentative_commit()
        t2 = client.begin()
        assert (t2.read("x"), t2.read("y")) == (1, 9)
        t2.tentative_commit()
        result = client.sync()
        assert result.committed == [t1.tid, t2.tid]

        history = cluster.history()
        assert repro.classify(history) is L.PL_3
        assert PreventativeAnalysis(history).exhibits(P.P1)  # P1 rejects it


class TestCertification:
    def test_conflicting_server_commit_aborts(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        ta = a.begin()
        ta.write("x", ta.read("x") + 1)
        ta.tentative_commit()
        tb = b.begin()
        tb.write("x", tb.read("x") + 10)
        tb.tentative_commit()
        assert b.sync().committed == [tb.tid]
        result = a.sync()  # A's read of x is stale now
        assert result.aborted == [ta.tid]
        assert cluster.history().committed_state()["x"] == 15

    def test_cascading_abort(self):
        """T2 read the failed T1's tentative write: T2 must abort too —
        the cascading aborts the paper describes."""
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        t1 = a.begin()
        t1.write("x", t1.read("x") + 1)
        t1.tentative_commit()
        t2 = a.begin()
        t2.write("y", t2.read("x") * 10)  # reads T1's tentative x
        t2.tentative_commit()
        spoiler = b.begin()
        spoiler.write("x", 0)
        spoiler.tentative_commit()
        b.sync()
        result = a.sync()
        assert result.aborted == [t1.tid, t2.tid]
        assert result.cascaded == [t2.tid]

    def test_no_g1a_ever(self):
        """Cascades guarantee no committed transaction read aborted data."""
        from repro.core.phenomena import Analysis, Phenomenon

        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        t1 = a.begin()
        t1.write("x", t1.read("x") + 1)
        t1.tentative_commit()
        t2 = a.begin()
        t2.write("y", (t2.read("x") or 0) * 10)
        t2.tentative_commit()
        spoiler = b.begin()
        spoiler.write("x", 0)
        spoiler.tentative_commit()
        b.sync()
        a.sync()
        assert not Analysis(cluster.history()).exhibits(Phenomenon.G1A)

    def test_independent_transaction_survives_cascade(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        t1 = a.begin()
        t1.write("x", t1.read("x") + 1)
        t1.tentative_commit()
        t3 = a.begin()
        t3.write("z", 7)  # touches nothing of T1's
        t3.tentative_commit()
        spoiler = b.begin()
        spoiler.write("x", 0)
        spoiler.tentative_commit()
        b.sync()
        result = a.sync()
        assert t3.tid in result.committed
        assert t1.tid in result.aborted


class TestRandomisedRuns:
    def test_histories_always_serializable(self):
        """Whatever the disconnection pattern, committed mobile histories
        are PL-3 — while violating P1 on most runs."""
        import random

        p1_violations = 0
        for seed in range(10):
            rng = random.Random(seed)
            cluster = cluster_with({f"k{i}": 10 for i in range(4)})
            clients = [cluster.client(i) for i in range(3)]
            for _round in range(6):
                client = rng.choice(clients)
                txn = client.begin()
                for _op in range(rng.randrange(1, 4)):
                    key = f"k{rng.randrange(4)}"
                    if rng.random() < 0.5:
                        txn.read(key)
                    else:
                        txn.write(key, rng.randrange(100))
                txn.tentative_commit()
                if rng.random() < 0.4:
                    client.sync()
            for client in clients:
                client.sync()
            history = cluster.history()
            assert repro.classify(history) is L.PL_3, f"seed {seed}"
            p1_violations += PreventativeAnalysis(history).exhibits(P.P1)
        assert p1_violations > 0


class TestPredicates:
    def test_predicate_over_merged_view(self):
        from repro.core.predicates import FieldPredicate

        cluster = cluster_with({"emp:1": {"dept": "Sales", "sal": 1}})
        client = cluster.client(0)
        t1 = client.begin()
        t1.write("emp:2", {"dept": "Sales", "sal": 2})
        t1.tentative_commit()
        t2 = client.begin()
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        assert t2.count(pred) == 2  # sees the tentative insert

    def test_predicate_conflict_aborts_at_sync(self):
        from repro.core.predicates import FieldPredicate

        cluster = cluster_with({"emp:1": {"dept": "Sales", "sal": 1}})
        a, b = cluster.client(0), cluster.client(1)
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        ta = a.begin()
        ta.count(pred)
        ta.write("summary", 1)
        ta.tentative_commit()
        tb = b.begin()
        tb.write("emp:2", {"dept": "Sales", "sal": 9})
        tb.tentative_commit()
        b.sync()
        result = a.sync()
        assert result.aborted == [ta.tid]


class TestSessionVectorUnification:
    """The disconnected-operation model rides the replication layer's
    session vectors: a mobile client is a replica with unbounded lag.

    The client's server watermark is a :class:`SessionVector` keyed by
    ``SERVER``; connected clients refresh it every ``begin``, a
    :meth:`~repro.engine.mobile.MobileClient.disconnect` freezes it (the
    stale-by-choice replica read), and :meth:`sync` reconnects and
    advances it past the client's own certified commits
    (read-your-writes across the sync)."""

    def test_connected_begin_tracks_commit_seq(self):
        cluster = cluster_with()
        client = cluster.client(0)
        client.begin().tentative_commit()
        assert client.session_vector().get("server") == cluster.store.commit_seq

    def test_disconnect_freezes_the_watermark(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        a.disconnect()
        frozen = a.session_vector().get("server")
        # b commits while a is away; a's view must not advance.
        tb = b.begin()
        tb.write("x", 99)
        tb.tentative_commit()
        b.sync()
        ta = a.begin()
        assert ta.read("x") == 5  # stale by choice, like a lagging replica
        assert a.session_vector().get("server") == frozen

    def test_connected_client_sees_fresh_state(self):
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        tb = b.begin()
        tb.write("x", 99)
        tb.tentative_commit()
        b.sync()
        ta = a.begin()  # connected: watermark refreshes at begin
        assert ta.read("x") == 99

    def test_sync_reconnects_and_advances(self):
        cluster = cluster_with()
        a = cluster.client(0)
        a.disconnect()
        t = a.begin()
        t.write("x", 7)
        t.tentative_commit()
        result = a.sync()
        assert result.committed == [t.tid]
        assert a.connected
        assert a.session_vector().get("server") == cluster.store.commit_seq
        # Read-your-writes across the sync: the next transaction reads
        # the certified write.
        assert a.begin().read("x") == 7

    def test_disconnected_h1_prime_still_serializable(self):
        """SEC3-MOBILE as a replica-lag run: a frozen-watermark client
        racks up P1 violations against tentative data, yet the certified
        history is PL-3 — the paper's Section 3 argument, expressed
        through the same watermark machinery as the cluster replicas."""
        cluster = cluster_with()
        a, b = cluster.client(0), cluster.client(1)
        a.disconnect()
        t1 = a.begin()
        t1.write("x", t1.read("x") + 1)
        t1.tentative_commit()
        t2 = a.begin()
        t2.write("y", t2.read("x") * 2)  # reads uncommitted tentative data
        t2.tentative_commit()
        tb = b.begin()
        tb.write("x", 100)  # overwrites a's server-read base
        tb.tentative_commit()
        b.sync()
        result = a.sync()
        # Backward validation caught the overwritten base and cascaded.
        assert result.aborted == [t1.tid, t2.tid]
        assert result.cascaded == [t2.tid]
        history = cluster.history()
        report = repro.check(history, levels=[L.PL_3])
        assert report.verdicts[L.PL_3].ok
