"""Tests for the orders/referential-integrity workload (repro.workloads.orders)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads.orders import (
    discontinue,
    initial_shop,
    orphan_orders,
    place_order,
    shop_programs,
)


def run(scheduler, programs, seed=0, n_items=3):
    db = Database(scheduler)
    db.load(initial_shop(n_items))
    result = Simulator(db, programs, seed=seed).run()
    return db.history(), result


class TestProgramsDirect:
    def test_order_placed_when_item_exists(self):
        h, result = run(SnapshotIsolationScheduler(), [place_order("o", "item:1")])
        assert orphan_orders(h) == []
        assert any(obj.startswith("order:") for obj in h.committed_state())

    def test_no_order_when_item_missing(self):
        h, _ = run(SnapshotIsolationScheduler(), [place_order("o", "item:9")])
        assert not any(obj.startswith("order:") for obj in h.committed_state())

    def test_discontinue_sweeps_orders(self):
        db = Database(SnapshotIsolationScheduler())
        db.load(initial_shop(2))
        Simulator(db, [place_order("o", "item:1")], seed=0).run()
        Simulator2 = Simulator(db, [discontinue("d", "item:1")], seed=0)
        # new programs against the same db: fresh simulator
        Simulator2.run()
        h = db.history()
        assert orphan_orders(h) == []
        assert "item:1" not in h.committed_state()


class TestSerializableIntegrity:
    @pytest.mark.parametrize(
        "factory",
        [lambda: LockingScheduler("serializable"), OptimisticScheduler],
        ids=["2PL", "OCC"],
    )
    def test_no_orphans_ever(self, factory):
        for seed in range(10):
            h, _ = run(
                factory(),
                shop_programs(n_orders=3, n_discontinues=2, seed=seed),
                seed=seed,
            )
            assert orphan_orders(h) == [], f"seed {seed}"
            assert repro.check(h).serializable


class TestSnapshotIsolationWriteSkew:
    def targeted_programs(self):
        # Placement and discontinuation of the same item, maximally racy.
        return [place_order("o", "item:1"), discontinue("d", "item:1")]

    def test_orphans_occur_under_si(self):
        orphaned = 0
        for seed in range(20):
            h, _ = run(SnapshotIsolationScheduler(), self.targeted_programs(), seed=seed)
            orphaned += bool(orphan_orders(h))
        assert orphaned > 0  # the write skew really happens

    def test_orphan_histories_fail_pl3_but_provide_pl_si(self):
        for seed in range(20):
            h, _ = run(SnapshotIsolationScheduler(), self.targeted_programs(), seed=seed)
            if orphan_orders(h):
                report = repro.check(h, extensions=True)
                assert report.ok(L.PL_SI)
                assert not report.ok(L.PL_3)

    def test_serializable_never_orphans_same_programs(self):
        for seed in range(20):
            h, _ = run(
                LockingScheduler("serializable"), self.targeted_programs(), seed=seed
            )
            assert orphan_orders(h) == []


class TestConditionalStep:
    def test_condition_false_skips(self):
        from repro.engine import Conditional, Program, Read, Write

        program = Program(
            "p",
            [
                Read("item:9", into="item"),
                Conditional(
                    lambda regs: regs["item"] is not None,
                    Write("flag", 1),
                ),
            ],
        )
        db = Database(SnapshotIsolationScheduler())
        db.load(initial_shop(1))
        Simulator(db, [program], seed=0).run()
        assert "flag" not in db.history().committed_state()

    def test_condition_true_runs(self):
        from repro.engine import Conditional, Program, Read, Write

        program = Program(
            "p",
            [
                Read("item:1", into="item"),
                Conditional(
                    lambda regs: regs["item"] is not None,
                    Write("flag", 1),
                ),
            ],
        )
        db = Database(SnapshotIsolationScheduler())
        db.load(initial_shop(1))
        Simulator(db, [program], seed=0).run()
        assert db.history().committed_state()["flag"] == 1
