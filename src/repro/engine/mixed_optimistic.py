"""A mixing-correct optimistic scheduler (paper Section 5.5).

The paper: "an optimistic implementation would attempt to fit each
committing transaction into the serial order based on its own requirements
(for its level) and its obligations to transactions running at higher
levels, and would abort the transaction if this is not possible.  An
optimistic implementation that is mixing-correct is presented in [1]."

This scheduler realizes that design on top of the backward-validation OCC:

* every transaction reads the latest *committed* state and installs its
  writes in commit order — so read- and write-dependency edges always point
  from earlier committer to later committer, and no G1 phenomenon can occur
  for any level;
* validation at commit is scaled to the committer's own level:

  - **PL-1 / PL-2**: no validation — their anti-dependencies are not
    relevant at their level (and not obligatory: an rw edge's relevance
    belongs to its *source*, the reader, which is the committer itself);
  - **PL-2.99**: item read-set validation against concurrently committed
    writers (its item-anti edges must point forward);
  - **PL-3**: item and predicate validation (all its anti edges forward).

Every emitted history is mixing-correct by construction: MSG read/write
edges follow commit order, and the only retained anti edges (sources at
PL-2.99/PL-3) are forced forward by validation.  The property tests check
exactly that over random mixed workloads.
"""

from __future__ import annotations

from ..core.levels import IsolationLevel
from ..core.msg import ansi_projection
from .optimistic import OptimisticScheduler
from .transaction import Transaction

__all__ = ["MixedOptimisticScheduler"]


class MixedOptimisticScheduler(OptimisticScheduler):
    """Backward-validation OCC with per-level validation (Section 5.5)."""

    name = "mixed-optimistic"

    def __init__(self, default_level: IsolationLevel = IsolationLevel.PL_3):
        super().__init__()
        self.default_level = default_level

    def _level_of(self, txn: Transaction) -> IsolationLevel:
        level = txn.level
        if level is None:
            return ansi_projection(self.default_level)
        if not isinstance(level, IsolationLevel):
            level = IsolationLevel.from_string(str(level))
        return ansi_projection(level)

    def _validate(self, txn: Transaction) -> None:
        level = self._level_of(txn)
        if not level.implies(IsolationLevel.PL_2_99):
            return  # PL-1 / PL-2: reads-of-committed + commit-order installs suffice
        check_predicates = level.implies(IsolationLevel.PL_3)
        for record in reversed(self._log):
            if record.commit_seq <= txn.snapshot_seq:
                break
            if record.write_set & txn.read_set:
                self._validation_failed(txn, record.tid)
            if check_predicates:
                for predicate in txn.predicates:
                    if self._changes_predicate(record, predicate):
                        self._validation_failed(txn, record.tid)
        if self.metrics is not None:
            self.metrics.counter(
                "occ_validations_total", "OCC commit validations by outcome"
            ).inc(scheduler=self.name, outcome="ok")
