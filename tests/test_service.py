"""Tests for the client/server service layer (repro.service) and the
public engine facade (repro.connect / SchedulerConfig)."""

import dataclasses
import warnings

import pytest

import repro
from repro.core.incremental import IncrementalAnalysis
from repro.core.levels import IsolationLevel
from repro.engine import factory
from repro.engine.database import Database
from repro.engine.locking import LockingScheduler
from repro.engine.mvcc import SnapshotIsolationScheduler
from repro.service import (
    Client,
    NetworkConfig,
    RequestTimeout,
    RetryPolicy,
    SchedulerConfig,
    Server,
    ServiceAborted,
    ServiceUnavailable,
    SimulatedNetwork,
)


def make_stack(scheduler="locking", *, net=None, initial=None, **server_kw):
    net = net or SimulatedNetwork()
    server = Server(net, scheduler, initial=initial or {"x": 1, "y": 2}, **server_kw)
    return net, server


# ---------------------------------------------------------------------------
# configs: frozen, keyword-only, validated
# ---------------------------------------------------------------------------


class TestConfigs:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (NetworkConfig, {"drop": 0.1}),
            (RetryPolicy, {"max_attempts": 3}),
            (SchedulerConfig, {"scheduler": "locking"}),
        ],
    )
    def test_frozen(self, cls, kwargs):
        config = cls(**kwargs)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 99 if cls is not RetryPolicy else None

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            NetworkConfig(7)
        with pytest.raises(TypeError):
            RetryPolicy(5)
        with pytest.raises(TypeError):
            SchedulerConfig("locking")

    def test_network_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(drop=1.0)
        with pytest.raises(ValueError):
            NetworkConfig(min_delay=5, max_delay=2)
        assert not NetworkConfig().faulty
        assert NetworkConfig(duplicate=0.1).faulty
        assert NetworkConfig(min_delay=1, max_delay=3).faulty

    def test_retry_validation_and_schedule(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        policy = RetryPolicy(max_attempts=5, backoff=2, factor=2.0, max_backoff=10)
        assert policy.schedule() == (2, 4, 8, 10)
        assert policy.backoff_before(0) == 0

    def test_scheduler_config_canonicalises(self):
        assert SchedulerConfig(scheduler="MVCC").scheduler == "snapshot-isolation"
        assert SchedulerConfig(scheduler="2PL").scheduler == "locking"
        config = SchedulerConfig(scheduler="locking", level="repeatable read")
        assert config.level is IsolationLevel.PL_2_99
        with pytest.raises(KeyError):
            SchedulerConfig(scheduler="nope")
        with pytest.raises(ValueError):
            SchedulerConfig(scheduler="locking", deadlock="pray")

    def test_declared_level(self):
        assert SchedulerConfig(scheduler="locking").declared_level is IsolationLevel.PL_3
        assert (
            SchedulerConfig(scheduler="si").declared_level is IsolationLevel.PL_2
        )
        assert (
            SchedulerConfig(scheduler="locking", level="PL-1").declared_level
            is IsolationLevel.PL_1
        )


# ---------------------------------------------------------------------------
# the connect facade and deprecation shims
# ---------------------------------------------------------------------------


class TestConnect:
    def test_connect_returns_database_with_config(self):
        db = repro.connect("locking", level="PL-2", initial={"x": 0})
        assert isinstance(db, Database)
        assert db.config.scheduler == "locking"
        assert db.config.level is IsolationLevel.PL_2
        t = db.begin()
        assert t.read("x") == 0
        t.commit()

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("locking", LockingScheduler),
            ("mvcc", SnapshotIsolationScheduler),
            ("si", SnapshotIsolationScheduler),
        ],
    )
    def test_aliases(self, name, expected):
        assert isinstance(repro.connect(name).scheduler, expected)

    def test_connect_monitor_attaches(self):
        monitor = IncrementalAnalysis(order_mode="commit")
        db = repro.connect("locking", monitor=monitor, initial={"x": 0})
        t = db.begin()
        t.write("x", 1)
        t.commit()
        assert monitor.strongest_level() is IsolationLevel.PL_3

    def test_database_from_string(self):
        db = Database("snapshot-isolation")
        assert isinstance(db.scheduler, SnapshotIsolationScheduler)
        assert db.config.scheduler == "snapshot-isolation"

    def test_hand_built_scheduler_warns_once(self):
        from repro.engine import database as database_mod

        database_mod._DIRECT_SCHEDULER_WARNED = False
        try:
            with pytest.warns(DeprecationWarning, match="repro.connect"):
                Database(LockingScheduler())
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                Database(LockingScheduler())  # second time: silent
        finally:
            database_mod._DIRECT_SCHEDULER_WARNED = False

    def test_factory_built_scheduler_does_not_warn(self):
        from repro.engine import database as database_mod

        database_mod._DIRECT_SCHEDULER_WARNED = False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            repro.connect("locking")
            Database(factory.create_scheduler("optimistic"))

    def test_top_level_reexports(self):
        for name in (
            "Database",
            "TransactionHandle",
            "Simulator",
            "SimulationResult",
            "connect",
            "SchedulerConfig",
            "Server",
            "Client",
            "run_stress",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__


# ---------------------------------------------------------------------------
# the simulated network
# ---------------------------------------------------------------------------


class TestNetwork:
    def test_reliable_round_trip(self):
        net = SimulatedNetwork()
        net.register_handler("srv", lambda payload, src: {"echo": payload["n"]})
        inbox = net.register_inbox("cli")
        net.send("cli", "srv", {"n": 7})
        while net.step():
            pass
        assert inbox == [("srv", {"echo": 7})]
        assert net.counters["delivered"] == 2

    def test_seeded_faults_are_deterministic(self):
        def run():
            net = SimulatedNetwork(
                NetworkConfig(seed=42, drop=0.3, duplicate=0.3, max_delay=5)
            )
            net.register_inbox("b")
            for i in range(50):
                net.send("a", "b", {"i": i})
            while net.step():
                pass
            return dict(net.counters), [p["i"] for _s, p in net._inboxes["b"]]

        assert run() == run()
        counters, seen = run()
        assert counters["dropped"] > 0 and counters["duplicated"] > 0
        assert len(seen) < 50 + counters["duplicated"]  # some really lost

    def test_down_endpoint_loses_in_flight(self):
        net = SimulatedNetwork()
        net.register_inbox("b")
        net.send("a", "b", {"i": 1})
        net.down("b")
        assert net.step()
        assert net.counters["lost_down"] == 1
        net.up("b")
        net.send("a", "b", {"i": 2})
        net.step()
        assert [p["i"] for _s, p in net._inboxes["b"]] == [2]

    def test_partition_blocks_and_heals(self):
        net = SimulatedNetwork()
        net.register_inbox("b")
        net.set_partition(("a",), ("b",))
        assert not net.reachable("a", "b")
        net.send("a", "b", {"i": 1})
        net.step()
        assert net.counters["lost_partition"] == 1
        net.heal()
        net.send("a", "b", {"i": 2})
        net.step()
        assert [p["i"] for _s, p in net._inboxes["b"]] == [2]

    def test_delays_reorder(self):
        net = SimulatedNetwork(NetworkConfig(seed=3, min_delay=1, max_delay=10))
        net.register_inbox("b")
        for i in range(20):
            net.send("a", "b", {"i": i})
        while net.step():
            pass
        order = [p["i"] for _s, p in net._inboxes["b"]]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))

    def test_flush_during_drain_terminates(self):
        # A crash triggered *inside* a delivery sweep flushes the queue
        # while drain_due is iterating it.  The sweep must keep reading
        # the live queue (flush rebuilds it) or it spins forever on the
        # dropped snapshot — the replica-crash-mid-catch-up livelock.
        net = SimulatedNetwork()
        net.register_inbox("victim")

        def crash_victim(payload, src):
            net.down("victim")
            net.flush("victim")
            return None

        net.register_handler("killer", crash_victim)
        # Two messages due the same tick: one to the victim (flushed
        # mid-sweep), one that triggers the flush.
        net.send("a", "killer", {"go": True})
        net.send("a", "victim", {"i": 1})
        # A self-rearming timer keeps the queue non-empty forever, like
        # the replication pump.
        def rearm(payload, src):
            net.timer("pump", {"tick": True}, delay=2)
            return None

        net.register_handler("pump", rearm)
        net.timer("pump", {"tick": True}, delay=1)
        for _ in range(10):
            assert net.drain_due() >= 1
        assert net.counters["lost_down"] >= 1


# ---------------------------------------------------------------------------
# client/server basics
# ---------------------------------------------------------------------------


class TestClientServer:
    def test_round_trip_and_history(self):
        net, server = make_stack()
        client = Client(net)
        client.begin()
        assert client.read("x") == 1
        client.write("x", 5)
        client.commit()
        history = server.history()
        assert 1 in history.committed
        assert client.journal  # deterministic observed history
        assert "[attempts=1]" in client.journal[0]

    def test_duplicate_request_executes_once(self):
        net, server = make_stack()
        client = Client(net)
        client.begin()
        # duplicate the write request manually: same rid = same token
        pending = client.submit("write", obj="x", value=9)
        net.send(client.name, "server", dict(pending.payload))
        net.run_until(pending.poll)
        while net.step():
            pass
        client._finish(pending)
        client.commit()
        assert server.counters["dedup_hits"] >= 1
        # exactly one x version written beyond init + load
        history = server.history()
        assert len(history.version_order["x"]) == 3

    def test_lost_reply_retry_does_not_double_apply(self):
        # drop is seeded; find the schedule where a reply vanishes by
        # brute force over seeds, then assert at-most-once held.
        for seed in range(30):
            net = SimulatedNetwork(NetworkConfig(seed=seed, drop=0.25))
            server = Server(net, "locking", initial={"x": 0})
            client = Client(net, policy=RetryPolicy(max_attempts=8, timeout=5))
            try:
                client.begin()
                client.write("x", 1)
                client.commit()
            except (RequestTimeout, ServiceAborted, ServiceUnavailable):
                continue
            history = server.history()
            assert len(history.version_order["x"]) == 3
            if client._retries_total > 0 and server.counters["dedup_hits"] > 0:
                return  # observed an actual retry answered from the cache
        pytest.fail("no seed exercised a dedup-cache retry")

    def test_busy_then_success(self):
        net, server = make_stack()
        holder = Client(net, name="holder")
        waiter = Client(net, name="waiter", policy=RetryPolicy(timeout=10))
        holder.begin()
        holder.write("x", 10)
        waiter.begin()
        pending = waiter.submit("read", obj="x", for_update=True)
        for _ in range(40):
            net.step() or net.advance()
            pending.poll()
        assert not pending.settled  # parked on busy while the lock is held
        assert server.counters["busy"] >= 1
        holder.commit()
        net.run_until(pending.poll)
        assert pending.result()["value"] == 10
        waiter.commit()

    def test_deadlock_is_broken(self):
        net, server = make_stack()
        a = Client(net, name="a", policy=RetryPolicy(timeout=6, max_attempts=20))
        b = Client(net, name="b", policy=RetryPolicy(timeout=6, max_attempts=20))
        a.begin()
        b.begin()
        a.write("x", 100)
        b.write("y", 200)
        pa = a.submit("write", obj="y", value=101)
        pb = b.submit("write", obj="x", value=201)
        outcomes = {}

        def drive():
            for name, pending, client in (("a", pa, a), ("b", pb, b)):
                if name in outcomes:
                    continue
                if pending.poll():
                    try:
                        pending.result()
                        outcomes[name] = "ok"
                    except ServiceAborted as exc:
                        outcomes[name] = exc.reason
                        client.tid = None
            return len(outcomes) == 2

        assert net.run_until(drive)
        assert sorted(outcomes.values()) == ["deadlock", "ok"]
        assert server.deadlock_victims == 1
        survivor = a if outcomes["a"] == "ok" else b
        survivor.commit()
        assert server.commit_count == 1

    def test_unknown_verb_and_no_txn(self):
        net, _server = make_stack()
        client = Client(net)
        reply = client.call("ping")
        assert reply["ok"]
        with pytest.raises(ServiceAborted, match="no active transaction"):
            client.call("read", obj="x")

    def test_server_aborts_on_engine_abort(self):
        net, server = make_stack("optimistic", initial={"x": 0})
        a = Client(net, name="a")
        b = Client(net, name="b")
        a.begin()
        b.begin()
        assert a.read("x") == 0
        assert b.read("x") == 0
        a.write("x", 1)
        b.write("x", 2)
        a.commit()
        with pytest.raises(ServiceAborted):
            b.commit()
        assert server.commit_count == 1


# ---------------------------------------------------------------------------
# crash / restart
# ---------------------------------------------------------------------------


class TestCrashRestart:
    def test_committed_state_survives(self):
        net, server = make_stack(initial={"x": 1})
        client = Client(net, policy=RetryPolicy(timeout=5, max_attempts=3))
        client.begin()
        client.write("x", 42)
        client.commit()
        before = server.history()
        server.crash()
        assert not net.is_up("server")
        with pytest.raises((RequestTimeout, ServiceUnavailable)):
            client.ping()
        server.restart()
        after = server.history()
        assert after.committed >= before.committed
        reader = Client(net, name="reader")
        reader.begin()
        assert reader.read("x") == 42
        reader.commit()

    def test_active_txn_dies_with_crash(self):
        net, server = make_stack(initial={"x": 1})
        client = Client(net, policy=RetryPolicy(timeout=5, max_attempts=3))
        client.begin()
        client.write("x", 99)
        server.crash()
        server.restart()
        client.tid = None
        reader = Client(net, name="reader")
        reader.begin()
        assert reader.read("x") == 1  # uncommitted write rolled back
        reader.commit()

    def test_commit_retry_across_crash_recovers(self):
        net, server = make_stack(initial={"x": 1})
        client = Client(net, policy=RetryPolicy(timeout=8, max_attempts=10))
        client.begin()
        client.write("x", 7)
        pending = client.submit("commit")
        # deliver the commit request but crash before the reply escapes
        net.step()
        assert server.commit_count == 1
        server.crash()
        net.advance(30)
        server.restart()
        net.run_until(pending.poll)
        reply = client._finish(pending)
        assert reply["ok"] and reply.get("recovered")
        assert pending.attempts > 1

    def test_monitor_survives_restart(self):
        monitor = IncrementalAnalysis(order_mode="commit")
        net, server = make_stack(initial={"x": 1}, monitor=monitor)
        client = Client(net)
        client.begin()
        client.write("x", 2)
        client.commit()
        server.crash()
        server.restart()
        client.tid = None
        client.begin()
        client.write("x", 3)
        reply = client.commit()
        assert reply["certified"] is True
        assert server.certified and all(server.certified.values())


# ---------------------------------------------------------------------------
# retry/backoff determinism
# ---------------------------------------------------------------------------


class TestBackoffDeterminism:
    def test_backoff_schedule_is_exact(self):
        policy = RetryPolicy(max_attempts=4, timeout=10, backoff=3, factor=2.0)
        net = SimulatedNetwork(NetworkConfig(drop=0.999999, seed=1))
        # (drop < 1.0 enforced; make every send vanish via a partition)
        net = SimulatedNetwork()
        net.set_partition(("client",), ("server",))
        client = Client(net, name="client", policy=policy)
        pending = client.submit("ping")
        send_times = [0]
        while not pending.settled:
            before = pending.attempts
            net.step() or net.advance()
            pending.poll()
            if pending.attempts != before:
                send_times.append(net.now)
        with pytest.raises(RequestTimeout):
            pending.result()
        gaps = [b - a for a, b in zip(send_times, send_times[1:])]
        # timeout (10) + backoff before each retry (3, 6, 12)
        assert gaps == [13, 16, 22]

    def test_identical_seeds_identical_journals(self):
        def run():
            net = SimulatedNetwork(
                NetworkConfig(seed=5, drop=0.2, duplicate=0.2, max_delay=4)
            )
            server = Server(net, "locking", initial={"x": 0})
            client = Client(net, policy=RetryPolicy(timeout=8))
            for i in range(5):
                try:
                    client.begin()
                    client.write("x", i)
                    client.commit()
                except (ServiceAborted, RequestTimeout, ServiceUnavailable):
                    client.tid = None
            return tuple(client.journal), repr(server.history())

        assert run() == run()


# ---------------------------------------------------------------------------
# engine recovery plumbing (restore / recover)
# ---------------------------------------------------------------------------


class TestRecoverPlumbing:
    @pytest.mark.parametrize(
        "family", ["locking", "optimistic", "snapshot-isolation"]
    )
    def test_database_recover_rebuilds_state(self, family):
        db = repro.connect(family, initial={"x": 1, "y": 2})
        t = db.begin()
        t.write("x", 10)
        t.commit()
        dead = db.begin()
        dead.write("y", 99)
        dead.abort()
        recorder = db.scheduler.recorder
        revived = Database.recover(factory.create_scheduler(family), recorder)
        t2 = revived.begin()
        assert t2.read("x") == 10
        assert t2.read("y") == 2  # aborted write not replayed
        assert t2.tid > t.tid  # tid counter continues, no collisions
        t2.commit()

    def test_provides_on_monitor(self):
        monitor = IncrementalAnalysis(order_mode="commit")
        db = repro.connect("locking", monitor=monitor, initial={"x": 0})
        t = db.begin()
        t.write("x", 1)
        t.commit()
        assert monitor.provides(IsolationLevel.PL_3)
        assert monitor.provides("PL-1")
        with pytest.raises(ValueError):
            monitor.provides(IsolationLevel.PL_SI)


class TestInstrumentation:
    def test_stress_run_emits_service_metrics_and_trace(self):
        from repro.observability import MetricsRegistry, Tracer
        from repro.service import run_stress

        metrics, tracer = MetricsRegistry(), Tracer()
        result = run_stress(
            clients=3,
            txns_per_client=6,
            seed=7,
            network=NetworkConfig(
                drop=0.05, duplicate=0.05, min_delay=1, max_delay=4
            ),
            crash_after_commits=8,
            metrics=metrics,
            tracer=tracer,
        )
        assert result.all_certified
        text = metrics.render_text()
        for name in (
            "service_messages_total",
            "service_requests_total",
            "service_dedup_hits_total",
            "service_busy_total",
            "service_server_crashes_total",
            "service_commits_certified_total",
            "service_client_retries_total",
            "service_client_timeouts_total",
        ):
            assert name in text, name
        events = {r.get("name") for r in tracer.records}
        assert {"server.crash", "server.restart"} <= events
