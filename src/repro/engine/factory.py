"""The public engine facade: ``repro.connect``.

One call replaces ad-hoc scheduler construction::

    import repro

    db = repro.connect("locking", level="repeatable read")
    db.load({"x": 0})
    t = db.begin()
    t.write("x", t.read("x") + 1)
    t.commit()

``connect`` accepts a scheduler family name (with aliases), normalises the
per-family options into a frozen :class:`SchedulerConfig`, and returns a
ready :class:`~repro.engine.database.Database`.  The config rides on the
database (``db.config``) so higher layers — the simulator, the
:mod:`repro.service` client/server stack, crash recovery — can rebuild an
identical scheduler from it.

The legacy path (``Database(SnapshotIsolationScheduler())``) still works
but is deprecated; see :class:`~repro.engine.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

from ..core.levels import IsolationLevel
from .scheduler import Scheduler

__all__ = ["SCHEDULERS", "SchedulerConfig", "connect", "create_scheduler"]


def _make_locking(cfg: "SchedulerConfig") -> Scheduler:
    from .locking import LockingScheduler, profile_for_level

    profile = cfg.profile
    if profile is None and cfg.level is not None:
        profile = profile_for_level(cfg.level).name
    return LockingScheduler(profile or "serializable", deadlock=cfg.deadlock)


def _make_optimistic(cfg: "SchedulerConfig") -> Scheduler:
    from .optimistic import OptimisticScheduler

    return OptimisticScheduler()


def _make_mixed_optimistic(cfg: "SchedulerConfig") -> Scheduler:
    from .mixed_optimistic import MixedOptimisticScheduler

    return MixedOptimisticScheduler(cfg.level or IsolationLevel.PL_3)


def _make_si(cfg: "SchedulerConfig") -> Scheduler:
    from .mvcc import SnapshotIsolationScheduler

    return SnapshotIsolationScheduler()


def _make_mv_rc(cfg: "SchedulerConfig") -> Scheduler:
    from .mvcc import ReadCommittedMVScheduler

    return ReadCommittedMVScheduler()


#: Scheduler families by canonical name.  Aliases map onto these.
SCHEDULERS: Dict[str, Any] = {
    "locking": _make_locking,
    "optimistic": _make_optimistic,
    "mixed-optimistic": _make_mixed_optimistic,
    "snapshot-isolation": _make_si,
    "mv-read-committed": _make_mv_rc,
}

_ALIASES: Dict[str, str] = {
    "2pl": "locking",
    "occ": "optimistic",
    "mixed": "mixed-optimistic",
    "mvcc": "snapshot-isolation",
    "si": "snapshot-isolation",
    "snapshot": "snapshot-isolation",
    "mv-rc": "mv-read-committed",
    "read-committed-mv": "mv-read-committed",
}


def _canonical(name: str) -> str:
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    key = _ALIASES.get(key, key)
    if key not in SCHEDULERS:
        known = ", ".join(sorted(SCHEDULERS))
        raise KeyError(f"unknown scheduler {name!r} (known: {known})")
    return key


@dataclass(frozen=True, kw_only=True)
class SchedulerConfig:
    """Frozen, keyword-only description of one engine configuration.

    ``build()`` manufactures the scheduler; equal configs build
    behaviourally identical schedulers, which is what crash recovery and
    the reproducibility tests rely on.
    """

    #: Canonical scheduler family name (see :data:`SCHEDULERS`).
    scheduler: str = "locking"
    #: Default isolation level transactions run at (``None`` = the
    #: family's own default; locking maps it to its Figure 1 profile).
    level: Optional[IsolationLevel] = None
    #: Locking only: explicit Figure 1 profile name (overrides ``level``).
    profile: Optional[str] = None
    #: Locking only: ``"detect"`` or ``"wound-wait"``.
    deadlock: str = "detect"
    #: Seed for layers that interleave work on top of this database
    #: (simulator, service); the database itself is deterministic.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheduler", _canonical(self.scheduler))
        if isinstance(self.level, str):
            object.__setattr__(
                self, "level", IsolationLevel.from_string(self.level)
            )
        if self.deadlock not in ("detect", "wound-wait"):
            raise ValueError("deadlock policy must be 'detect' or 'wound-wait'")

    # ------------------------------------------------------------------

    def build(self) -> Scheduler:
        """A fresh scheduler for this config."""
        return SCHEDULERS[self.scheduler](self)

    def with_seed(self, seed: int) -> "SchedulerConfig":
        return replace(self, seed=seed)

    @property
    def declared_level(self) -> Optional[IsolationLevel]:
        """The level transactions of this config are *declared* at (used by
        the service layer's live certification): the configured level, or
        the family's natural guarantee."""
        if self.level is not None:
            return self.level
        return _NATURAL_LEVEL.get(self.scheduler)


#: The level each family's committed histories naturally provide, used as
#: the declared level when the caller does not pick one.  Snapshot
#: isolation declares PL-2 (its strongest *core* guarantee — PL-SI itself
#: needs the G-SI extensions, which the online monitor does not maintain).
_NATURAL_LEVEL: Dict[str, IsolationLevel] = {
    "locking": IsolationLevel.PL_3,
    "optimistic": IsolationLevel.PL_3,
    "mixed-optimistic": IsolationLevel.PL_3,
    "snapshot-isolation": IsolationLevel.PL_2,
    "mv-read-committed": IsolationLevel.PL_2,
}


def create_scheduler(
    spec: str | SchedulerConfig, **overrides: Any
) -> Scheduler:
    """Build a scheduler from a family name (or config), e.g.
    ``create_scheduler("locking", profile="read-committed")``."""
    config = (
        spec
        if isinstance(spec, SchedulerConfig)
        else SchedulerConfig(scheduler=spec, **overrides)
    )
    scheduler = config.build()
    scheduler.config = config
    return scheduler


def connect(
    scheduler: str | SchedulerConfig = "locking",
    *,
    level: Optional[IsolationLevel | str] = None,
    seed: int = 0,
    profile: Optional[str] = None,
    deadlock: str = "detect",
    initial: Optional[Mapping[str, Any]] = None,
    monitor: Optional[object] = None,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
):
    """Open a database: the single public engine entry point.

    Parameters
    ----------
    scheduler:
        Family name — ``"locking"``, ``"optimistic"``, ``"mixed-optimistic"``,
        ``"snapshot-isolation"`` (alias ``"mvcc"``/``"si"``),
        ``"mv-read-committed"`` — or a prebuilt :class:`SchedulerConfig`.
    level:
        Default isolation level (locking derives its Figure 1 profile from
        it; mixed OCC validates at it).
    seed:
        Recorded on the config for seeded layers built on top (simulator,
        service); two ``connect`` calls with equal arguments produce
        engines whose executions are bit-identical under the same driver.
    profile / deadlock:
        Locking-family options (explicit Figure 1 profile; deadlock
        handling policy).
    initial:
        Optional initial state, loaded via the T0 loader transaction.
    monitor / metrics / tracer:
        Optional online :class:`~repro.core.incremental.IncrementalAnalysis`
        (attached to the recorder) and observability sinks.
    """
    from .database import Database

    if isinstance(scheduler, SchedulerConfig):
        config = scheduler
        if level is not None or profile is not None or seed:
            config = replace(
                config,
                level=level if level is not None else config.level,
                profile=profile if profile is not None else config.profile,
                seed=seed or config.seed,
            )
    else:
        config = SchedulerConfig(
            scheduler=scheduler,
            level=level,  # type: ignore[arg-type]
            profile=profile,
            deadlock=deadlock,
            seed=seed,
        )
    sched = create_scheduler(config)
    db = Database(sched)
    if metrics is not None or tracer is not None:
        sched.instrument(metrics=metrics, tracer=tracer)
    if monitor is not None:
        sched.recorder.attach_monitor(monitor)
    if initial is not None:
        db.load(initial)
    return db
