"""Trace-propagation guard: observability must be pay-for-what-you-use.

Two pins:

* **disabled-tracer overhead** — a service run with ``tracer=None`` takes
  the exact same code path it always did (every trace site is guarded by
  an ``is not None`` check), so it must stay within the same bound the
  service layer itself is pinned to against direct engine calls
  (``bench_service_faults``).  A regression here means trace plumbing
  leaked into the un-traced hot path.
* **traced-run table** — one faulty stress run with a tracer attached,
  the regenerated table recording span/event counts per name and the
  per-transaction record volume.  The traced run must still certify and
  replay byte-identically; tracing narrates the run, never changes it.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import connect
from repro.observability import Tracer
from repro.service import (
    Client,
    NetworkConfig,
    Server,
    SimulatedNetwork,
    StressConfig,
    run_stress,
)

_TXNS = 200
_KEYS = 8


def _run_direct() -> float:
    best = float("inf")
    for _round in range(3):
        db = connect("locking", initial={f"k{i}": 0 for i in range(_KEYS)})
        start = time.perf_counter()
        for i in range(_TXNS):
            t = db.begin()
            key = f"k{i % _KEYS}"
            t.write(key, t.read(key, for_update=True) + 1)
            t.commit()
        best = min(best, time.perf_counter() - start)
    return best


def _run_service(tracer) -> float:
    best = float("inf")
    for _round in range(3):
        net = SimulatedNetwork(tracer=tracer)
        if tracer is not None:
            tracer.use_clock(lambda: float(net.now))
        server = Server(
            net, "locking", initial={f"k{i}": 0 for i in range(_KEYS)},
            tracer=tracer,
        )
        client = Client(net, tracer=tracer)
        start = time.perf_counter()
        for i in range(_TXNS):
            client.begin()
            key = f"k{i % _KEYS}"
            client.write(key, client.read(key, for_update=True) + 1)
            client.commit()
        best = min(best, time.perf_counter() - start)
        assert server.commit_count == _TXNS
    return best


@pytest.mark.benchguard
def test_disabled_tracer_service_overhead_at_baseline():
    direct = _run_direct()
    service = _run_service(tracer=None)
    # Same pin as bench_service_faults: the un-traced service path gained
    # only `is not None` guards, which must be free at this resolution.
    assert service < max(direct * 12, direct + 0.05), (
        f"untraced service run {service * 1000:.1f} ms vs direct "
        f"{direct * 1000:.1f} ms — trace plumbing leaked into the "
        f"disabled path"
    )


def test_traced_run_table(record_table):
    config = StressConfig(
        clients=3,
        txns_per_client=10,
        keys=_KEYS,
        seed=17,
        network=NetworkConfig(
            drop=0.05, duplicate=0.08, min_delay=1, max_delay=4
        ),
        crash_after_commits=10,
    )
    first = run_stress(config, tracer=Tracer())
    second = run_stress(config, tracer=Tracer())
    assert first.committed == 30 and first.all_certified
    lines_a = [json.dumps(r, sort_keys=True) for r in first.tracer.records]
    lines_b = [json.dumps(r, sort_keys=True) for r in second.tracer.records]
    assert lines_a == lines_b, "traces must replay byte-identically"
    untraced = run_stress(config)
    assert untraced.history_text == first.history_text
    assert untraced.journals == first.journals, (
        "tracing must not change the execution"
    )

    counts: dict = {}
    for record in first.tracer.records:
        key = (record["kind"], record["name"])
        counts[key] = counts.get(key, 0) + 1
    rows = [f"{'kind':6} {'name':22} {'count':>6}"]
    for (kind, name), count in sorted(
        counts.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        rows.append(f"{kind:6} {name:22} {count:6d}")
    rows.append(
        f"\ntotal records: {len(first.tracer.records)} "
        f"({len(first.tracer.records) / first.committed:.1f} per commit)"
    )
    record_table("trace_propagation", "\n".join(rows))
