"""Property-based tests (hypothesis) on the core formalism."""


from hypothesis import given, settings, strategies as st

import repro
from repro.baseline.preventative import PreventativeAnalysis, preventative_satisfies
from repro.core import DSG, Analysis, format_history, parse_history
from repro.core.conflicts import DepKind, all_dependencies
from repro.core.levels import ANSI_CHAIN, IsolationLevel as L, satisfies
from repro.workloads.generator import synthetic_history

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

history_params = st.fixed_dictionaries(
    {
        "n_txns": st.integers(min_value=1, max_value=25),
        "n_objects": st.integers(min_value=1, max_value=8),
        "ops_per_txn": st.integers(min_value=1, max_value=6),
        "write_fraction": st.floats(min_value=0.0, max_value=1.0),
        "abort_fraction": st.floats(min_value=0.0, max_value=0.5),
        "stale_read_fraction": st.floats(min_value=0.0, max_value=1.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def make_history(params):
    return synthetic_history(**params)


# ----------------------------------------------------------------------
# generator well-formedness and round trips
# ----------------------------------------------------------------------


@given(history_params)
@settings(max_examples=60, deadline=None)
def test_synthetic_histories_are_well_formed(params):
    make_history(params)  # validate=True raises on violation


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_format_parse_round_trip(params):
    h = make_history(params)
    text = format_history(h)
    reparsed = parse_history(text, auto_complete=True)
    assert reparsed.events == h.events
    assert reparsed.version_order == h.version_order


# ----------------------------------------------------------------------
# structural invariants
# ----------------------------------------------------------------------


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_dsg_nodes_are_committed(params):
    h = make_history(params)
    dsg = DSG(h)
    for edge in dsg.edges:
        assert edge.src in h.committed_all
        assert edge.dst in h.committed_all
        assert edge.src != edge.dst


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_ww_edges_follow_version_order(params):
    h = make_history(params)
    for edge in all_dependencies(h):
        if edge.kind is DepKind.WW:
            chain = h.order_of(edge.obj)
            dst_final = h.final_version(edge.obj, edge.dst) or edge.version
            src_final = h.final_version(edge.obj, edge.src)
            if src_final is not None and dst_final in chain:
                assert chain.index(src_final) < chain.index(dst_final)


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_version_order_invariants(params):
    h = make_history(params)
    for obj, chain in h.version_order.items():
        assert chain[0].is_unborn
        assert len(set(chain)) == len(chain)


# ----------------------------------------------------------------------
# level-theory invariants
# ----------------------------------------------------------------------


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_classification_monotone_on_ansi_chain(params):
    h = make_history(params)
    analysis = Analysis(h)
    oks = [satisfies(h, level, analysis=analysis).ok for level in ANSI_CHAIN]
    for weaker, stronger in zip(oks, oks[1:]):
        assert weaker or not stronger  # stronger ⟹ weaker


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_implication_respected_across_all_levels(params):
    h = make_history(params)
    analysis = Analysis(h)
    levels = list(L)
    oks = {level: satisfies(h, level, analysis=analysis).ok for level in levels}
    for a in levels:
        for b in levels:
            if a.implies(b) and oks[a]:
                assert oks[b], f"{a} provided but implied {b} violated"


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_preventative_acceptance_implies_generalized(params):
    """The paper's permissiveness claim, as a property: any history the
    locking-style definitions accept, the generalized definitions accept.
    (The generator only produces reads of live or committed versions, the
    realizable case.)"""
    h = make_history(params)
    analysis = Analysis(h)
    prev = PreventativeAnalysis(h)
    for level in ANSI_CHAIN:
        if preventative_satisfies(h, level, analysis=prev):
            assert satisfies(h, level, analysis=analysis).ok


@given(history_params)
@settings(max_examples=30, deadline=None)
def test_acyclic_dsg_iff_pl3_given_pl2(params):
    """For histories without G1, PL-3 holds exactly when the DSG is
    acyclic."""
    h = make_history(params)
    analysis = Analysis(h)
    if satisfies(h, L.PL_2, analysis=analysis).ok:
        assert satisfies(h, L.PL_3, analysis=analysis).ok == analysis.dsg.is_acyclic()


@given(history_params)
@settings(max_examples=30, deadline=None)
def test_serializable_histories_have_topological_witness(params):
    h = make_history(params)
    rep = repro.check(h)
    if rep.serializable:
        order = rep.analysis.dsg.topological_order()
        position = {tid: i for i, tid in enumerate(order)}
        for edge in rep.analysis.dsg.edges:
            assert position[edge.src] < position[edge.dst]


@given(history_params)
@settings(max_examples=25, deadline=None)
def test_repair_always_reaches_target(params):
    """Repair's contract, property-tested: the result provides the target
    level and never aborts the loader or setup transactions."""
    from repro.analysis.repair import repair

    h = make_history(params)
    result = repair(h, L.PL_3)
    assert satisfies(result.history, L.PL_3).ok
    assert 0 not in result.aborted
    assert not (result.aborted & h.setup_tids)


@given(history_params)
@settings(max_examples=25, deadline=None)
def test_serialize_round_trip_preserves_verdicts(params):
    from repro.core.serialize import dumps, loads

    h = make_history(params)
    restored = loads(dumps(h))
    a1, a2 = Analysis(h), Analysis(restored)
    for level in ANSI_CHAIN:
        assert (
            satisfies(h, level, analysis=a1).ok
            == satisfies(restored, level, analysis=a2).ok
        )
