"""Transaction histories (paper Section 4.2).

A :class:`History` is the pair the paper calls ``H``:

* a sequence of :mod:`events <repro.core.events>` — one linearization of the
  paper's partial order ``E``; and
* a *version order* ``<<`` — for each object, a total order over the
  committed versions of that object.

The version order is deliberately independent of event order: a version may
be ordered before another even though it was installed later (the paper's
``H_write-order`` example), which is what admits multi-version and optimistic
implementations.

On construction the history is validated against every well-formedness
constraint of Section 4.2 (see :mod:`repro.core.validation`); an invalid
history raises :class:`~repro.exceptions.MalformedHistoryError` or
:class:`~repro.exceptions.VersionOrderError`.  All conflict/phenomenon
analysis assumes a validated history.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import MalformedHistoryError, VersionOrderError
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .interning import (
    ARRAY_CORE_DEFAULT,
    EventLog,
    K_ABORT,
    K_BEGIN,
    K_COMMIT,
    K_PREAD,
    K_READ,
    K_WRITE,
)
from .objects import INIT_TID, Version, VersionKind, relation_of
from .predicates import Predicate

__all__ = ["History"]


class History:
    """An immutable transaction history ``H = (E, <<)``.

    Parameters
    ----------
    events:
        The event sequence.  Must be *complete*: every transaction mentioned
        has exactly one :class:`Commit` or :class:`Abort` as its last event.
        Pass ``auto_complete=True`` to append aborts for unfinished
        transactions, the completion rule of Section 4.2.
    version_order:
        ``{obj: [v1, v2, ...]}`` listing the committed visible (and at most
        one final dead) versions of each object, *excluding* the unborn
        version, which is prepended automatically.  If ``None``, the order
        defaults to the order of the committed transactions' final write
        events — correct for single-version implementations and for every
        example in the paper that omits an explicit order.
    default_level:
        Isolation level assumed for transactions without a ``Begin`` event
        declaring one (used by mixed-system checks; ``None`` means PL-3).
    validate:
        Whether to run full well-formedness validation (on by default;
        generators that construct histories correct by construction may skip
        it for speed).
    array_core:
        Whether the index builders read the flat :class:`EventLog` arrays
        (kind codes and interned ids) instead of re-scanning the event
        objects with ``isinstance`` chains.  ``None`` (the default) follows
        :data:`~repro.core.interning.ARRAY_CORE_DEFAULT`; the equivalence
        suite passes ``False`` to pin the legacy object path.  Both paths
        produce identical indexes.
    """

    def __init__(
        self,
        events: Iterable[Event],
        version_order: Optional[Mapping[str, Sequence[Version]]] = None,
        *,
        default_level: Optional[object] = None,
        auto_complete: bool = False,
        validate: bool = True,
        array_core: Optional[bool] = None,
    ):
        evs = tuple(events)
        if auto_complete:
            evs = _complete(evs)
        self.events: Tuple[Event, ...] = evs
        self.default_level = default_level
        self._explicit_order = version_order is not None
        self._array_core = (
            ARRAY_CORE_DEFAULT if array_core is None else bool(array_core)
        )
        # Per-predicate memoization (keyed by predicate identity, holding a
        # reference so the id stays valid): match results per version, match-
        # change results per version, and per-object changer positions.  A
        # history is immutable, so these never need invalidation.
        self._pred_caches: Dict[int, Tuple[object, Dict, Dict, Dict]] = {}
        self.version_order: Dict[str, Tuple[Version, ...]] = (
            self._build_order_array(version_order)
            if self._array_core
            else self._build_order(version_order)
        )
        if validate:
            from .validation import validate_history

            validate_history(self)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @cached_property
    def log(self) -> EventLog:
        """Array-of-struct mirror of the event sequence (built lazily; the
        array-core index builders all read from it)."""
        return EventLog(self.events)

    def _build_order(
        self, supplied: Optional[Mapping[str, Sequence[Version]]]
    ) -> Dict[str, Tuple[Version, ...]]:
        order: Dict[str, List[Version]] = {}
        if supplied is not None:
            for obj, versions in supplied.items():
                chain: List[Version] = []
                for v in versions:
                    if v.is_unborn:
                        continue  # the unborn version is implicit
                    if v.obj != obj:
                        raise VersionOrderError(
                            f"version order for {obj!r} contains version of {v.obj!r}"
                        )
                    chain.append(v)
                order[obj] = chain
        # Objects not covered by an explicit order default to the order of
        # the committed transactions' final write events.
        for ev in self.events:
            if isinstance(ev, Write) and ev.tid in self.committed:
                obj = ev.version.obj
                if supplied is not None and obj in supplied:
                    continue
                v = self.final_version(obj, ev.tid)
                if v == ev.version:
                    order.setdefault(obj, []).append(v)
        # Every object mentioned anywhere gets an order entry so lookups are
        # uniform, and *setup versions* — versions that are read (directly or
        # in a version set) but never written by any event, representing the
        # paper's implicit initial database state (e.g. ``x0`` in
        # ``H_phantom``, or ``y0`` in ``H_pred-read`` where T0 has events but
        # no write of ``y``) — are installed right after the unborn version.
        setup: Dict[str, List[Version]] = {}
        written = {ev.version for ev in self.events if isinstance(ev, Write)}

        def note(version: Version) -> None:
            obj = version.obj
            chain = order.setdefault(obj, [])
            if (
                not version.is_unborn
                and version not in written
                and version not in chain
                and version not in setup.get(obj, ())
            ):
                setup.setdefault(obj, []).append(version)

        for ev in self.events:
            if isinstance(ev, (Read, Write)):
                order.setdefault(ev.version.obj, [])
                if isinstance(ev, Read):
                    note(ev.version)
            elif isinstance(ev, PredicateRead):
                for v in ev.vset.versions():
                    note(v)
        return {
            obj: (Version.unborn(obj),) + tuple(setup.get(obj, ())) + tuple(chain)
            for obj, chain in order.items()
        }

    def _build_order_array(
        self, supplied: Optional[Mapping[str, Sequence[Version]]]
    ) -> Dict[str, Tuple[Version, ...]]:
        """``_build_order`` over the flat event log: kind codes replace the
        isinstance chains and interned ids replace per-event attribute walks.
        Produces exactly the same mapping as the object path."""
        log = self.log
        inn = log.interner
        kind, vids = log.kind, log.vid
        versions, objects = inn.versions, inn.objects
        ver_obj, ver_tid, ver_seq = inn.ver_obj, inn.ver_tid, inn.ver_seq
        order: Dict[str, List[Version]] = {}
        if supplied is not None:
            for obj, chain_vs in supplied.items():
                chain: List[Version] = []
                for v in chain_vs:
                    if v.is_unborn:
                        continue  # the unborn version is implicit
                    if v.obj != obj:
                        raise VersionOrderError(
                            f"version order for {obj!r} contains version of {v.obj!r}"
                        )
                    chain.append(v)
                order[obj] = chain
        committed = self.committed
        # Final write seq per (object, writer): one pass over the write rows.
        fin: Dict[Tuple[int, int], int] = {}
        for k, vid in zip(kind, vids):
            if k == K_WRITE:
                key = (ver_obj[vid], ver_tid[vid])
                if ver_seq[vid] > fin.get(key, 0):
                    fin[key] = ver_seq[vid]
        supplied_objs = frozenset(supplied) if supplied is not None else frozenset()
        written = set()
        for k, vid in zip(kind, vids):
            if k == K_WRITE:
                written.add(vid)
                tid = ver_tid[vid]
                if tid in committed:
                    oid = ver_obj[vid]
                    obj = objects[oid]
                    if obj in supplied_objs:
                        continue
                    if ver_seq[vid] == fin[(oid, tid)]:
                        order.setdefault(obj, []).append(versions[vid])
        setup: Dict[str, List[Version]] = {}

        def note(vid: int) -> None:
            v = versions[vid]
            obj = objects[ver_obj[vid]]
            chain = order.setdefault(obj, [])
            if (
                ver_tid[vid] != INIT_TID
                and vid not in written
                and v not in chain
                and v not in setup.get(obj, ())
            ):
                setup.setdefault(obj, []).append(v)

        version_id = inn.version_id
        events = self.events
        for i, k in enumerate(kind):
            if k == K_READ:
                order.setdefault(objects[ver_obj[vids[i]]], [])
                note(vids[i])
            elif k == K_WRITE:
                order.setdefault(objects[ver_obj[vids[i]]], [])
            elif k == K_PREAD:
                for v in events[i].vset.versions():
                    note(version_id[v])
        return {
            obj: (Version.unborn(obj),) + tuple(setup.get(obj, ())) + tuple(chain)
            for obj, chain in order.items()
        }

    # ------------------------------------------------------------------
    # basic indexes
    # ------------------------------------------------------------------

    @cached_property
    def tids(self) -> Tuple[int, ...]:
        """All application transaction ids, in order of first appearance."""
        if self._array_core:
            return tuple(dict.fromkeys(self.log.tid))
        seen: Dict[int, None] = {}
        for ev in self.events:
            seen.setdefault(ev.tid, None)
        return tuple(seen)

    @cached_property
    def committed(self) -> frozenset[int]:
        if self._array_core:
            log = self.log
            return frozenset(
                t for k, t in zip(log.kind, log.tid) if k == K_COMMIT
            )
        return frozenset(ev.tid for ev in self.events if isinstance(ev, Commit))

    @cached_property
    def aborted(self) -> frozenset[int]:
        if self._array_core:
            log = self.log
            return frozenset(
                t for k, t in zip(log.kind, log.tid) if k == K_ABORT
            )
        return frozenset(ev.tid for ev in self.events if isinstance(ev, Abort))

    @cached_property
    def writes(self) -> Dict[Version, Write]:
        """Every write event indexed by the version it creates."""
        if self._array_core:
            return {
                ev.version: ev
                for k, ev in zip(self.log.kind, self.events)
                if k == K_WRITE
            }
        out: Dict[Version, Write] = {}
        for ev in self.events:
            if isinstance(ev, Write):
                out[ev.version] = ev
        return out

    @cached_property
    def _final_seq(self) -> Dict[Tuple[str, int], int]:
        out: Dict[Tuple[str, int], int] = {}
        for v in self.writes:
            key = (v.obj, v.tid)
            if v.seq > out.get(key, 0):
                out[key] = v.seq
        return out

    def final_version(self, obj: str, tid: int) -> Optional[Version]:
        """``x_i``: the last version of ``obj`` written by ``T_tid``, or
        ``None`` if it never wrote ``obj``."""
        seq = self._final_seq.get((obj, tid))
        if seq is None:
            return None
        return Version(obj, tid, seq)

    def is_final(self, version: Version) -> bool:
        """Whether ``version`` is its writer's final modification of the
        object (i.e. ``x_{i:m}`` with maximal ``m``)."""
        return self._final_seq.get((version.obj, version.tid)) == version.seq

    @cached_property
    def installed(self) -> frozenset[Version]:
        """All versions that appear in some object's version order (the
        committed versions, paper Section 4.2)."""
        return frozenset(v for chain in self.version_order.values() for v in chain)

    def order_of(self, obj: str) -> Tuple[Version, ...]:
        """The full version order of ``obj`` including the unborn version."""
        return self.version_order.get(obj, (Version.unborn(obj),))

    @cached_property
    def order_index(self) -> Dict[Version, int]:
        """Position of every installed version within its object's version
        order (unborn version at index 0)."""
        return {
            v: i
            for chain in self.version_order.values()
            for i, v in enumerate(chain)
        }

    def next_installed(self, version: Version) -> Optional[Version]:
        """The version immediately following ``version`` in its object's
        version order, or ``None`` if it is the last (or not installed)."""
        idx = self.order_index.get(version)
        if idx is None:
            return None
        chain = self.order_of(version.obj)
        return chain[idx + 1] if idx + 1 < len(chain) else None

    # ------------------------------------------------------------------
    # version attributes
    # ------------------------------------------------------------------

    @cached_property
    def setup_versions(self) -> frozenset[Version]:
        """Versions referenced by reads or version sets but never written by
        any event — the paper's implicit initial database state (e.g. ``x0``
        in ``H_phantom``).  They are installed right after the unborn version
        and treated as visible versions of committed transactions."""
        return frozenset(
            v for v in self.installed if not v.is_unborn and v not in self.writes
        )

    @cached_property
    def setup_tids(self) -> frozenset[int]:
        """Transactions that install only setup versions and have no events
        of their own (e.g. T0 in ``H_phantom``, whose DSG caption reads
        "T0 is not shown")."""
        return frozenset(v.tid for v in self.setup_versions) - {
            ev.tid for ev in self.events
        }

    @cached_property
    def committed_all(self) -> frozenset[int]:
        """Committed application transactions plus implicit setup
        transactions; the node set of the DSG."""
        return self.committed | frozenset(
            v.tid for v in self.installed if not v.is_unborn
        ) - self.aborted

    def kind_of(self, version: Version) -> VersionKind:
        """Unborn / visible / dead classification of a version."""
        if version.is_unborn:
            return VersionKind.UNBORN
        write = self.writes.get(version)
        if write is None:
            if version in self.installed:
                return VersionKind.VISIBLE  # setup versions are visible
            raise MalformedHistoryError(
                f"version {version} was never written in this history"
            )
        return VersionKind.DEAD if write.dead else VersionKind.VISIBLE

    def value_of(self, version: Version) -> Any:
        """The value carried by the version's write; for setup versions with
        no write event, the first value some read observed for it (``None``
        if unrecorded either way)."""
        if version.is_unborn:
            return None
        write = self.writes.get(version)
        if write is not None:
            return write.value
        for _i, read in self.reads:
            if read.version == version and read.value is not None:
                return read.value
        return None

    def _pred_cache(self, predicate: Predicate) -> Tuple[Dict, Dict, Dict]:
        """The (matches, changes, changers) memo dicts for one predicate.

        Keyed by object identity rather than predicate equality: predicate
        equality is by name only, so two same-named predicates with
        different semantics (e.g. successive ``MembershipPredicate``
        refinements) must not share entries.
        """
        entry = self._pred_caches.get(id(predicate))
        if entry is None or entry[0] is not predicate:
            entry = (predicate, {}, {}, {})
            self._pred_caches[id(predicate)] = entry
        return entry[1], entry[2], entry[3]

    def version_matches(self, predicate: Predicate, version: Version) -> bool:
        """Predicate evaluation with the Section 4.3 guard: unborn and dead
        versions never match.  Setup versions (no write event) are visible
        and evaluated with their observed value.  Results are memoized per
        ``(predicate, version)`` — predicate reads over the same chain
        re-consult the same versions many times."""
        matches, _changes, _changers = self._pred_cache(predicate)
        hit = matches.get(version)
        if hit is not None:
            return hit
        result = self._version_matches_uncached(predicate, version)
        matches[version] = result
        return result

    def _version_matches_uncached(self, predicate: Predicate, version: Version) -> bool:
        if version.is_unborn:
            return False
        write = self.writes.get(version)
        if write is None:
            if version not in self.setup_versions:
                return False
            return predicate.matches(version, self.value_of(version))
        if write.dead:
            return False
        return predicate.matches(version, write.value)

    def changes_matches(self, predicate: Predicate, version: Version) -> bool:
        """Definition 2: whether installing ``version`` changed the matched
        set of ``predicate`` relative to the immediately preceding version in
        the object's version order.  Only meaningful for installed versions.
        Memoized per ``(predicate, version)``.
        """
        _matches, changes, _changers = self._pred_cache(predicate)
        hit = changes.get(version)
        if hit is not None:
            return hit
        chain = self.order_of(version.obj)
        idx = self.order_index.get(version)
        if idx is None:
            raise VersionOrderError(
                f"{version} is not an installed version, cannot test match change"
            )
        if idx == 0:
            result = False  # the unborn version has no predecessor
        else:
            before = self.version_matches(predicate, chain[idx - 1])
            after = self.version_matches(predicate, version)
            result = before != after
        changes[version] = result
        return result

    def predicate_changers(self, predicate: Predicate, obj: str) -> Tuple[int, ...]:
        """Positions ``k >= 1`` in ``obj``'s version order whose version
        *changed the matches* of ``predicate`` (Definition 2), ascending.

        One linear scan per ``(predicate, object)``, memoized; the conflict
        extractors answer "latest changer at or before position i" /
        "changers after position i" with a bisect into this tuple instead of
        rescanning the chain per predicate read.
        """
        _matches, _changes, changers = self._pred_cache(predicate)
        hit = changers.get(obj)
        if hit is not None:
            return hit
        chain = self.order_of(obj)
        positions: List[int] = []
        before = False  # the unborn version never matches
        for k in range(1, len(chain)):
            after = self.version_matches(predicate, chain[k])
            if after != before:
                positions.append(k)
            before = after
        result = tuple(positions)
        changers[obj] = result
        return result

    # ------------------------------------------------------------------
    # predicate version-set completion
    # ------------------------------------------------------------------

    @cached_property
    def objects_by_relation(self) -> Dict[str, Tuple[str, ...]]:
        """Universe of objects per relation, in order of first appearance.

        Conceptually ``T_init`` creates every object that will ever exist
        (Section 4.1); in a finite history the universe is the set of objects
        mentioned anywhere in it.
        """
        seen: Dict[str, Dict[str, None]] = {}
        for obj in self._all_objects:
            seen.setdefault(relation_of(obj), {}).setdefault(obj, None)
        return {rel: tuple(objs) for rel, objs in seen.items()}

    @cached_property
    def _all_objects(self) -> Tuple[str, ...]:
        if self._array_core:
            # The interner allocated object ids in exactly the legacy
            # first-appearance order (EventLog interns a predicate read's
            # vset objects before its versions for this reason).
            return tuple(self.log.interner.objects)
        seen: Dict[str, None] = {}
        for ev in self.events:
            if isinstance(ev, (Read, Write)):
                seen.setdefault(ev.version.obj, None)
            elif isinstance(ev, PredicateRead):
                for obj in ev.vset.objects():
                    seen.setdefault(obj, None)
        return tuple(seen)

    def vset_objects(self, pread: PredicateRead) -> Tuple[str, ...]:
        """All objects conceptually covered by a predicate read's version
        set: every object of the predicate's relations known to the history,
        plus any explicitly selected ones."""
        objs: Dict[str, None] = {}
        for rel in pread.predicate.relations:
            for obj in self.objects_by_relation.get(rel, ()):
                objs.setdefault(obj, None)
        for obj in pread.vset.objects():
            objs.setdefault(obj, None)
        return tuple(objs)

    def vset_version(self, pread: PredicateRead, obj: str) -> Version:
        """The version of ``obj`` selected by the predicate read: the explicit
        entry if present, else the implicit unborn version (the paper shows
        only visible versions in examples; everything else defaults to
        unborn)."""
        explicit = pread.vset.get(obj)
        return explicit if explicit is not None else Version.unborn(obj)

    # ------------------------------------------------------------------
    # event/transaction structure
    # ------------------------------------------------------------------

    @cached_property
    def _event_positions(self) -> Dict[int, Dict[str, int]]:
        pos: Dict[int, Dict[str, int]] = {}
        if self._array_core:
            log = self.log
            for i, (k, t) in enumerate(zip(log.kind, log.tid)):
                slot = pos.get(t)
                if slot is None:
                    slot = pos[t] = {"first": i}
                slot["last"] = i
                if k == K_BEGIN:
                    slot["begin"] = i
                elif k == K_COMMIT:
                    slot["commit"] = i
                elif k == K_ABORT:
                    slot["abort"] = i
            return pos
        for i, ev in enumerate(self.events):
            slot = pos.setdefault(ev.tid, {})
            slot.setdefault("first", i)
            slot["last"] = i
            if isinstance(ev, Begin):
                slot["begin"] = i
            elif isinstance(ev, Commit):
                slot["commit"] = i
            elif isinstance(ev, Abort):
                slot["abort"] = i
        return pos

    def begin_index(self, tid: int) -> int:
        """Index of the transaction's start: its ``Begin`` event if present,
        else its first event."""
        slot = self._event_positions[tid]
        return slot.get("begin", slot["first"])

    def commit_index(self, tid: int) -> Optional[int]:
        return self._event_positions.get(tid, {}).get("commit")

    def abort_index(self, tid: int) -> Optional[int]:
        return self._event_positions.get(tid, {}).get("abort")

    def finish_index(self, tid: int) -> Optional[int]:
        """Index of the commit or abort event, ``None`` for ``T_init``."""
        slot = self._event_positions.get(tid, {})
        return slot.get("commit", slot.get("abort"))

    def level_of(self, tid: int):
        """The isolation level declared by the transaction's ``Begin`` event,
        else the history default, else PL-3 (resolved lazily to avoid an
        import cycle with :mod:`repro.core.levels`)."""
        from .levels import IsolationLevel

        for ev in self.events:
            if isinstance(ev, Begin) and ev.tid == tid and ev.level is not None:
                return ev.level
        if self.default_level is not None:
            return self.default_level
        return IsolationLevel.PL_3

    def events_of(self, tid: int) -> Tuple[Event, ...]:
        return tuple(ev for ev in self.events if ev.tid == tid)

    @cached_property
    def reads(self) -> Tuple[Tuple[int, Read], ...]:
        """All item reads with their event indexes."""
        if self._array_core:
            return tuple(
                (i, ev)
                for i, (k, ev) in enumerate(zip(self.log.kind, self.events))
                if k == K_READ
            )
        return tuple(
            (i, ev) for i, ev in enumerate(self.events) if isinstance(ev, Read)
        )

    @cached_property
    def predicate_reads(self) -> Tuple[Tuple[int, PredicateRead], ...]:
        if self._array_core:
            return tuple(
                (i, ev)
                for i, (k, ev) in enumerate(zip(self.log.kind, self.events))
                if k == K_PREAD
            )
        return tuple(
            (i, ev) for i, ev in enumerate(self.events) if isinstance(ev, PredicateRead)
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def committed_state(self) -> Dict[str, Any]:
        """The final committed database state: the value of the last visible
        version in each object's version order (deleted and never-born
        objects are omitted)."""
        state: Dict[str, Any] = {}
        for obj, chain in self.version_order.items():
            last = chain[-1]
            if last.is_unborn or self.kind_of(last) is not VersionKind.VISIBLE:
                continue
            state[obj] = self.value_of(last)
        return state

    def restricted_to_committed(self) -> "History":
        """A copy containing only events of committed transactions (version
        order unchanged).  Useful for displaying the committed projection."""
        return History(
            (ev for ev in self.events if ev.tid in self.committed),
            {obj: chain[1:] for obj, chain in self.version_order.items()},
            default_level=self.default_level,
            validate=False,
        )

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        from .formatting import format_history

        return format_history(self)

    def __repr__(self) -> str:
        return f"History({len(self.events)} events, {len(self.tids)} txns)"


def _complete(events: Tuple[Event, ...]) -> Tuple[Event, ...]:
    """Append abort events for transactions without a final commit/abort
    (Section 4.2's completion rule)."""
    finished = {
        ev.tid for ev in events if isinstance(ev, (Commit, Abort))
    }
    pending = []
    seen: Dict[int, None] = {}
    for ev in events:
        seen.setdefault(ev.tid, None)
    for tid in seen:
        if tid not in finished:
            pending.append(Abort(tid))
    return events + tuple(pending)
