"""SCALE — batch vs incremental vs parallel checker throughput.

Not a paper figure (the paper has no performance evaluation) but the claim
this repo's checker architecture stands on: classification must scale to
real workload traces.  Three cost models are pinned against each other:

* **batch** — ``repro.check`` over a materialised history: shared conflict
  indices, one edge extraction, SCC per phenomenon;
* **incremental** — :class:`repro.core.incremental.IncrementalAnalysis`
  consuming the same events one at a time, answering G0/G1/G2 and level
  queries between events from Pearce–Kelly cycle monitors;
* **parallel** — ``repro.check_many`` fanning a batch of histories over a
  process pool.

The assertions pin ratios, not wall-clock, wherever possible so they hold
across hardware; the one absolute bound is expressed in units of a fixed
pure-python spin loop measured on the same interpreter seconds earlier.
Measured numbers land in ``benchmarks/results/scaling_incremental.{txt,json}``.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import random
import time

import repro
from repro.core.events import Abort, Begin, Commit
from repro.core.events import Read as ReadEvent
from repro.core.events import Write as WriteEvent
from repro.core.incremental import IncrementalAnalysis
from repro.core.levels import classify
from repro.core.objects import Version
from repro.workloads import synthetic_history

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The seed (pre-optimisation) checker classified the conflicted 4000-txn
#: workload below in ~8.4 calibration units; the rewrite must be >=3x
#: faster, i.e. under 8.4/3 units.
SEED_CONFLICTED_UNITS = 8.4


def _calibrate() -> float:
    """Seconds for a fixed pure-python spin — the hardware speed unit that
    makes absolute bounds portable across machines."""
    start = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc = (acc + i * 31) % 1_000_003
    return time.perf_counter() - start


def _best(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_conflicted_beats_seed_by_3x(record_table):
    """Acceptance (a): the rewritten batch extractors classify the
    conflicted 4000-transaction workload >=3x faster than the seed."""
    history = synthetic_history(
        n_txns=4000,
        n_objects=400,
        ops_per_txn=5,
        stale_read_fraction=0.5,
        write_fraction=0.6,
        seed=2,
    )
    unit = min(_calibrate() for _ in range(3))
    elapsed = _best(lambda: repro.check(history))
    units = elapsed / unit
    bound = SEED_CONFLICTED_UNITS / 3
    assert units < bound, (
        f"conflicted batch check took {units:.2f} calibration units "
        f"({elapsed:.3f}s); seed was ~{SEED_CONFLICTED_UNITS}, so >=3x "
        f"faster means under {bound:.2f}"
    )
    record_table(
        "scaling_incremental_batch",
        f"BATCH — {len(history)} events classified in {elapsed * 1000:.0f} ms "
        f"= {units:.2f} calibration units (seed ~{SEED_CONFLICTED_UNITS} "
        f"units; speedup ~{SEED_CONFLICTED_UNITS / units:.1f}x)",
    )


def test_incremental_update_10x_cheaper_than_recheck(record_table):
    """Acceptance (b): at 10^4 transactions, appending one transaction and
    re-querying the strongest level is >=10x cheaper than materialising
    and re-checking the whole history."""
    history = synthetic_history(
        n_txns=10_000,
        n_objects=300,
        ops_per_txn=5,
        stale_read_fraction=0.2,
        write_fraction=0.5,
        seed=7,
    )
    inc = IncrementalAnalysis(order_mode="commit")
    feed = _best(lambda: inc.add_all(history.events), rounds=1)
    baseline_level = inc.strongest_level()

    reps = 50
    start = time.perf_counter()
    for i in range(reps):
        tid = 1_000_000 + i
        inc.add(Begin(tid))
        inc.add(ReadEvent(tid, inc.latest_version("o1"), 0))
        inc.add(WriteEvent(tid, Version("o1", tid, 1), 7))
        inc.add(Commit(tid))
        assert inc.strongest_level() == baseline_level
    per_update = (time.perf_counter() - start) / reps

    full = _best(lambda: classify(inc.to_history()), rounds=1)
    ratio = full / per_update
    assert ratio >= 10, (
        f"incremental update+query {per_update * 1000:.2f} ms vs full "
        f"re-check {full * 1000:.0f} ms — only {ratio:.1f}x"
    )
    record_table(
        "scaling_incremental_update",
        f"INCREMENTAL — {len(history)} events fed at "
        f"{len(history.events) / feed:,.0f} ev/s; per-transaction "
        f"update+level query {per_update * 1000:.3f} ms vs full re-check "
        f"{full * 1000:.0f} ms ({ratio:,.0f}x cheaper)",
    )


def test_check_many_parallel_matches_and_scales(record_table):
    """Acceptance (c): ``check_many`` over 64 histories with 4 workers
    returns identical verdicts; on multi-core hosts it must be >=2x faster
    than serial (on a single-core host the numbers are recorded only)."""
    histories = [
        synthetic_history(
            n_txns=60,
            n_objects=10,
            ops_per_txn=5,
            stale_read_fraction=0.3,
            predicate_fraction=0.1,
            seed=seed,
        )
        for seed in range(64)
    ]
    start = time.perf_counter()
    serial = repro.check_many(histories, processes=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = repro.check_many(histories, processes=4)
    parallel_s = time.perf_counter() - start
    assert [r.strongest_level for r in parallel] == [
        r.strongest_level for r in serial
    ]
    speedup = serial_s / parallel_s
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"4-process check_many only {speedup:.2f}x faster on {cpus} CPUs"
        )
    record_table(
        "scaling_incremental_parallel",
        f"PARALLEL — 64 histories: serial {serial_s * 1000:.0f} ms, "
        f"4 processes {parallel_s * 1000:.0f} ms ({speedup:.2f}x on "
        f"{cpus} CPU{'s' if cpus != 1 else ''})",
    )


def test_throughput_table_to_1e5_events(record_table):
    """Batch vs incremental throughput from 10^3.8 to >=10^5 events.

    Alongside wall-clock, each row records what the observability hooks
    saw: the batch checker's per-stage timing breakdown
    (``Analysis.timings``) and the incremental analysis's work counters
    (events consumed, edges inserted) — so the committed JSON explains the
    times, not just states them.
    """
    from repro.observability import MetricsRegistry

    rows = []
    for n_txns in (1000, 4000, 16000):
        history = synthetic_history(
            n_txns=n_txns,
            n_objects=max(50, n_txns // 40),
            ops_per_txn=5,
            stale_read_fraction=0.2,
            write_fraction=0.5,
            seed=11,
        )
        events = len(history.events)
        last_report = {}

        def run_batch(h=history, sink=last_report):
            sink["report"] = repro.check(h)

        batch = _best(run_batch, rounds=1)
        registry = MetricsRegistry()
        inc = IncrementalAnalysis(order_mode="commit", metrics=registry)
        feed = _best(lambda h=history: inc.add_all(h.events), rounds=1)
        level = inc.strongest_level()
        rows.append(
            {
                "txns": n_txns,
                "events": events,
                "batch_s": round(batch, 4),
                "batch_ev_per_s": round(events / batch),
                "batch_timings_s": {
                    stage: round(seconds, 5)
                    for stage, seconds in last_report["report"].timings.items()
                },
                "incremental_s": round(feed, 4),
                "incremental_ev_per_s": round(events / feed),
                "events_consumed": inc.events_consumed,
                "edges_inserted": inc.edges_inserted,
                "incremental_events_total": registry.counter(
                    "incremental_events_total"
                ).total,
                "incremental_edges_total": registry.counter(
                    "incremental_edges_total"
                ).total,
                "level": str(level),
            }
        )
    assert rows[-1]["events"] >= 100_000, "table must reach 10^5 events"

    header = (
        f"{'txns':>7} {'events':>8} {'batch':>9} {'ev/s':>9} "
        f"{'incr':>9} {'ev/s':>9}  level"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['txns']:>7} {row['events']:>8} "
            f"{row['batch_s'] * 1000:>7.0f}ms {row['batch_ev_per_s']:>9,} "
            f"{row['incremental_s'] * 1000:>7.0f}ms "
            f"{row['incremental_ev_per_s']:>9,}  {row['level']}"
        )
    record_table("scaling_incremental", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scaling_incremental.json").write_text(
        json.dumps({"calibration_s": min(_calibrate() for _ in range(3)),
                    "rows": rows}, indent=2)
        + "\n"
    )


# ----------------------------------------------------------------------
# the 10^6-event ingestion gate
# ----------------------------------------------------------------------

#: Units-per-million-events of the seed one-at-a-time ``add`` loop over the
#: exact :func:`_gate_events` workload (min of 3 fresh-process runs, GC
#: off, interleaved with array-core runs on the same host — which measured
#: 31.0 units/Mevent, a 5.5x floor-to-floor ratio).  The array core's
#: batch path must beat this by the acceptance factor below.
SEED_INGEST_UNITS_PER_MEVENT = 171.5

#: Acceptance: batch ingestion >=5x faster per event than the seed path.
INGEST_SPEEDUP_FACTOR = 5.0


def _gate_events(
    n_txns=167_000,
    n_objects=800,
    ops_per_txn=4,
    write_fraction=0.4,
    abort_fraction=0.05,
    seed=11,
):
    """A >=10^6-event stream shaped like the scaling workloads (800 hot
    objects, 4 ops/txn, 5% aborts, ~1 conflict edge per event), generated
    directly — no History construction, no validation — so the benchmark
    measures ingestion, not generation."""
    rng = random.Random(seed)
    objs = [f"o{i}" for i in range(n_objects)]
    events = []
    append = events.append

    # Transaction 1 installs an initial committed version of every object
    # so every later read has a version to observe.
    append(Begin(1))
    latest = {}
    for obj in objs:
        v = Version(obj, 1, 1)
        latest[obj] = v
        append(WriteEvent(1, v, 0))
    append(Commit(1))

    random_ = rng.random
    choice = rng.choice
    for tid in range(2, n_txns + 2):
        append(Begin(tid))
        aborts = random_() < abort_fraction
        written = {}
        seqs = {}
        for _ in range(ops_per_txn):
            obj = choice(objs)
            if random_() < write_fraction:
                seq = seqs.get(obj, 0) + 1
                seqs[obj] = seq
                v = Version(obj, tid, seq)
                written[obj] = v
                append(WriteEvent(tid, v, tid))
            else:
                append(ReadEvent(tid, written.get(obj) or latest[obj], 0))
        if aborts:
            append(Abort(tid))
        else:
            append(Commit(tid))
            latest.update(written)
    return events


def test_million_event_ingestion_gate(record_table):
    """Acceptance (d): >=10^6 events through ``add_all`` within the
    calibration-unit budget — at least ``INGEST_SPEEDUP_FACTOR`` faster
    per event than the seed's one-at-a-time path on the same workload.

    Measured with the collector off: a 10^6-element event list plus the
    analysis's interned state keeps Python's generational GC scanning
    millions of live objects otherwise, and that cost says nothing about
    either ingestion path.
    """
    events = _gate_events()
    assert len(events) >= 1_000_000, "gate workload must reach 10^6 events"

    unit = min(_calibrate() for _ in range(3))
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Two rounds, fresh analysis each: contention noise only ever adds
        # time, so the minimum is the honest floor.
        elapsed = float("inf")
        for _ in range(2):
            inc = IncrementalAnalysis(order_mode="commit")
            start = time.perf_counter()
            inc.add_all(events)
            elapsed = min(elapsed, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    upm = elapsed / unit / (len(events) / 1e6)
    bound = SEED_INGEST_UNITS_PER_MEVENT / INGEST_SPEEDUP_FACTOR
    assert upm <= bound, (
        f"10^6-event ingestion cost {upm:.1f} calibration units/Mevent "
        f"({elapsed:.2f}s); seed one-at-a-time was "
        f"~{SEED_INGEST_UNITS_PER_MEVENT}, so >={INGEST_SPEEDUP_FACTOR}x "
        f"faster means <= {bound:.1f}"
    )
    assert inc.strongest_level() is not None

    speedup = SEED_INGEST_UNITS_PER_MEVENT / upm
    record_table(
        "scaling_incremental_ingest",
        f"INGEST — {len(events):,} events, {inc.edges_inserted:,} edges "
        f"ingested in {elapsed:.2f}s = {upm:.1f} units/Mevent "
        f"(seed ~{SEED_INGEST_UNITS_PER_MEVENT}; speedup ~{speedup:.1f}x; "
        f"{len(events) / elapsed:,.0f} ev/s)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scaling_ingest.json").write_text(
        json.dumps(
            {
                "events": len(events),
                "edges": inc.edges_inserted,
                "seconds": round(elapsed, 3),
                "calibration_s": round(unit, 4),
                "units_per_mevent": round(upm, 1),
                "seed_units_per_mevent": SEED_INGEST_UNITS_PER_MEVENT,
                "speedup": round(speedup, 2),
                "level": str(inc.strongest_level()),
            },
            indent=2,
        )
        + "\n"
    )
