"""Shard replication, session guarantees and the replica-lag fault matrix.

The contracts this suite pins:

* ``replicas=0`` is a zero-cost refactor — a cluster configured without
  backups is byte-identical (history, journals, certification) to the
  pre-replication cluster path;
* a replicated run with the full replica-lag fault matrix (backup crash
  mid-catch-up, partitioned primary with stale replica reads, promote
  via ShardMap) replays byte for byte from its seeds;
* session guarantees hold when enforced — zero violation witnesses under
  ``read_your_writes``/``monotonic_reads``/``causal``, for both the
  ``redirect`` and ``wait`` lag reactions — and stale-by-choice reads
  with the knobs off are *detected*, with witnesses naming the session,
  shard, object and offsets;
* replica-served reads merge into the global history with true version
  provenance: the DSG analysis still certifies the run at its declared
  (weak) level.
"""

from dataclasses import replace

import pytest

from repro.service import (
    ClusterConfig,
    MapChange,
    NetworkConfig,
    SessionGuarantees,
    SessionVector,
    StressConfig,
    run_stress,
)

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)

#: Slow replication: long pump period, long seeded lag — replicas trail
#: the primary far enough that stale-by-choice reads are guaranteed.
SLOW_REPL = ClusterConfig(
    shards=2, replicas=2, replication_every=12, replication_lag=(4, 10)
)

STALE = StressConfig(
    scheduler="locking", level="PL-2", clients=4, txns_per_client=10,
    keys=4, ops_per_txn=2, seed=0, network=FAULTY, cluster=SLOW_REPL,
    read_preference="replica", read_only_fraction=0.5,
)


class TestSessionVector:
    def test_observe_monotone(self):
        v = SessionVector()
        assert v.get(0) == 0
        assert v.observe(0, 5)
        assert not v.observe(0, 3)
        assert v.get(0) == 5

    def test_merge_and_covers(self):
        a = SessionVector({0: 4})
        b = SessionVector({0: 2, 1: 7})
        a.merge(b)
        assert a.as_dict() == {0: 4, 1: 7}
        assert a.covers(0, 4) and not a.covers(1, 6)

    def test_copy_is_independent(self):
        a = SessionVector({0: 1})
        b = a.copy()
        b.observe(0, 9)
        assert a.get(0) == 1


class TestSessionGuarantees:
    def test_parse_specs(self):
        g = SessionGuarantees.parse("ryw,mr,wait")
        assert g.read_your_writes and g.monotonic_reads and not g.causal
        assert g.on_lag == "wait"
        assert SessionGuarantees.parse("none") == SessionGuarantees()
        assert SessionGuarantees.parse("causal").enforced

    def test_bad_on_lag_rejected(self):
        with pytest.raises(ValueError):
            SessionGuarantees(on_lag="panic")


class TestUnreplicatedPin:
    """replicas=0 must be byte-identical to the pre-replication cluster."""

    @pytest.mark.parametrize("seed", range(3))
    def test_zero_replicas_identical(self, seed):
        base = StressConfig(
            clients=4, txns_per_client=10, seed=seed, network=FAULTY,
            cluster=ClusterConfig(shards=2),
        )
        plain = run_stress(base)
        zero = run_stress(
            replace(base, cluster=ClusterConfig(shards=2, replicas=0))
        )
        assert zero.history_text == plain.history_text
        assert zero.journals == plain.journals
        assert zero.certification == plain.certification

    def test_zero_replicas_records_no_ops_extras(self):
        result = run_stress(
            StressConfig(
                clients=3, txns_per_client=6, seed=1, network=FAULTY,
                cluster=ClusterConfig(shards=2),
            )
        )
        assert result.session_violations == ()
        assert "replica_serves" not in result.cluster.counters


class TestDeterminism:
    """Seeded replicated runs replay byte for byte, faults included."""

    def _pair(self, config):
        return run_stress(config), run_stress(config)

    def test_replica_reads_replay(self):
        a, b = self._pair(STALE)
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        assert a.ops == b.ops
        assert a.session_violations == b.session_violations

    def test_backup_crash_mid_catchup_replays(self):
        config = replace(
            STALE,
            level=None,
            keys=8,
            cluster=ClusterConfig(
                shards=2, replicas=2,
                crash_replica_after_applies=(0, 0, 10),
                replica_restart_delay=25,
            ),
            session_guarantees=SessionGuarantees(causal=True),
        )
        a, b = self._pair(config)
        backup = a.cluster.replica_of(0, 0)
        assert backup.crashes == 1 and backup.restarts == 1
        assert a.history_text == b.history_text
        assert a.ops == b.ops
        # The crash dropped the rest of the shipped batch; the pump's
        # periodic re-ship caught the backup up from its durable offset.
        assert backup.applied == len(a.cluster.shards[0].recorder.events)

    def test_partitioned_primary_stale_reads_replay(self):
        config = replace(
            STALE,
            cluster=replace(
                SLOW_REPL,
                partition_primary_after_commits=(1, 5), heal_after=60,
            ),
        )
        a, b = self._pair(config)
        assert a.cluster.network.counters["lost_partition"] >= 1
        assert a.history_text == b.history_text
        assert a.session_violations == b.session_violations
        assert len(a.session_violations) >= 1

    def test_promote_backup_replays(self):
        config = StressConfig(
            clients=4, txns_per_client=10, keys=8, seed=0, network=FAULTY,
            cluster=ClusterConfig(
                shards=2, replicas=2,
                map_changes=(
                    MapChange(kind="promote", after_commits=8, shard=0,
                              replica=1),
                ),
            ),
        )
        a, b = self._pair(config)
        assert a.cluster.shards[0].name == "shard0.r2"
        assert a.cluster.replica_of(0, 1) is None
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        assert a.all_certified


class TestSessionGuaranteeEnforcement:
    """Knobs on: zero violations.  Knobs off: witnessed violations."""

    @pytest.mark.parametrize("on_lag", ("redirect", "wait"))
    def test_enforced_runs_are_violation_free(self, on_lag):
        config = replace(
            STALE,
            level=None,
            session_guarantees=SessionGuarantees(
                read_your_writes=True, monotonic_reads=True, causal=True,
                on_lag=on_lag,
            ),
        )
        result = run_stress(config)
        assert result.session_violations == ()
        assert result.all_certified

    def test_stale_by_choice_is_witnessed(self):
        result = run_stress(STALE)
        violations = result.session_violations
        assert len(violations) >= 1
        kinds = {v["kind"] for v in violations}
        assert kinds <= {"read-your-writes", "monotonic-reads", "causal"}
        for v in violations:
            assert v["required"] > v["got"]
            assert v["obj"].startswith("k")
            assert v["session"].startswith("c")
            assert v["shard"] in (0, 1)

    def test_wait_mode_retries_same_replica(self):
        config = replace(
            STALE,
            level=None,
            cluster=replace(SLOW_REPL, replication_every=6),
            session_guarantees=SessionGuarantees(causal=True, on_lag="wait"),
        )
        result = run_stress(config)
        counters = result.cluster.counters
        assert counters["replica_lagging"] >= 1
        assert result.session_violations == ()

    def test_stale_run_still_certifies_declared_level(self):
        """Replica reads merge with true provenance: the DSG analysis
        certifies the weak run at its declared PL-2 even though the
        client saw stale values."""
        result = run_stress(STALE)
        assert result.all_certified
        assert result.cluster.counters["replica_serves"] >= 1


class TestReplicaCounters:
    def test_counters_aggregate_replicas(self):
        result = run_stress(STALE)
        counters = result.cluster.counters
        assert counters["replica_applied"] >= 1
        assert counters["replica_serves"] >= 1
        summary = result.summary()
        assert "certification" in summary
