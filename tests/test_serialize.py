"""Tests for JSON (de)serialization of histories (repro.core.serialize)."""

import json

import pytest

import repro
from repro.core import parse_history
from repro.core.canonical import ALL_CANONICAL
from repro.core.levels import ANSI_CHAIN, satisfies
from repro.core.serialize import dumps, history_from_dict, history_to_dict, loads
from repro.exceptions import HistoryError


def round_trip(history):
    return loads(dumps(history))


class TestBasicRoundTrip:
    def test_events_preserved(self):
        h = parse_history("w1(x1, 5) c1 r2(x1, 5) w2(y2, 6) c2")
        assert round_trip(h).events == h.events

    def test_version_order_preserved(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x2 << x1]")
        assert round_trip(h).version_order == h.version_order

    def test_dead_versions(self):
        h = parse_history("w1(x1) c1 w2(x2, dead) c2")
        restored = round_trip(h)
        assert restored.events == h.events

    def test_begin_levels(self):
        from repro.core.levels import IsolationLevel

        h = parse_history("b1@PL-2 w1(x1) c1")
        restored = round_trip(h)
        assert restored.level_of(1) is IsolationLevel.PL_2

    def test_cursor_reads(self):
        h = parse_history("w1(x1) c1 rc2(x1) c2")
        assert round_trip(h).events == h.events

    def test_default_level(self):
        from repro.core.levels import IsolationLevel

        h = parse_history("w1(x1) c1", default_level=IsolationLevel.PL_1)
        assert round_trip(h).default_level is IsolationLevel.PL_1

    def test_json_is_plain(self):
        h = parse_history("w1(x1, 5) c1")
        json.loads(dumps(h))  # no custom encoder needed


class TestPredicates:
    def test_membership_predicate_round_trips(self):
        h = parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1*, y2) c3")
        restored = round_trip(h)
        _i, pread = restored.predicate_reads[0]
        assert restored.version_matches(pread.predicate, h.events[0].version)

    def test_field_predicate_becomes_extensional(self):
        """Engine histories use FieldPredicates; serialization snapshots
        their matching sets and the verdicts survive."""
        from repro.core.predicates import FieldPredicate
        from repro.engine import Database, SnapshotIsolationScheduler

        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin()
        t1.count(pred)
        t2 = db.begin()
        t2.insert("emp", {"dept": "Sales", "sal": 2})
        t2.commit()
        t1.commit()
        h = db.history()
        restored = round_trip(h)
        for level in ANSI_CHAIN:
            assert satisfies(h, level).ok == satisfies(restored, level).ok


class TestVerdictPreservation:
    @pytest.mark.parametrize("canon", ALL_CANONICAL, ids=lambda c: c.name)
    def test_canonical_corpus(self, canon):
        restored = round_trip(canon.history)
        original = repro.check(canon.history, extensions=True)
        after = repro.check(restored, extensions=True)
        for level in original.levels:
            assert original.ok(level) == after.ok(level)


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(HistoryError):
            history_from_dict({"format": 99, "events": []})

    def test_unknown_event_type_rejected(self):
        with pytest.raises(HistoryError):
            history_from_dict(
                {"format": 1, "events": [{"type": "vacuum", "tid": 1}]}
            )

    def test_orphan_predicate_read_rejected(self):
        data = {
            "format": 1,
            "events": [
                {"type": "predicate_read", "tid": 1, "predicate": "P", "vset": []},
                {"type": "commit", "tid": 1},
            ],
        }
        with pytest.raises(HistoryError):
            history_from_dict(data)

    def test_dict_round_trip_equals_json_round_trip(self):
        h = parse_history("w1(x1) c1")
        assert history_from_dict(history_to_dict(h)).events == h.events
