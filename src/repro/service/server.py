"""The service's server side: a :class:`~repro.engine.database.Database`
behind the simulated network.

The server is a network handler: each delivered request executes one engine
operation and returns a reply payload (which then suffers the network's
faults on the way back).  Around the engine it adds exactly the mechanisms
an unreliable boundary forces:

* **at-most-once execution** — every request carries an idempotency token
  ``(session, rid)``; final replies are cached per session, so a duplicated
  or retried request that already executed is answered from the cache
  without re-applying.  Busy replies are *not* cached: the operation never
  ran, so the retry must actually execute it.
* **bounded waiting** — a lock wait (:class:`~repro.exceptions.WouldBlock`)
  becomes a ``busy`` reply; the client backs off and retries.  The server
  keeps the waits-for edges implied by busy replies and aborts the youngest
  transaction of any cycle (same victim rule as the in-process simulator),
  so two clients blocking each other cannot livelock.
* **crash/restart** — :meth:`crash` drops every volatile structure (store,
  sessions, dedup cache, waits) and records recovery-undo aborts for the
  transactions in flight; :meth:`restart` rebuilds the engine from the
  durable recorder log via :meth:`~repro.engine.database.Database.recover`.
  Committed transactions survive byte-for-byte; commit retries that cross
  the crash are recognised from the log (the reply says ``recovered``).
* **live certification** — with an online monitor attached, every commit is
  immediately checked against the transaction's declared isolation level
  (:meth:`~repro.core.incremental.IncrementalAnalysis.provides`), the
  paper's client-centric thesis machine-checked while traffic runs.
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, List, Optional

from ..core.events import Commit
from ..core.levels import IsolationLevel
from ..engine.database import Database, TransactionHandle
from ..engine.factory import SchedulerConfig, create_scheduler
from ..engine.simulator import _find_cycle
from ..engine.transaction import TxnState
from ..exceptions import InvalidOperation, TransactionAborted, WouldBlock
from .config import AdmissionConfig
from .network import SimulatedNetwork

__all__ = ["Server"]


class _Session:
    """Per-client-session server state (volatile — lost on crash)."""

    __slots__ = (
        "txn", "replies", "last_rid", "first_tid", "pending_abort",
        "downgraded", "level_override",
    )

    def __init__(self) -> None:
        self.txn: Optional[TransactionHandle] = None
        #: Final replies by rid (the at-most-once dedup cache).
        self.replies: Dict[int, Dict[str, Any]] = {}
        #: Highest rid with a final (non-busy) reply — the stale guard: a
        #: delayed duplicate of an already-acked request must not
        #: re-execute after its cache entry was pruned.
        self.last_rid = -1
        #: The tid of this session's first transaction — its seniority for
        #: deadlock victim selection (matches the simulator's aging rule).
        self.first_tid: Optional[int] = None
        #: Reason the session's transaction was killed out-of-band
        #: (deadlock victim), reported on its next request.
        self.pending_abort: Optional[str] = None
        #: Set when admission control downgraded this session after a
        #: failed certification; subsequent begins declare
        #: ``level_override`` instead of the requested level.
        self.downgraded = False
        self.level_override: Optional[str] = None


class Server:
    """A database server on the simulated network."""

    #: Request kinds exempt from the stale-rid guard (idempotent verbs on
    #: a session that multiplexes transactions; see ShardServer).
    _replayable_kinds: FrozenSet[str] = frozenset()

    def __init__(
        self,
        network: SimulatedNetwork,
        config: SchedulerConfig | str = "locking",
        *,
        name: str = "server",
        initial: Optional[Dict[str, Any]] = None,
        monitor: Optional[object] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
        admission: Optional[AdmissionConfig] = None,
        tid_allocator: Optional[object] = None,
        recover_from: Optional[object] = None,
    ) -> None:
        self.network = network
        self.config = (
            config
            if isinstance(config, SchedulerConfig)
            else SchedulerConfig(scheduler=config)
        )
        self.name = name
        self.monitor = monitor
        self.metrics = metrics
        self.tracer = tracer
        self.admission = admission
        #: Seeded RNG for soft-bound shed draws (admission control only;
        #: never touched when admission is off, so plain runs replay
        #: byte-identically with or without this attribute existing).
        self._admission_rng = random.Random(
            admission.seed if admission is not None else 0
        )
        self.up = True
        self.crashes = 0
        self.restarts = 0
        self.commit_count = 0
        self.deadlock_victims = 0
        self.counters = {"requests": 0, "dedup_hits": 0, "busy": 0, "shed": 0}
        self._sessions: Dict[str, _Session] = {}
        self._waits: Dict[str, frozenset] = {}  # session -> holder tids
        #: Declared level per tid (for certification) and live verdicts.
        self.declared: Dict[int, Optional[IsolationLevel]] = {}
        self.certified: Dict[int, bool] = {}
        #: Committed tids awaiting a (batched) certification verdict.
        self._pending_certify: List[int] = []
        #: Session that began each tid (for downgrade-the-session).
        self._tid_session: Dict[int, str] = {}
        #: Abort-to-restore suggestions computed on failed certifications
        #: (``on_uncertified="repair"``), newest last.
        self.repair_suggestions: List[Dict[str, Any]] = []
        #: Downgrade decisions (``on_uncertified="downgrade"``), newest last.
        self.downgrades: List[Dict[str, Any]] = []
        self._committed_tids: set[int] = set()
        #: Optional shared tid source (a cluster hands every shard the same
        #: allocator so tids are globally unique); ``None`` = private counter.
        self._tid_allocator = tid_allocator
        self.db: Optional[Database] = None
        self._boot(initial, recover_from)
        #: The durable WAL: survives crashes, feeds recovery.
        self.recorder = self.db.scheduler.recorder
        network.register_handler(name, self.handle)

    def _boot(
        self,
        initial: Optional[Dict[str, Any]],
        recover_from: Optional[object] = None,
    ) -> None:
        scheduler = create_scheduler(self.config)
        if self.metrics is not None or self.tracer is not None:
            scheduler.instrument(metrics=self.metrics, tracer=self.tracer)
        if recover_from is not None:
            # Replacement boot: recover from an existing durable log (a
            # retired server's WAL).  Any online monitor is already attached
            # to that recorder — re-attaching would replay the log into it a
            # second time, so the monitor is left alone here.
            self.db = Database.recover(
                scheduler, recover_from, tid_allocator=self._tid_allocator
            )
            self._committed_tids = {
                ev.tid for ev in recover_from.events if isinstance(ev, Commit)
            }
            return
        if self.monitor is not None:
            scheduler.recorder.attach_monitor(self.monitor)
        self.db = Database(scheduler, tid_allocator=self._tid_allocator)
        if initial:
            self.db.load(initial)
            self._committed_tids.add(0)

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose everything volatile.  Transactions in flight get their
        recovery-undo abort recorded in the WAL; sessions, dedup cache and
        waits vanish; the endpoint goes dark (in-flight messages to and
        from it are lost)."""
        if not self.up:
            return
        self.crashes += 1
        if self.tracer is not None:
            self.tracer.event(
                "server.crash",
                active=[
                    s.txn.tid
                    for s in self._sessions.values()
                    if s.txn is not None and s.txn.state is TxnState.ACTIVE
                ],
            )
        for sess in self._sessions.values():
            if sess.txn is not None and sess.txn.state is TxnState.ACTIVE:
                sess.txn.abort()
        self._sessions.clear()
        self._waits.clear()
        self.db = None
        self.up = False
        self.network.down(self.name)
        self.network.flush(self.name)
        if self.metrics is not None:
            self.metrics.counter(
                "service_server_crashes_total", "injected server crashes"
            ).inc()

    def restart(self) -> None:
        """Recover from the WAL: a fresh scheduler, its store seeded with
        the log's committed state, attached to the same recorder (so the
        history — and any online monitor — continues seamlessly)."""
        if self.up:
            return
        scheduler = create_scheduler(self.config)
        if self.metrics is not None or self.tracer is not None:
            scheduler.instrument(metrics=self.metrics, tracer=self.tracer)
        self.db = Database.recover(
            scheduler, self.recorder, tid_allocator=self._tid_allocator
        )
        self._committed_tids = {
            ev.tid for ev in self.recorder.events if isinstance(ev, Commit)
        }
        self.restarts += 1
        self.up = True
        self.network.up(self.name)
        if self.tracer is not None:
            self.tracer.event(
                "server.restart", committed=len(self._committed_tids)
            )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def handle(self, request: Dict[str, Any], src: str) -> Optional[Dict[str, Any]]:
        """Network delivery entry point: execute (or replay) one request.

        With a tracer attached, each delivery runs inside a ``server.handle``
        span parented under the client's request span (the envelope's trace
        context), and — being on the implicit nesting stack — every engine
        event emitted while handling (lock blocks, wounds, certification)
        nests under it without further plumbing.  The trace context is
        echoed into the reply so the reply's ``net.msg`` span parents
        correctly too.
        """
        if self.tracer is None:
            return self._handle(request, None)
        ctx = request.get("trace")
        attrs: Dict[str, Any] = {
            "verb": request["kind"],
            "session": request["session"],
            "rid": request["rid"],
        }
        if ctx:
            attrs["trace_id"] = ctx.get("id")
        # Shard servers (cluster mode) carry their shard index so the span
        # lands on the right per-shard track/ring; plain servers add nothing.
        shard = getattr(self, "index", None)
        if shard is not None:
            attrs["shard"] = shard
        obj = request.get("obj") or request.get("relation")
        if obj is not None:
            attrs["obj"] = obj
        with self.tracer.span(
            "server.handle", parent=ctx.get("span") if ctx else None, **attrs
        ) as span:
            reply = self._handle(request, span)
            if reply is not None:
                span.attrs.setdefault("outcome", reply.get("error", "ok"))
                if ctx is not None:
                    reply.setdefault("trace", ctx)
        return reply

    def _handle(
        self, request: Dict[str, Any], span: Optional[object]
    ) -> Optional[Dict[str, Any]]:
        rid = request["rid"]
        kind = request["kind"]
        self.counters["requests"] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_requests_total", "service requests handled by verb"
            ).inc(verb=kind)
        sess = self._sessions.setdefault(request["session"], _Session())
        acked = request.get("acked")
        if acked is not None:
            for old in [r for r in sess.replies if r <= acked]:
                del sess.replies[old]
        cached = sess.replies.get(rid)
        if cached is not None:
            self.counters["dedup_hits"] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "service_dedup_hits_total",
                    "duplicate/retried requests answered from the reply cache",
                ).inc()
            if span is not None:
                span.set(outcome="dedup-hit")
            return cached
        if rid <= sess.last_rid and kind not in self._replayable_kinds:
            # A late duplicate of a request that already got its final
            # reply (cache since pruned): never re-execute it.  Replayable
            # kinds (a cluster's 2PC verbs, idempotent by construction) are
            # exempt: their session multiplexes concurrent transactions, so
            # rids do not arrive in order and "old" is not "answered".
            self.counters["dedup_hits"] += 1
            if span is not None:
                span.set(outcome="stale")
            return {"error": "stale", "rid": rid}
        reply = self._execute(kind, request, sess, span)
        reply["rid"] = rid
        if reply.get("error") not in ("busy", "shed", "moved"):
            # Busy, shed and moved replies are not cached: the operation
            # never ran, so the retry must actually execute it.
            sess.replies[rid] = reply
            sess.last_rid = max(sess.last_rid, rid)
        return reply

    def _execute(
        self,
        kind: str,
        request: Dict[str, Any],
        sess: _Session,
        span: Optional[object] = None,
    ) -> Dict[str, Any]:
        session_id = request["session"]
        if kind == "ping":
            return {"ok": True, "t": self.network.now}
        if kind == "begin":
            shed = self._maybe_shed(request, sess)
            if shed is not None:
                return shed
            return self._do_begin(request, sess)
        if kind == "commit" and sess.txn is None:
            # A commit retry that crossed a crash: the outcome is in the
            # durable log even though the session is gone.
            if request.get("tid") in self._committed_tids:
                return {"ok": True, "recovered": True}
        if sess.pending_abort is not None:
            reason, sess.pending_abort = sess.pending_abort, None
            sess.txn = None
            return {"error": "aborted", "reason": reason}
        if sess.txn is not None and sess.txn.state is TxnState.ABORTED:
            # Killed out-of-band (e.g. wounded by an older requester under
            # wound-wait) — surface the engine's reason.
            reason = (
                getattr(sess.txn._txn, "abort_reason", None) or "aborted"
            )
            sess.txn = None
            return {"error": "aborted", "reason": reason}
        if sess.txn is None or sess.txn.state is not TxnState.ACTIVE:
            return {
                "error": "aborted",
                "reason": "no active transaction (server restarted?)",
            }
        txn = sess.txn
        if span is not None:
            span.set(tid=txn.tid)
        try:
            if kind == "read":
                value = txn.read(
                    request["obj"], for_update=request.get("for_update", False)
                )
                result: Dict[str, Any] = {"ok": True, "value": value}
            elif kind == "write":
                txn.write(request["obj"], request["value"])
                result = {"ok": True}
            elif kind == "delete":
                txn.delete(request["obj"])
                result = {"ok": True}
            elif kind == "insert":
                obj = txn.insert(request["relation"], request["value"])
                result = {"ok": True, "obj": obj}
            elif kind == "commit":
                txn.commit()
                self.commit_count += 1
                self._committed_tids.add(txn.tid)
                result = {"ok": True}
                self._pending_certify.append(txn.tid)
                certify_every = (
                    self.admission.certify_every
                    if self.admission is not None
                    else 1
                )
                if len(self._pending_certify) >= certify_every:
                    verdicts = self.flush_certification()
                    verdict = verdicts.get(txn.tid)
                    if verdict is not None:
                        result["certified"] = verdict
                sess.txn = None
            elif kind == "abort":
                txn.abort()
                result = {"ok": True}
                sess.txn = None
            else:
                return {"error": "bad-request", "reason": f"unknown verb {kind!r}"}
        except WouldBlock as block:
            self.counters["busy"] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "service_busy_total", "requests answered busy (lock waits)"
                ).inc()
            if span is not None:
                span.event(
                    "blocked",
                    resource=block.resource,
                    holders=sorted(block.holders),
                    tid=txn.tid,
                )
            self._waits[session_id] = block.holders
            self._resolve_deadlock()
            if sess.pending_abort is not None:
                reason, sess.pending_abort = sess.pending_abort, None
                sess.txn = None
                return {"error": "aborted", "reason": reason}
            return {"error": "busy", "holders": sorted(block.holders)}
        except TransactionAborted as aborted:
            sess.txn = None
            self._waits.pop(session_id, None)
            return {"error": "aborted", "reason": aborted.reason}
        except InvalidOperation as exc:
            return {"error": "bad-request", "reason": str(exc)}
        self._waits.pop(session_id, None)
        return result

    def _active_count(self) -> int:
        return sum(
            1
            for s in self._sessions.values()
            if s.txn is not None and s.txn.state is TxnState.ACTIVE
        )

    def _maybe_shed(
        self, request: Dict[str, Any], sess: _Session
    ) -> Optional[Dict[str, Any]]:
        """Admission control: shed this ``begin`` when the server is at its
        concurrency bound (``None`` = admit).  Shed replies carry a
        server-directed ``retry_after`` and are never dedup-cached."""
        cfg = self.admission
        if cfg is None or not cfg.max_active:
            return None
        if sess.txn is not None and sess.txn.state is TxnState.ACTIVE:
            return None  # re-begin on an open session frees a slot anyway
        active = self._active_count()
        if active < cfg.max_active:
            return None
        if (
            cfg.shed_probability < 1.0
            and self._admission_rng.random() >= cfg.shed_probability
        ):
            return None
        self.counters["shed"] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_admission_shed_total",
                "begins shed by admission control (server at max_active)",
            ).inc()
        if self.tracer is not None:
            self.tracer.event(
                "admission.shed",
                session=request["session"],
                active=active,
                max_active=cfg.max_active,
                retry_after=cfg.retry_after,
            )
        return {
            "error": "shed",
            "retry_after": cfg.retry_after,
            "active": active,
        }

    def _do_begin(self, request: Dict[str, Any], sess: _Session) -> Dict[str, Any]:
        if sess.txn is not None and sess.txn.state is TxnState.ACTIVE:
            # A duplicate of a begin whose reply was lost would have hit the
            # dedup cache; reaching here means the client really wants a
            # fresh transaction while one is open — abort the orphan first.
            sess.txn.abort()
        sess.pending_abort = None
        level = request.get("level")
        if sess.downgraded:
            level = sess.level_override
        elif level is None and self.config.level is not None:
            level = self.config.level
        txn = self.db.begin(level)
        sess.txn = txn
        if sess.first_tid is None:
            sess.first_tid = txn.tid
        self.declared[txn.tid] = self._declared_level(level)
        self._tid_session[txn.tid] = request["session"]
        return {"ok": True, "tid": txn.tid}

    def _declared_level(self, level) -> Optional[IsolationLevel]:
        if level is None:
            return self.config.declared_level
        if isinstance(level, str):
            return IsolationLevel.from_string(level)
        return level

    def _certify(self, tid: int) -> Optional[bool]:
        """Live certification at commit: phenomena must not have violated
        the committed transaction's declared level."""
        if self.monitor is None:
            return None
        level = self.declared.get(tid)
        if level is None:
            return None
        ok = self.monitor.provides(level)
        self.certified[tid] = ok
        if self.metrics is not None:
            self.metrics.counter(
                "service_commits_certified_total",
                "commits live-certified at their declared level",
            ).inc(ok=str(ok).lower())
        if self.tracer is not None:
            self.tracer.event(
                "commit.certified", tid=tid, level=str(level), ok=ok
            )
            if not ok:
                self.tracer.event(
                    "certification.failure", tid=tid, level=str(level)
                )
        if ok is False:
            self._on_uncertified(tid, level)
        return ok

    @property
    def certification_lag(self) -> int:
        """Committed transactions still awaiting a certification verdict
        (only ever non-zero with ``AdmissionConfig.certify_every > 1``)."""
        return len(self._pending_certify)

    def flush_certification(self) -> Dict[int, Optional[bool]]:
        """Certify every commit in the pending batch, in commit order.
        Returns ``tid -> verdict`` for the flushed batch (verdicts also
        land in :attr:`certified`)."""
        verdicts: Dict[int, Optional[bool]] = {}
        if not self._pending_certify:
            return verdicts
        pending, self._pending_certify = self._pending_certify, []
        for tid in pending:
            verdicts[tid] = self._certify(tid)
        return verdicts

    def _on_uncertified(self, tid: int, level: IsolationLevel) -> None:
        """React to a failed live certification per
        :attr:`AdmissionConfig.on_uncertified` (no-op for ``"ignore"``
        or with admission control off)."""
        action = self.admission.on_uncertified if self.admission else "ignore"
        if action == "downgrade":
            sid = self._tid_session.get(tid)
            sess = self._sessions.get(sid) if sid is not None else None
            strongest = self.monitor.strongest_level()
            if sess is not None and not sess.downgraded:
                sess.downgraded = True
                sess.level_override = (
                    str(strongest) if strongest is not None else None
                )
                record = {
                    "tid": tid,
                    "session": sid,
                    "declared": str(level),
                    "downgraded_to": sess.level_override,
                }
                self.downgrades.append(record)
                if self.tracer is not None:
                    self.tracer.event("admission.downgrade", **record)
        elif action == "repair":
            from ..analysis.repair import repair

            result = repair(self.recorder.history(validate=False), level)
            suggestion = {
                "tid": tid,
                "level": str(level),
                "abort": sorted(result.aborted),
                "rounds": result.rounds,
            }
            self.repair_suggestions.append(suggestion)
            if self.tracer is not None:
                self.tracer.event("admission.repair", **suggestion)

    # ------------------------------------------------------------------
    # deadlock resolution
    # ------------------------------------------------------------------

    def _resolve_deadlock(self) -> None:
        """Busy replies carry waits-for edges; a cycle aborts the session
        whose *first* transaction is youngest (the simulator's aging rule:
        restarted victims keep their seniority)."""
        by_tid: Dict[int, str] = {}
        for sid, s in self._sessions.items():
            if s.txn is not None and s.txn.state is TxnState.ACTIVE:
                by_tid[s.txn.tid] = sid
        waits = {}
        for sid, holders in self._waits.items():
            s = self._sessions.get(sid)
            if s is None or s.txn is None or s.txn.state is not TxnState.ACTIVE:
                continue
            live = frozenset(h for h in holders if h in by_tid)
            if live:
                waits[s.txn.tid] = live
        cycle = _find_cycle(waits)
        if not cycle:
            return
        sessions = [self._sessions[by_tid[tid]] for tid in cycle if tid in by_tid]
        if not sessions:
            return
        victim = max(sessions, key=lambda s: s.first_tid or 0)
        assert victim.txn is not None
        self.deadlock_victims += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_deadlock_victims_total",
                "transactions aborted to break service-level deadlocks",
            ).inc()
        if self.tracer is not None:
            self.tracer.event(
                "service.deadlock", cycle=list(cycle), victim=victim.txn.tid
            )
        victim_sid = by_tid[victim.txn.tid]
        victim.txn.abort()
        victim.pending_abort = "deadlock"
        self._waits.pop(victim_sid, None)

    # ------------------------------------------------------------------

    def history(self, *, validate: bool = True):
        """The full service-side history (the durable log, materialised)."""
        return self.recorder.history(validate=validate)
