"""Tests for isolation levels and classification (repro.core.levels)."""

import pytest

from repro.core import parse_history
from repro.core.levels import (
    ANSI_CHAIN,
    IsolationLevel as L,
    classify,
    satisfies,
)
from repro.core.phenomena import Phenomenon as G


class TestProscriptions:
    def test_figure6_table(self):
        assert L.PL_1.proscribed == (G.G0,)
        assert L.PL_2.proscribed == (G.G1,)
        assert L.PL_2_99.proscribed == (G.G1, G.G2_ITEM)
        assert L.PL_3.proscribed == (G.G1, G.G2)

    def test_extension_proscriptions(self):
        assert L.PL_2PLUS.proscribed == (G.G1, G.G_SINGLE)
        assert L.PL_SI.proscribed == (G.G1, G.G_SI)
        assert L.PL_CS.proscribed == (G.G1, G.G_CURSOR)


class TestImplication:
    def test_ansi_chain_totally_ordered(self):
        for i, weaker in enumerate(ANSI_CHAIN):
            for stronger in ANSI_CHAIN[i:]:
                assert stronger.implies(weaker)

    def test_reflexive(self):
        for level in L:
            assert level.implies(level)

    def test_si_and_serializability_incomparable(self):
        assert not L.PL_SI.implies(L.PL_3)
        assert not L.PL_3.implies(L.PL_SI)

    def test_si_implies_2plus(self):
        assert L.PL_SI.implies(L.PL_2PLUS)

    def test_299_implies_cursor_stability(self):
        assert L.PL_2_99.implies(L.PL_CS)

    def test_2plus_and_299_incomparable(self):
        assert not L.PL_2PLUS.implies(L.PL_2_99)
        assert not L.PL_2_99.implies(L.PL_2PLUS)


class TestFromString:
    def test_pl_names(self):
        assert L.from_string("PL-2.99") is L.PL_2_99
        assert L.from_string("pl-3") is L.PL_3
        assert L.from_string("PL-2+") is L.PL_2PLUS

    def test_ansi_names(self):
        assert L.from_string("READ COMMITTED") is L.PL_2
        assert L.from_string("repeatable read") is L.PL_2_99
        assert L.from_string("SERIALIZABLE") is L.PL_3
        assert L.from_string("snapshot isolation") is L.PL_SI

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            L.from_string("chaos")


class TestSatisfies:
    def test_verdict_lists_violations(self):
        h = parse_history("w1(x1) r2(x1) c2 a1")
        verdict = satisfies(h, L.PL_2)
        assert not verdict.ok
        assert any(r.phenomenon is G.G1 for r in verdict.violations)

    def test_verdict_describe(self):
        h = parse_history("w1(x1) c1")
        assert "PROVIDED" in satisfies(h, L.PL_3).describe()

    def test_bool_protocol(self):
        h = parse_history("w1(x1) c1")
        assert satisfies(h, L.PL_3)


class TestClassify:
    def test_serial_history_is_pl3(self):
        assert classify(parse_history("w1(x1) c1 r2(x1) c2")) is L.PL_3

    def test_dirty_read_is_pl1(self):
        assert classify(parse_history("w1(x1) r2(x1) c2 a1")) is L.PL_1

    def test_write_cycle_is_below_pl1(self):
        h = parse_history("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]")
        assert classify(h) is None

    def test_classification_is_monotone_on_chain(self, canonical_history):
        """If a history provides a level, it provides every weaker level
        (the ANSI chain is a chain)."""
        h = canonical_history.history
        verdicts = [satisfies(h, level).ok for level in ANSI_CHAIN]
        # once False, never True again going up the chain
        seen_false = False
        for ok in verdicts:
            if not ok:
                seen_false = True
            assert not (seen_false and ok)

    def test_custom_level_set(self):
        h = parse_history(
            "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) w2(y2) c1 c2 [x0 << x1, y0 << y2]"
        )
        # write skew: PL-SI holds, PL-3 does not.
        result = classify(h, levels=(L.PL_2, L.PL_SI, L.PL_3))
        assert result is L.PL_SI
