"""SEC3 — Section 3: restrictiveness of the preventative approach.

The paper's argument has three measurable parts, each asserted here:

1. H1/H2 are rejected by *both* approaches (they really are bad), while
   H1'/H2' are PL-3-serializable yet rejected by P1/P2 — the motivating
   micro-examples.
2. Quantified over seeded workloads: optimistic and multi-version
   schedulers emit histories that always provide their advertised level but
   are overwhelmingly rejected by the preventative definitions, while
   locking histories are accepted by both ("the preventative approach ...
   disallows such implementations").
3. The containment direction: nothing preventative-accepted is ever
   generalized-rejected (``compare`` raises otherwise).
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import compare
from repro.baseline.preventative import PreventativeAnalysis, PreventativePhenomenon as P
from repro.core.canonical import H1, H2, H1_PRIME, H2_PRIME
from repro.core.levels import IsolationLevel as L
from repro.engine import (
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    SnapshotIsolationScheduler,
)
from repro.workloads import bank_programs, initial_balances

N_SEEDS = 15


def test_section3_micro_examples(benchmark, record_table):
    def run():
        out = []
        for entry in (H1, H2, H1_PRIME, H2_PRIME):
            gen = repro.classify(entry.history)
            prev = PreventativeAnalysis(entry.history)
            bad = [str(p) for p in P if prev.exhibits(p)]
            out.append((entry.name, gen, bad))
        return out

    rows = benchmark(run)
    by_name = {name: (gen, bad) for name, gen, bad in rows}
    assert by_name["H1"][0] is not L.PL_3 and "P1" in by_name["H1"][1]
    assert by_name["H2"][0] is not L.PL_3 and "P2" in by_name["H2"][1]
    assert by_name["H1'"][0] is L.PL_3 and "P1" in by_name["H1'"][1]
    assert by_name["H2'"][0] is L.PL_3 and "P2" in by_name["H2'"][1]

    lines = [
        "SEC3 — the motivating histories",
        "",
        f"{'history':8} {'generalized level':>18} {'P-phenomena exhibited':>24}",
    ]
    for name, gen, bad in rows:
        lines.append(f"{name:8} {str(gen):>18} {', '.join(bad) or '-':>24}")
    lines += [
        "",
        "H1/H2 are bad and both approaches reject them; H1'/H2' are",
        "serializable yet the preventative approach rejects them too.",
    ]
    record_table("section3_micro", "\n".join(lines))


SCHEMES = [
    ("locking/serializable", lambda: LockingScheduler("serializable"), L.PL_3, 1.0),
    ("optimistic", OptimisticScheduler, L.PL_3, None),
    ("snapshot-isolation", SnapshotIsolationScheduler, L.PL_2, None),
    ("mv-read-committed", ReadCommittedMVScheduler, L.PL_2, None),
]


@pytest.mark.parametrize("name,factory,level,prev_rate", SCHEMES)
def test_section3_acceptance_rates(benchmark, record_table, name, factory, level, prev_rate):
    result = benchmark.pedantic(
        compare,
        args=(factory, lambda s: bank_programs(seed=s), initial_balances(4)),
        kwargs={"level": level, "n_seeds": N_SEEDS},
        iterations=1,
        rounds=1,
    )
    # Every scheme always provides its advertised level.
    assert result.generalized_rate == 1.0
    if prev_rate is not None:
        assert result.preventative_rate == prev_rate  # locking passes P0-P3
    else:
        assert result.preventative_rate < 1.0  # non-locking schemes flunk
        assert result.gap > 0
    record_table(f"section3_{name.replace('/', '_')}", "SEC3 — " + result.describe())
