"""Randomized and directed equivalence tests for the incremental analyzer.

The contract under test: feeding a history's events one at a time into
:class:`repro.core.incremental.IncrementalAnalysis` yields *identical*
phenomenon verdicts and the identical strongest ANSI level as the batch
checker over the materialised history — across synthetic workloads
(including predicate-heavy and aborted-transaction mixes), the canonical
paper corpus, and live engine executions observed through the recorder
monitor hook.
"""

import itertools

import pytest

import repro
from repro.core.canonical import ALL_CANONICAL
from repro.core.conflicts import PredicateDepMode
from repro.core.incremental import CORE_PHENOMENA, IncrementalAnalysis
from repro.core.levels import classify
from repro.core.phenomena import Analysis, Phenomenon
from repro.engine import (
    Database,
    LockingScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import WorkloadConfig, random_programs, synthetic_history
from repro.workloads.anomalies import ALL_ANOMALIES


def edge_keys(edges):
    return {
        (e.src, e.dst, e.kind, e.obj, e.version, e.predicate, e.cursor)
        for e in edges
    }


def assert_equivalent(history, inc, label):
    """Incremental and batch verdicts must agree on every core phenomenon,
    the edge set, and the strongest ANSI level."""
    batch = Analysis(history, inc.mode)
    for phenomenon in CORE_PHENOMENA:
        assert inc.exhibits(phenomenon) == batch.exhibits(phenomenon), (
            f"{label}: {phenomenon} disagrees"
        )
    assert edge_keys(inc.edges) == edge_keys(batch.edges), f"{label}: edges"
    assert inc.strongest_level() == classify(history, analysis=batch), (
        f"{label}: strongest level"
    )


# 216 randomized configurations: every combination below times 12 seeds.
RANDOM_CONFIGS = [
    dict(
        abort_fraction=abort,
        stale_read_fraction=stale,
        predicate_fraction=pred,
    )
    for abort, stale, pred in itertools.product(
        (0.0, 0.25),  # none / many aborted transactions
        (0.0, 0.3, 0.6),  # single-version / increasingly stale reads
        (0.0, 0.3, 0.7),  # none / some / predicate-heavy
    )
]
SEEDS = range(12)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "config", RANDOM_CONFIGS, ids=lambda c: "-".join(f"{v:g}" for v in c.values())
    )
    def test_matches_batch(self, config, seed):
        history = synthetic_history(
            n_txns=24, n_objects=5, ops_per_txn=4, seed=seed, **config
        )
        inc = IncrementalAnalysis(order_mode="commit")
        inc.add_all(history.events)
        assert_equivalent(history, inc, f"synthetic{config}/seed{seed}")

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_batch_all_mode(self, seed):
        """PredicateDepMode.ALL quantification also agrees."""
        history = synthetic_history(
            n_txns=20,
            n_objects=4,
            predicate_fraction=0.5,
            stale_read_fraction=0.3,
            seed=seed,
        )
        inc = IncrementalAnalysis(
            order_mode="commit", mode=PredicateDepMode.ALL
        )
        inc.add_all(history.events)
        assert_equivalent(history, inc, f"ALL/seed{seed}")

    @pytest.mark.parametrize("seed", range(6))
    def test_verdicts_monotone_in_prefix(self, seed):
        """Once a phenomenon appears it never disappears as more events
        arrive (presence over a growing event prefix is monotone)."""
        history = synthetic_history(
            n_txns=20, n_objects=4, stale_read_fraction=0.5,
            abort_fraction=0.2, seed=seed,
        )
        inc = IncrementalAnalysis(order_mode="commit")
        seen = set()
        for event in history.events:
            inc.add(event)
            now = {p for p in CORE_PHENOMENA if inc.exhibits(p)}
            assert seen <= now, f"phenomenon vanished at {event}"
            seen = now


class TestCorpusEquivalence:
    """Every canonical paper history and anomaly replays event-by-event to
    the documented verdicts, with the explicit version order as a hint."""

    @pytest.mark.parametrize(
        "entry", ALL_CANONICAL + ALL_ANOMALIES, ids=lambda e: e.name
    )
    def test_replay(self, entry):
        history = entry.history
        inc = IncrementalAnalysis(version_order_hint=history.version_order)
        inc.add_all(history.events)
        assert_equivalent(history, inc, entry.name)
        # The maintained chains reproduce the corpus order exactly.
        assert inc.to_history().version_order == history.version_order


class TestIncrementalSemantics:
    def test_g1a_fires_on_abort_after_read(self):
        inc = IncrementalAnalysis()
        for ev in repro.core.parse_events("w1(x1) r2(x1) c2"):
            inc.add(ev)
        assert not inc.exhibits(Phenomenon.G1A)
        inc.add(repro.core.Abort(1))
        assert inc.exhibits(Phenomenon.G1A)
        assert inc.report(Phenomenon.G1A).witnesses

    def test_g1b_fires_when_read_becomes_intermediate(self):
        inc = IncrementalAnalysis()
        for ev in repro.core.parse_events("w1(x1.1) r2(x1.1) c2"):
            inc.add(ev)
        assert not inc.exhibits(Phenomenon.G1B)
        # x1.1 stops being T1's final modification:
        inc.add(repro.core.parse_events("w1(x1.2)")[0])
        assert inc.exhibits(Phenomenon.G1B)

    def test_finish_applies_completion_rule(self):
        inc = IncrementalAnalysis()
        for ev in repro.core.parse_events("w1(x1) r2(x1) c2"):
            inc.add(ev)
        inc.finish()  # T1 still running -> aborted -> G1a
        assert inc.exhibits(Phenomenon.G1A)

    def test_watch_callback_fires_once(self):
        fired = []
        inc = IncrementalAnalysis(
            watch=(Phenomenon.G1A,), on_phenomenon=lambda p, a: fired.append(p)
        )
        for ev in repro.core.parse_events("w1(x1) r2(x1) c2 a1 r3(x1) c3"):
            inc.add(ev)
        assert fired == [Phenomenon.G1A]

    def test_watch_rejects_extension_phenomena(self):
        with pytest.raises(ValueError):
            IncrementalAnalysis(watch=(Phenomenon.G_SI,))

    def test_extension_phenomena_need_materialisation(self):
        inc = IncrementalAnalysis()
        with pytest.raises(ValueError):
            inc.exhibits(Phenomenon.G_SINGLE)
        # ... but check() covers them via the batch path.
        for ev in repro.core.parse_events("w1(x1) c1 r2(x1) c2"):
            inc.add(ev)
        report = inc.check(extensions=True)
        assert report.strongest_level is not None

    def test_to_history_validates(self):
        history = synthetic_history(n_txns=15, predicate_fraction=0.3, seed=3)
        inc = IncrementalAnalysis(order_mode="commit").add_all(history.events)
        inc.to_history(validate=True)  # must not raise


class TestEngineMonitor:
    @pytest.mark.parametrize("scheduler_cls", [LockingScheduler, SnapshotIsolationScheduler])
    @pytest.mark.parametrize("seed", range(3))
    def test_simulator_monitor_matches_batch(self, scheduler_cls, seed):
        cfg = WorkloadConfig(
            n_programs=5,
            steps_per_program=4,
            predicate_fraction=0.2,
            insert_fraction=0.1,
            write_fraction=0.6,
        )
        db = Database(scheduler_cls())
        db.load(cfg.initial_state())
        monitor = IncrementalAnalysis()
        result = Simulator(
            db, random_programs(cfg, seed=seed), seed=seed, monitor=monitor
        ).run()
        assert result.monitor is monitor
        assert_equivalent(result.history, monitor, scheduler_cls.__name__)

    def test_attach_monitor_replays_existing_events(self):
        db = Database(LockingScheduler())
        db.load({"k0": 1, "k1": 2})
        # Attach only after the load has already been recorded.
        monitor = IncrementalAnalysis()
        db.scheduler.recorder.attach_monitor(monitor)
        txn = db.begin()
        txn.read("k0")
        txn.write("k0", 7)
        txn.commit()
        history = db.history()
        assert len(monitor) == len(history.events)
        assert_equivalent(history, monitor, "attach-replay")


class TestCheckMany:
    def _histories(self, n=6):
        return [
            synthetic_history(
                n_txns=12, n_objects=4, predicate_fraction=0.2, seed=s
            )
            for s in range(n)
        ]

    def test_serial_matches_individual_checks(self):
        histories = self._histories()
        reports = repro.check_many(histories, processes=1)
        for history, report in zip(histories, reports):
            assert report.strongest_level == repro.check(history).strongest_level

    def test_parallel_matches_serial(self):
        histories = self._histories()
        serial = repro.check_many(histories, processes=1)
        parallel = repro.check_many(histories, processes=2)
        assert [r.strongest_level for r in parallel] == [
            r.strongest_level for r in serial
        ]
        # Reports survive the pool round-trip with working verdicts.
        assert all(r.verdicts for r in parallel)

    def test_accepts_notation_strings(self):
        reports = repro.check_many(
            ["w1(x1) c1", "w1(x1) c1 r2(x1) c2"], processes=1
        )
        assert len(reports) == 2
        assert all(r.strongest_level is not None for r in reports)
