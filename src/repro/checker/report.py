"""Check reports: the user-facing result of analysing a history.

A :class:`CheckReport` bundles the phenomenon analysis, per-level verdicts,
the strongest ANSI level, and a rendered explanation.  It is what
:func:`repro.check` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.history import History
from ..core.levels import IsolationLevel, LevelVerdict
from ..core.phenomena import Analysis, Phenomenon, PhenomenonReport

__all__ = ["CheckReport"]

#: Phenomena shown in full reports, paper order.
_REPORT_PHENOMENA: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1A,
    Phenomenon.G1B,
    Phenomenon.G1C,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)


@dataclass
class CheckReport:
    """Everything the checker learned about one history."""

    history: History
    analysis: Analysis
    verdicts: Dict[IsolationLevel, LevelVerdict]
    levels: Tuple[IsolationLevel, ...]

    @property
    def strongest_level(self) -> Optional[IsolationLevel]:
        """The strongest checked level the history provides (``None`` when
        even the weakest checked level is violated)."""
        strongest: Optional[IsolationLevel] = None
        for level, verdict in self.verdicts.items():
            if verdict.ok and (strongest is None or level.implies(strongest)):
                strongest = level
        return strongest

    @property
    def serializable(self) -> bool:
        """Whether the history provides PL-3 (conflict-serializability)."""
        verdict = self.verdicts.get(IsolationLevel.PL_3)
        if verdict is None:
            raise KeyError("PL-3 was not among the checked levels")
        return verdict.ok

    def ok(self, level: IsolationLevel) -> bool:
        return self.verdicts[level].ok

    def phenomena(self) -> Tuple[PhenomenonReport, ...]:
        """Reports for all the standard phenomena (memoized analysis)."""
        return tuple(self.analysis.report(p) for p in _REPORT_PHENOMENA)

    def exhibited(self) -> Tuple[Phenomenon, ...]:
        """The standard phenomena the history exhibits."""
        return tuple(r.phenomenon for r in self.phenomena() if r.present)

    @property
    def timings(self) -> Dict[str, float]:
        """Wall-clock seconds per checker stage, from the underlying
        analysis: ``"extract"`` (edge extraction), one entry per phenomenon
        detected so far, and ``"total"`` for the whole ``check`` call.
        Populated lazily — asking for a phenomenon's report adds its row."""
        return self.analysis.timings

    def describe_timings(self) -> str:
        """The timing breakdown as an aligned text table (microsecond
        precision), stages in measurement order."""
        rows = list(self.timings.items())
        if not rows:
            return "no timings recorded"
        width = max(len(stage) for stage, _ in rows)
        return "\n".join(
            f"{stage:<{width}}  {seconds * 1e6:>10.1f} us" for stage, seconds in rows
        )

    def timeline(self) -> str:
        """The history as a transaction/time grid (see
        :func:`repro.core.timeline.timeline`)."""
        from ..core.timeline import timeline

        return timeline(self.history)

    def named_anomalies(self):
        """The classical anomaly names the history's witnesses justify
        (dirty read, lost update, write skew, phantom, ...)."""
        from .naming import name_anomalies

        return name_anomalies(self.analysis)

    def explain(self) -> str:
        """Multi-line, human-readable account: the history, each phenomenon
        with witnesses, each level verdict, and the strongest level."""
        lines = [f"history: {self.history}"]
        lines.append("")
        lines.append("phenomena:")
        for report in self.phenomena():
            lines.append("  " + report.describe().replace("\n", "\n  "))
        lines.append("")
        lines.append("levels:")
        for level in self.levels:
            verdict = self.verdicts[level]
            mark = "PROVIDED" if verdict.ok else "violated"
            why = ""
            if not verdict.ok:
                names = ", ".join(str(r.phenomenon) for r in verdict.violations)
                why = f" (exhibits {names})"
            lines.append(f"  {level}: {mark}{why}")
        anomalies = self.named_anomalies()
        if anomalies:
            lines.append("")
            lines.append("named anomalies:")
            for anomaly in anomalies:
                lines.append(f"  - {anomaly.name} [{anomaly.phenomenon}]")
        strongest = self.strongest_level
        lines.append("")
        if strongest is None:
            lines.append("strongest level: none (below PL-1)")
        else:
            lines.append(f"strongest level: {strongest}")
        if self.serializable_checked() and self.serializable:
            order = self.analysis.dsg.topological_order()
            pretty = ", ".join(f"T{t}" for t in order)
            lines.append(f"serialization order: {pretty}")
        return "\n".join(lines)

    def serializable_checked(self) -> bool:
        return IsolationLevel.PL_3 in self.verdicts

    def __str__(self) -> str:
        return self.explain()
