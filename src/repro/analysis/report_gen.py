"""One-command reproduction report.

``generate_report()`` runs a condensed version of every experiment —
figures 3/4/5 edge checks, the Figure 6 admission matrix, the Section 2
three-way comparison, Section 3 acceptance rates, Section 5.5 mixing — and
renders a single markdown document stating, per artifact, the paper's claim
and the measured outcome.  It is the ``EXPERIMENTS.md`` pipeline in
miniature, runnable anywhere the package is installed:

    python -m repro report > report.md

Each section carries a PASS/FAIL verdict computed from the same assertions
the benchmark suite makes (smaller seed counts, so it finishes in a few
seconds).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..baseline import ansi_strict_satisfies, preventative_satisfies
from ..checker import check
from ..core.canonical import ALL_CANONICAL, H1, H2, H1_PRIME, H2_PRIME, H_PHANTOM, H_SERIAL, H_WCYCLE
from ..core.dsg import DSG
from ..core.levels import IsolationLevel as L, satisfies
from ..core.msg import mixing_correct
from ..core.parser import parse_history
from ..workloads.anomalies import ALL_ANOMALIES
from .permissiveness import compare

__all__ = ["generate_report"]

Section = Tuple[str, Callable[[], Tuple[bool, List[str]]]]


def _fig3() -> Tuple[bool, List[str]]:
    dsg = DSG(H_SERIAL.history)
    edges = {
        (e.src, e.dst, ("p" if e.via_predicate else "") + e.kind.value)
        for e in dsg.edges
    }
    expected = {
        (1, 2, "ww"), (1, 2, "wr"), (1, 3, "ww"), (2, 3, "wr"), (2, 3, "rw"),
    }
    ok = edges == expected and dsg.topological_order() == [1, 2, 3]
    lines = ["paper: edges T1→T2 (ww, wr), T1→T3 (ww), T2→T3 (wr, rw); order T1,T2,T3"]
    lines += [f"measured: {sorted(edges)}; order {dsg.topological_order()}"]
    return ok, lines


def _fig4() -> Tuple[bool, List[str]]:
    report = check(H_WCYCLE.history)
    ok = report.strongest_level is None
    return ok, [
        "paper: pure write-dependency cycle, disallowed even at PL-1",
        f"measured: strongest level = {report.strongest_level}",
    ]


def _fig5() -> Tuple[bool, List[str]]:
    report = check(H_PHANTOM.history)
    ok = report.ok(L.PL_2_99) and not report.ok(L.PL_3)
    return ok, [
        "paper: permitted by PL-2.99, ruled out by PL-3 (predicate-anti cycle)",
        f"measured: PL-2.99={report.ok(L.PL_2_99)}, PL-3={report.ok(L.PL_3)}",
    ]


def _fig6() -> Tuple[bool, List[str]]:
    corpus = ALL_CANONICAL + ALL_ANOMALIES
    checked = mismatches = 0
    for entry in corpus:
        report = check(entry.history, extensions=True)
        for level, expected in entry.provides.items():
            checked += 1
            mismatches += report.ok(level) != expected
    return mismatches == 0, [
        f"{checked} documented admission-matrix cells re-checked "
        f"({len(corpus)} histories × levels), {mismatches} mismatches",
    ]


def _sec2() -> Tuple[bool, List[str]]:
    lines = ["admitted at SERIALIZABLE under each reading (A / P / G | truth):"]
    ok = True
    truth = {"H1": False, "H2": False, "H1'": True, "H2'": True}
    for entry in (H1, H2, H1_PRIME, H2_PRIME):
        a = ansi_strict_satisfies(entry.history, L.PL_3)
        p = preventative_satisfies(entry.history, L.PL_3)
        g = satisfies(entry.history, L.PL_3).ok
        lines.append(f"  {entry.name:4}: A={a} P={p} G={g} | truth={truth[entry.name]}")
        ok &= g == truth[entry.name]
    ok &= ansi_strict_satisfies(H1.history, L.PL_3)  # A unsound
    ok &= not preventative_satisfies(H1_PRIME.history, L.PL_3)  # P over-strict
    return ok, lines


def _sec3() -> Tuple[bool, List[str]]:
    from ..engine import LockingScheduler, OptimisticScheduler
    from ..workloads import bank_programs, initial_balances

    lock = compare(
        lambda: LockingScheduler("serializable"),
        lambda s: bank_programs(n_accounts=4, seed=s),
        initial_balances(4),
        n_seeds=6,
    )
    occ = compare(
        OptimisticScheduler,
        lambda s: bank_programs(n_accounts=4, seed=s),
        initial_balances(4),
        n_seeds=6,
    )
    ok = (
        lock.generalized_rate == 1.0
        and lock.preventative_rate == 1.0
        and occ.generalized_rate == 1.0
        and occ.preventative_rate < 1.0
    )
    return ok, [lock.describe(), occ.describe()]


def _sec55() -> Tuple[bool, List[str]]:
    bad = parse_history(
        "b1@PL-3 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
        "[x0 << x2]"
    )
    good = parse_history(
        "b1@PL-1 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
        "[x0 << x2]"
    )
    bad_report = mixing_correct(bad)
    good_report = mixing_correct(good)
    ok = (not bad_report.ok) and good_report.ok
    return ok, [
        f"PL-3 reader over a PL-1 writer: {bad_report.describe().splitlines()[0]}",
        "same events, both PL-1: mixing-correct",
    ]


def _svc_flight() -> Tuple[bool, List[str]]:
    """The anomaly flight recorder: a replicated run that latches a
    phenomenon yields deterministic dossiers whose trace slices cover
    the witness cycle — the observability plane's acceptance claim, in
    miniature (full version: ``repro dossier --selftest``)."""
    from ..observability import FlightRecorder, Tracer, dossier_json
    from ..service import ClusterConfig, NetworkConfig, StressConfig, run_stress

    config = StressConfig(
        scheduler="locking", level="PL-2", clients=4, txns_per_client=10,
        keys=6, ops_per_txn=4, seed=7,
        network=NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4),
        cluster=ClusterConfig(
            shards=2, replicas=2, replication_every=12, replication_lag=(4, 10),
            partition_primary_after_commits=(1, 5), heal_after=60,
        ),
        read_preference="replica", read_only_fraction=0.5,
    )

    def dossiers():
        result = run_stress(config, tracer=Tracer(), flight=FlightRecorder())
        return [dossier_json(d) for d in result.dossiers()], result

    first, result = dossiers()
    second, _ = dossiers()
    covered = all(
        set(d["witness_tids"]) <= {
            tid
            for record in d["trace_slice"]
            for tid in [(record.get("attrs") or {}).get("tid"),
                        *((record.get("attrs") or {}).get("tids") or ())]
            if tid is not None
        }
        for d in result.dossiers()
    )
    ok = bool(first) and first == second and covered
    return ok, [
        "replicated stale-read run (2 shards x 2 replicas, faulted network):",
        f"  dossiers latched: {len(first)}; byte-identical rerun: {first == second}; "
        f"witness spans covered: {covered}",
    ]


SECTIONS: List[Section] = [
    ("FIG3 — DSG of H_serial", _fig3),
    ("FIG4 — the G0 write cycle", _fig4),
    ("FIG5 — the phantom", _fig5),
    ("FIG6 — admission matrix", _fig6),
    ("SEC2 — the ANSI ambiguity", _sec2),
    ("SEC3 — preventative restrictiveness", _sec3),
    ("SEC55 — mixed levels", _sec55),
    ("SVC — anomaly flight recorder", _svc_flight),
]


def generate_report() -> Tuple[str, bool]:
    """Run the condensed experiments; return (markdown, all_passed)."""
    out: List[str] = [
        "# Reproduction report — Generalized Isolation Level Definitions",
        "",
        "Condensed re-run of every paper artifact (full versions live in",
        "`benchmarks/`; see EXPERIMENTS.md for the complete record).",
        "",
    ]
    all_ok = True
    for title, section in SECTIONS:
        ok, lines = section()
        all_ok &= ok
        out.append(f"## {title} — {'PASS' if ok else 'FAIL'}")
        out.append("")
        out.extend(lines)
        out.append("")
    out.append(f"**Overall: {'all artifacts reproduce' if all_ok else 'FAILURES above'}.**")
    return "\n".join(out), all_ok
