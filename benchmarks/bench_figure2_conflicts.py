"""FIG2 — Figure 2: Definitions of direct conflicts between transactions.

Figure 2 is the three-row table defining write-, read-, and
anti-dependencies (each with item and predicate flavours).  This bench
regenerates it operationally: for each row a canonical micro-history is
built whose *only* cross-transaction conflict is that row's, and the
extractor must produce exactly that edge.  The timing measures conflict
extraction over the micro-corpus.
"""

from __future__ import annotations


from repro.core import parse_history
from repro.core.conflicts import DepKind, all_dependencies

#: (row label, history text, expected (src, dst, kind, via_predicate))
MICRO_CORPUS = [
    (
        "directly write-depends",
        "w1(x1) c1 w2(x2) c2",
        (1, 2, DepKind.WW, False),
    ),
    (
        "directly item-read-depends",
        "w1(x1) c1 r2(x1) c2",
        (1, 2, DepKind.WR, False),
    ),
    (
        "directly predicate-read-depends",
        "w1(x1) c1 r2(P: x1*) c2",
        (1, 2, DepKind.WR, True),
    ),
    (
        "directly item-anti-depends",
        "r1(x0) c1 w2(x2) c2",
        (1, 2, DepKind.RW, False),
    ),
    (
        "directly predicate-anti-depends (insert)",
        "r1(P: x0*) c1 w2(y2) c2 [P matches: y2]",
        (1, 2, DepKind.RW, True),
    ),
    (
        "directly predicate-anti-depends (delete)",
        "r1(P: x0*) c1 w2(x2, dead) c2",
        (1, 2, DepKind.RW, True),
    ),
]


def classify_corpus():
    out = []
    for label, text, expected in MICRO_CORPUS:
        history = parse_history(text)
        edges = {
            (e.src, e.dst, e.kind, e.via_predicate)
            for e in all_dependencies(history)
            # edges to/from the implicit setup state (T0 with no events)
            # are scaffolding, not the conflict under test
            if e.src in history.committed and e.dst in history.committed
        }
        out.append((label, expected, edges))
    return out


def test_figure2_conflict_table(benchmark, record_table):
    rows = benchmark(classify_corpus)
    lines = ["FIG2 — direct-conflict classification of the micro-corpus", ""]
    lines.append(f"{'conflict (paper row)':45} {'edge found':>22}")
    for label, expected, edges in rows:
        assert expected in edges, f"{label}: expected {expected}, got {edges}"
        # the micro-history contains no *other* cross-transaction conflicts
        others = {e for e in edges if e != expected}
        assert not others, f"{label}: unexpected extra conflicts {others}"
        src, dst, kind, pred = expected
        tag = ("predicate-" if pred else "") + kind.value
        lines.append(f"{label:45} {f'T{src} -{tag}-> T{dst}':>22}")
    record_table("figure2_conflicts", "\n".join(lines))
