"""Multi-version storage substrate for the engine.

The store keeps every committed version of every object together with the
sequence number of the commit that installed it, which is what the
multi-version schedulers need: snapshot isolation reads "the latest version
committed before my begin", read-committed MVCC reads "the latest committed
version right now", and the OCC validator asks "which objects changed since
commit number N".

Objects are namespaced by relation (``"emp:3"`` lives in relation ``emp``);
the store tracks each relation's object universe so predicate reads can
build complete version sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.objects import Version, relation_of

__all__ = ["StoredVersion", "MultiVersionStore"]


@dataclass(frozen=True)
class StoredVersion:
    """One committed version: identity, value, liveness, and the global
    commit sequence number that installed it."""

    version: Version
    value: Any
    dead: bool
    commit_seq: int

    @property
    def obj(self) -> str:
        return self.version.obj


class MultiVersionStore:
    """All committed versions, per object, in install (version) order."""

    def __init__(self) -> None:
        self._chains: Dict[str, List[StoredVersion]] = {}
        self._relations: Dict[str, Set[str]] = {}
        self._commit_seq = 0
        self._metrics = None
        self._scheduler = ""

    def instrument(self, *, metrics=None, scheduler: str = "") -> None:
        """Observe per-object version-chain lengths
        (``version_chain_len{scheduler}``) at each install."""
        self._metrics = metrics
        self._scheduler = scheduler

    # ------------------------------------------------------------------
    # registration and installs
    # ------------------------------------------------------------------

    @property
    def commit_seq(self) -> int:
        """The number of commits installed so far (snapshot handle)."""
        return self._commit_seq

    def register(self, obj: str) -> None:
        """Make ``obj`` part of its relation's universe (inserts register
        before committing so concurrent predicate reads can select the
        unborn version explicitly)."""
        self._relations.setdefault(relation_of(obj), set()).add(obj)
        self._chains.setdefault(obj, [])

    def install(
        self, writes: Iterable[Tuple[Version, Any, bool]]
    ) -> int:
        """Install one committed transaction's final versions atomically;
        returns the commit sequence number used."""
        self._commit_seq += 1
        seq = self._commit_seq
        for version, value, dead in writes:
            self.register(version.obj)
            chain = self._chains[version.obj]
            chain.append(StoredVersion(version, value, dead, seq))
            if self._metrics is not None:
                self._metrics.histogram(
                    "version_chain_len",
                    "committed version-chain length at install",
                ).observe(len(chain), scheduler=self._scheduler)
        return seq

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def chain(self, obj: str) -> Tuple[StoredVersion, ...]:
        return tuple(self._chains.get(obj, ()))

    def objects(self) -> Tuple[str, ...]:
        """Every object ever registered/installed, in insertion order
        (shard migration enumerates the source store through this)."""
        return tuple(self._chains)

    def latest(self, obj: str) -> Optional[StoredVersion]:
        """The latest committed version of ``obj`` (dead versions
        included — callers check ``.dead``); ``None`` if never written."""
        chain = self._chains.get(obj)
        return chain[-1] if chain else None

    def at_snapshot(self, obj: str, snapshot_seq: int) -> Optional[StoredVersion]:
        """The latest version committed at or before ``snapshot_seq``."""
        chain = self._chains.get(obj)
        if not chain:
            return None
        for stored in reversed(chain):
            if stored.commit_seq <= snapshot_seq:
                return stored
        return None

    def changed_since(self, obj: str, seq: int) -> bool:
        """Whether any version of ``obj`` committed after sequence ``seq``."""
        chain = self._chains.get(obj)
        return bool(chain) and chain[-1].commit_seq > seq

    def objects_in(self, relation: str) -> Tuple[str, ...]:
        """The known universe of the relation, sorted for determinism."""
        return tuple(sorted(self._relations.get(relation, ())))

    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))
