"""Tests for the multi-version schedulers (repro.engine.mvcc)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.core.phenomena import Analysis, Phenomenon as G
from repro.core.predicates import FieldPredicate
from repro.engine import (
    Database,
    ReadCommittedMVScheduler,
    SnapshotIsolationScheduler,
)
from repro.exceptions import WriteConflict


def si_db(initial=None):
    db = Database(SnapshotIsolationScheduler())
    db.load(initial or {"x": 5, "y": 5})
    return db


def rc_db(initial=None):
    db = Database(ReadCommittedMVScheduler())
    db.load(initial or {"x": 5, "y": 5})
    return db


class TestSnapshotReads:
    def test_snapshot_frozen_at_begin(self):
        db = si_db()
        t1 = db.begin()
        t2 = db.begin()
        t2.write("x", 99)
        t2.commit()
        assert t1.read("x") == 5  # T1's snapshot predates T2

    def test_new_transaction_sees_commit(self):
        db = si_db()
        t2 = db.begin()
        t2.write("x", 99)
        t2.commit()
        assert db.begin().read("x") == 99

    def test_snapshot_predicate_read(self):
        db = si_db({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin()
        t2 = db.begin()
        t2.insert("emp", {"dept": "Sales", "sal": 2})
        t2.commit()
        assert t1.count(pred) == 1  # insert invisible to T1's snapshot

    def test_deleted_object_invisible_after_snapshot(self):
        db = si_db()
        t1 = db.begin()
        t1.delete("x")
        t1.commit()
        assert db.begin().read("x") is None


class TestFirstCommitterWins:
    def test_concurrent_write_conflict(self):
        db = si_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.commit()
        with pytest.raises(WriteConflict):
            t2.commit()

    def test_loser_identified(self):
        db = si_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("x", 2)
        t1.commit()
        with pytest.raises(WriteConflict) as exc:
            t2.commit()
        assert exc.value.conflicting_tid == t1.tid
        assert exc.value.obj == "x"

    def test_disjoint_writes_both_commit(self):
        db = si_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 1)
        t2.write("y", 2)
        t1.commit()
        t2.commit()

    def test_si_prevents_lost_update(self):
        db = si_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", t1.read("x") + 1)
        t2.write("x", t2.read("x") + 1)
        t1.commit()
        with pytest.raises(WriteConflict):
            t2.commit()
        h = db.history()
        assert not Analysis(h).exhibits(G.G_SI)


class TestWriteSkew:
    def test_si_admits_write_skew(self):
        db = si_db({"x": 1, "y": 1})
        t1, t2 = db.begin(), db.begin()
        t1.write("x", t1.read("x") + t1.read("y"))
        t2.write("y", t2.read("x") + t2.read("y"))
        t1.commit()
        t2.commit()  # disjoint write sets: both commit
        rep = repro.check(db.history(), extensions=True)
        assert rep.ok(L.PL_SI)
        assert not rep.ok(L.PL_3)

    def test_emitted_histories_always_pl_si(self):
        from repro.engine import Program, Read, Simulator, Write

        def programs():
            return [
                Program("a", [Read("x", into="x"), Read("y", into="y"),
                              Write("x", lambda r: r["x"] + r["y"])]),
                Program("b", [Read("x", into="x"), Read("y", into="y"),
                              Write("y", lambda r: r["x"] + r["y"])]),
                Program("c", [Read("x", into="x"), Write("z", lambda r: r["x"])]),
            ]

        for seed in range(5):
            db = si_db({"x": 1, "y": 1, "z": 0})
            Simulator(db, programs(), seed=seed).run()
            rep = repro.check(db.history(), levels=(L.PL_SI,))
            assert rep.ok(L.PL_SI)


class TestReadCommittedMV:
    def test_statement_level_reads(self):
        db = rc_db()
        t1 = db.begin()
        assert t1.read("x") == 5
        t2 = db.begin()
        t2.write("x", 99)
        t2.commit()
        assert t1.read("x") == 99  # fuzzy read allowed

    def test_lost_update_possible(self):
        db = rc_db()
        t1, t2 = db.begin(), db.begin()
        v1 = t1.read("x")
        v2 = t2.read("x")
        t1.write("x", v1 + 1)
        t2.write("x", v2 + 1)
        t1.commit()
        t2.commit()  # no validation: T1's update lost
        assert db.begin().read("x") == 6

    def test_no_dirty_reads(self):
        db = rc_db()
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 99)
        assert t2.read("x") == 5

    def test_emitted_histories_always_pl2(self):
        from repro.engine import Program, Read, Simulator, Write

        def programs():
            return [
                Program(
                    f"p{i}",
                    [Read("x", into="x"), Write("x", lambda r: r["x"] + 1)],
                )
                for i in range(4)
            ]

        for seed in range(5):
            db = rc_db()
            Simulator(db, programs(), seed=seed).run()
            rep = repro.check(db.history(), levels=(L.PL_2,))
            assert rep.ok(L.PL_2)
