"""ABL — ablations of the design choices DESIGN.md calls out.

Three ablations, each with the qualitative shape asserted:

* **Definition 3 quantification** (LATEST vs ALL predicate-read
  dependencies): ALL is a strict edge superset on the paper's
  ``H_pred-read``; LATEST acceptance contains ALL acceptance at every level
  over the full corpus — the "minimum possible conflicts" claim.
* **Contention spectrum**: phenomena a scheme proscribes stay at 0% across
  a hot-key sweep; the others rise with contention — the lock/validation
  machinery, not luck, is what keeps histories clean.
* **Per-level OCC validation** (the mixing-correct optimistic scheduler):
  weaker declared levels skip validation work and abort at most as often as
  PL-3 — the performance motivation for levels below serializability.
"""

from __future__ import annotations

import pytest

from repro.analysis import contention_spectrum, predicate_mode_ablation
from repro.core.canonical import ALL_CANONICAL
from repro.core.levels import IsolationLevel as L
from repro.core.msg import mixing_correct
from repro.core.phenomena import Phenomenon as G
from repro.engine import (
    Database,
    LockingScheduler,
    MixedOptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
)
from repro.workloads import WorkloadConfig, random_programs
from repro.workloads.anomalies import ALL_ANOMALIES


def test_predicate_mode_ablation(benchmark, record_table):
    corpus = [entry.history for entry in ALL_CANONICAL + ALL_ANOMALIES]
    result = benchmark(lambda: predicate_mode_ablation(corpus))
    assert result.edges_all >= result.edges_latest
    for level in result.accepted_latest:
        assert result.accepted_latest[level] >= result.accepted_all[level]
    record_table("ablation_predicate_mode", "ABL — " + result.describe())


@pytest.mark.parametrize(
    "name,factory,always_absent",
    [
        ("locking-serializable", lambda: LockingScheduler("serializable"),
         (G.G0, G.G1, G.G2_ITEM, G.G2)),
        ("locking-read-committed", lambda: LockingScheduler("read-committed"),
         (G.G0, G.G1)),
        ("mv-read-committed", ReadCommittedMVScheduler, (G.G0, G.G1)),
    ],
)
def test_contention_spectrum(benchmark, record_table, name, factory, always_absent):
    points = benchmark.pedantic(
        contention_spectrum,
        args=(factory,),
        kwargs={"hot_fractions": (0.0, 0.3, 0.6, 0.9), "n_seeds": 8},
        iterations=1,
        rounds=1,
    )
    lines = [f"ABL — contention spectrum, {name}"]
    for point in points:
        for phenomenon in always_absent:
            assert point.rates[phenomenon] == 0, (
                f"{name} must proscribe {phenomenon} at hot={point.hot_fraction}"
            )
        lines.append("  " + point.describe())
    record_table(f"ablation_spectrum_{name}", "\n".join(lines))


def test_per_level_occ_validation(benchmark, record_table):
    def run(level):
        aborts = commits = 0
        histories = []
        for seed in range(8):
            cfg = WorkloadConfig(
                n_programs=6, steps_per_program=3, n_keys=3,
                write_fraction=0.7, hot_fraction=0.8, level=level,
            )
            db = Database(MixedOptimisticScheduler())
            db.load(cfg.initial_state())
            result = Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
            aborts += result.abort_count
            commits += result.committed_count
            histories.append(db.history())
        return aborts, commits, histories

    def sweep():
        return {level: run(level) for level in (L.PL_2, L.PL_2_99, L.PL_3)}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["ABL — per-level OCC validation (8 hot-key runs each)"]
    for level, (aborts, commits, histories) in results.items():
        for history in histories:
            assert mixing_correct(history).ok
            import repro

            assert repro.satisfies(history, level).ok
        lines.append(f"  {level}: {commits} commits, {aborts} aborts")
    # Weaker levels validate less, so they abort at most as often.
    assert results[L.PL_2][0] <= results[L.PL_3][0]
    record_table("ablation_occ_levels", "\n".join(lines))
