"""repro — Generalized Isolation Level Definitions.

A complete implementation of Adya, Liskov & O'Neil, *Generalized Isolation
Level Definitions* (ICDE 2000): Adya-style multi-version transaction
histories with predicates, direct serialization graphs, the generalized
phenomena G0/G1/G2, the portable isolation levels PL-1 … PL-3 (plus the
thesis extensions PL-2+, PL-SI, PL-CS), mixed-level correctness, the
preventative P0–P3 baseline, an isolation checker, and a deterministic
multi-scheduler transactional engine for generating real histories.

Quick start::

    import repro

    report = repro.check("r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 "
                         "r1(y0, 5) w1(y1, 9) c1")
    print(report.strongest_level)   # PL-2: the history exhibits G2
    print(report.explain())

Run transactions against a real engine (``repro.connect`` opens any
scheduler family), or push them through the fault-injected client/server
layer (``repro.service``) and watch every commit get live-certified::

    db = repro.connect("locking", level="serializable", initial={"x": 0})
    t = db.begin()
    t.write("x", t.read("x") + 1)
    t.commit()

    result = repro.run_stress(repro.StressConfig(seed=7, crash_after_commits=30))
    assert result.all_certified

Scale the service out: a sharded cluster with cross-shard two-phase
commit and global certification is one config away
(``repro.connect_cluster`` opens it interactively)::

    sharded = repro.StressConfig(cluster=repro.ClusterConfig(shards=3))
    assert repro.run_stress(sharded).all_certified
"""

from .core import (
    ANSI_CHAIN,
    DSG,
    MSG,
    SSG,
    Analysis,
    Cycle,
    DepKind,
    Edge,
    History,
    IncrementalAnalysis,
    IsolationLevel,
    LevelVerdict,
    Phenomenon,
    PhenomenonReport,
    PredicateDepMode,
    Version,
    VersionKind,
    classify,
    format_history,
    mixing_correct,
    parse_history,
    satisfies,
)
from .checker import CheckReport, check, check_level, check_many
from .engine import (
    Database,
    SchedulerConfig,
    SimulationResult,
    Simulator,
    TransactionHandle,
    connect,
    create_scheduler,
)
from .analysis import OpCheckResult, check_operations
from .service import (
    Client,
    ClusterConfig,
    NetworkConfig,
    RetryPolicy,
    Server,
    SessionGuarantees,
    ShardMap,
    SimulatedNetwork,
    StressConfig,
    StressResult,
    connect_cluster,
    run_stress,
)
from .observability import FlightRecorder, MetricsRegistry, Tracer
from .exceptions import (
    HistoryError,
    MalformedHistoryError,
    ParseError,
    ReproError,
    TransactionAborted,
    VersionOrderError,
)

__version__ = "1.0.0"

__all__ = [
    "ANSI_CHAIN",
    "DSG",
    "MSG",
    "SSG",
    "Analysis",
    "Cycle",
    "DepKind",
    "Edge",
    "History",
    "IncrementalAnalysis",
    "IsolationLevel",
    "LevelVerdict",
    "Phenomenon",
    "PhenomenonReport",
    "PredicateDepMode",
    "Version",
    "VersionKind",
    "classify",
    "format_history",
    "mixing_correct",
    "parse_history",
    "satisfies",
    "CheckReport",
    "check",
    "check_level",
    "check_many",
    "Database",
    "SchedulerConfig",
    "SimulationResult",
    "Simulator",
    "TransactionHandle",
    "connect",
    "create_scheduler",
    "Client",
    "ClusterConfig",
    "NetworkConfig",
    "OpCheckResult",
    "RetryPolicy",
    "Server",
    "SessionGuarantees",
    "ShardMap",
    "SimulatedNetwork",
    "StressConfig",
    "StressResult",
    "check_operations",
    "connect_cluster",
    "run_stress",
    "FlightRecorder",
    "MetricsRegistry",
    "Tracer",
    "HistoryError",
    "MalformedHistoryError",
    "ParseError",
    "ReproError",
    "TransactionAborted",
    "VersionOrderError",
    "__version__",
]
