"""Dependency-free metrics: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is the single sink every instrumented component
shares — the engine schedulers, the recorder, the lock manager, the store,
the incremental monitor and the batch checker all accept an optional
``metrics=`` registry and account their work into it.  The registry is
deliberately tiny and allocation-light:

* instruments are registered once by name (re-registration returns the
  existing instrument, so call sites never coordinate);
* one instrument holds one time series per distinct label combination;
* hot paths bind a labelled series once (``counter.labels(...)``) and then
  pay a dict lookup plus an integer add per observation;
* **disabled is free**: components default to ``metrics=None`` and guard
  every emission with an ``is not None`` check — no null objects, no
  indirection, nothing on the hot path (the ``benchguard`` overhead test
  pins this).

The registry also carries the engine's *logical clock* (:attr:`clock`):
the simulator ticks it once per scheduling step, and duration-style
metrics (lock wait/hold times) are measured in those steps — deterministic
under a fixed seed, unlike wall-clock.

Export formats: :meth:`MetricsRegistry.snapshot` (plain dicts, JSON-ready),
:meth:`render_text` (human-readable) and :meth:`render_prometheus`
(Prometheus text exposition, ``# HELP``/``# TYPE`` included).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: a geometric ladder wide enough for logical
#: steps, chain lengths and cycle sizes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Buckets for wall-clock seconds (checker pass timings).
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared name/help/series bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    def series(self) -> Dict[LabelKey, Any]:
        """``label-key -> value`` for every series observed so far."""
        return dict(self._series)


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels: Any) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def labels(self, **labels: Any) -> "_BoundCounter":
        """Pre-resolve a label combination for hot loops."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels: Any) -> int:
        """The count for one label combination (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0)

    @property
    def total(self) -> int:
        """Sum across every label combination."""
        return sum(self._series.values())


class _BoundCounter:
    """A counter bound to one label key: one dict op per ``inc``."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelKey):
        self._counter = counter
        self._key = key

    def inc(self, amount: int = 1) -> None:
        series = self._counter._series
        series[self._key] = series.get(self._key, 0) + amount


class Gauge(_Instrument):
    """A value that can go up and down (current queue depths, sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0)


class _HistogramSeries:
    """count/sum/min/max plus cumulative bucket counts."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf


class Histogram(_Instrument):
    """Distribution of observed values over fixed buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        if series.min is None or value < series.min:
            series.min = value
        if series.max is None or value > series.max:
            series.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
                return
        series.bucket_counts[-1] += 1

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum_of(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: Any) -> Optional[float]:
        series = self._series.get(_label_key(labels))
        if not series or not series.count:
            return None
        return series.sum / series.count

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]) from the
        bucket counts by linear interpolation between bucket bounds.

        The target rank is located in the cumulative bucket counts; the
        estimate interpolates between the bucket's lower and upper bound
        by the rank's position inside the bucket, clamped to the observed
        ``min``/``max`` (so a single-sample histogram reports that sample
        at every percentile, and the +Inf bucket reports ``max``).
        Returns ``None`` for an empty (or unobserved) series.
        """
        if not (0 <= q <= 100):
            raise ValueError("q must be in [0, 100]")
        series = self._series.get(_label_key(labels))
        if series is None or not series.count:
            return None
        rank = max(1, -(-series.count * q // 100))  # ceil(count*q/100)
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, series.bucket_counts):
            if bucket_count:
                if cumulative + bucket_count >= rank:
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + (bound - lower) * fraction
                    return min(max(estimate, series.min), series.max)
                cumulative += bucket_count
            lower = bound
        return series.max  # rank lands in the +Inf bucket


class MetricsRegistry:
    """A namespace of instruments plus the engine's logical clock.

    >>> reg = MetricsRegistry()
    >>> reg.counter("txn_commits_total").inc(scheduler="occ")
    >>> reg.counter("txn_commits_total").value(scheduler="occ")
    1
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        #: Logical step clock; the simulator ticks it once per scheduling
        #: round so durations are deterministic (same seed, same metrics).
        self.clock = 0

    def tick(self, steps: int = 1) -> int:
        self.clock += steps
        return self.clock

    # -- registration ----------------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, help, **kwargs)
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything observed so far as plain JSON-ready dicts."""
        out: Dict[str, Any] = {}
        for inst in self.instruments():
            series_out = []
            for key, value in sorted(inst._series.items()):
                labels = dict(key)
                if isinstance(inst, Histogram):
                    series_out.append(
                        {
                            "labels": labels,
                            "count": value.count,
                            "sum": value.sum,
                            "min": value.min,
                            "max": value.max,
                            "buckets": {
                                str(b): c
                                for b, c in zip(
                                    list(inst.buckets) + ["+Inf"],
                                    value.bucket_counts,
                                )
                            },
                        }
                    )
                else:
                    series_out.append({"labels": labels, "value": value})
            out[inst.name] = {
                "type": inst.kind,
                "help": inst.help,
                "series": series_out,
            }
        return out

    def render_text(self) -> str:
        """Human-readable dump, one line per series."""
        lines: List[str] = []
        for inst in self.instruments():
            if not inst._series:
                continue
            lines.append(f"{inst.name} ({inst.kind})")
            for key, value in sorted(inst._series.items()):
                label_s = ", ".join(f"{k}={v}" for k, v in key)
                label_s = f"{{{label_s}}}" if label_s else ""
                if isinstance(inst, Histogram):
                    mean = value.sum / value.count if value.count else 0.0
                    labels = dict(key)
                    quantiles = " ".join(
                        f"p{q}={inst.percentile(q, **labels):g}"
                        for q in (50, 95, 99)
                    )
                    lines.append(
                        f"  {label_s or '(all)'}: count={value.count} "
                        f"sum={value.sum:g} min={value.min:g} "
                        f"max={value.max:g} mean={mean:g} {quantiles}"
                    )
                else:
                    lines.append(f"  {label_s or '(all)'}: {value:g}")
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        for inst in self.instruments():
            if not inst._series:
                continue
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for key, value in sorted(inst._series.items()):
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        list(inst.buckets) + ["+Inf"], value.bucket_counts
                    ):
                        cumulative += count
                        bucket_labels = key + (("le", str(bound)),)
                        lines.append(
                            f"{inst.name}_bucket{_prom_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{inst.name}_sum{_prom_labels(key)} {value.sum:g}"
                    )
                    lines.append(
                        f"{inst.name}_count{_prom_labels(key)} {value.count}"
                    )
                else:
                    lines.append(f"{inst.name}{_prom_labels(key)} {value:g}")
        return "\n".join(lines)


def _prom_labels(key: Iterable[Tuple[str, str]]) -> str:
    items = list(key)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return f"{{{body}}}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
