"""The isolation checker: the library's user-facing entry points.

``check`` takes a history — either a :class:`~repro.core.history.History`
or the textual notation — and returns a :class:`CheckReport` with every
phenomenon, per-level verdicts, and the strongest level provided::

    >>> import repro
    >>> repro.check("w1(x1, 2) w2(x2, 5) w2(y2, 5) c2 w1(y1, 8) c1 "
    ...             "[x1 << x2, y2 << y1]").strongest_level is None
    True

``check_level`` answers the single-level question and ``classify`` (from
:mod:`repro.core.levels`) returns just the strongest ANSI level.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Iterable, List, Optional, Sequence, Union

from ..core.conflicts import PredicateDepMode
from ..core.history import History
from ..core.levels import ANSI_CHAIN, IsolationLevel, LevelVerdict, satisfies
from ..core.parser import parse_history
from ..core.phenomena import Analysis
from .report import CheckReport

__all__ = ["check", "check_level", "check_many", "as_history"]

HistoryLike = Union[History, str]


def as_history(history: HistoryLike, *, auto_complete: bool = False) -> History:
    """Coerce textual notation to a validated :class:`History`."""
    if isinstance(history, History):
        return history
    return parse_history(history, auto_complete=auto_complete)


def check(
    history: HistoryLike,
    *,
    levels: Sequence[IsolationLevel] = ANSI_CHAIN,
    extensions: bool = False,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    auto_complete: bool = False,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
) -> CheckReport:
    """Full analysis of a history.

    Parameters
    ----------
    history:
        A :class:`History` or its textual notation.
    levels:
        Levels to test (default: the ANSI chain of Figure 6).
    extensions:
        Also test the thesis extension levels PL-CS, PL-2+, PL-SI and PL-SS.
    mode:
        Predicate-read-dependency quantification.
    auto_complete:
        Append aborts for unfinished transactions before checking
        (Section 4.2's completion; only applies to textual input).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`: the check
        accounts edge counts and per-stage durations into it
        (``checker_*`` metrics; see ``docs/observability.md``).
    tracer:
        Optional :class:`~repro.observability.Tracer`: the check runs under
        a ``checker.check`` span with ``checker.extract`` /
        ``checker.phenomenon`` child spans.

    Caching contract
    ----------------
    One :class:`~repro.core.phenomena.Analysis` is built per call and shared
    by every phenomenon detector and per-level verdict: the direct-conflict
    edges are extracted exactly once (``Analysis.edges``), the DSG and the
    SSG of the extension levels are built over that shared edge list, and
    per-phenomenon reports are memoized.  Checking all four ANSI levels
    therefore costs one edge extraction plus one SCC pass per distinct
    phenomenon, not one extraction per level.  The caches live on the
    analysis/history pair and histories are immutable, so nothing needs
    invalidation; see ``docs/performance.md`` for the full cost model.
    """
    h = as_history(history, auto_complete=auto_complete)
    wanted = list(levels)
    if extensions:
        for extra in (
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
            IsolationLevel.PL_SI,
            IsolationLevel.PL_SS,
        ):
            if extra not in wanted:
                wanted.append(extra)
    span = None
    if tracer is not None:
        span = tracer.span(
            "checker.check",
            events=len(h.events),
            levels=[str(level) for level in wanted],
        )
    started = time.perf_counter()
    analysis = Analysis(h, mode, metrics=metrics, tracer=tracer)
    verdicts = {
        level: satisfies(h, level, analysis=analysis) for level in wanted
    }
    analysis.timings["total"] = time.perf_counter() - started
    if metrics is not None:
        metrics.counter("checker_checks_total", "histories checked").inc()
    report = CheckReport(h, analysis, verdicts, tuple(wanted))
    if span is not None:
        strongest = report.strongest_level
        span.end(strongest=str(strongest) if strongest is not None else None)
    return report


def _check_chunk(
    chunk: Sequence[HistoryLike],
    *,
    levels: Sequence[IsolationLevel],
    extensions: bool,
    mode: PredicateDepMode,
    auto_complete: bool,
) -> List[CheckReport]:
    """Module-level worker so :func:`check_many` can dispatch it to a
    process pool (bound methods and closures do not pickle).  Takes a whole
    *chunk* of histories per task: corpus sweeps are dominated by many small
    histories, and per-task pickling/IPC overhead swamps the per-history
    analysis cost unless histories are shipped in batches."""
    return [
        check(
            h,
            levels=levels,
            extensions=extensions,
            mode=mode,
            auto_complete=auto_complete,
        )
        for h in chunk
    ]


def check_many(
    histories: Iterable[HistoryLike],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
    levels: Sequence[IsolationLevel] = ANSI_CHAIN,
    extensions: bool = False,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    auto_complete: bool = False,
    metrics: Optional[object] = None,
) -> List[CheckReport]:
    """Check a batch of histories, optionally across worker processes.

    ``processes=None`` picks ``os.cpu_count()`` workers when there is more
    than one history to check; ``processes<=1`` forces the serial path (no
    pool, no pickling).  Reports come back in input order.

    ``chunksize`` controls how many histories travel in one pickled task.
    ``None`` picks a heuristic — enough chunks for ~4 tasks per worker, so
    stragglers rebalance, but no smaller than 1 — which is right for
    uniform corpora; pass an explicit value when history sizes are wildly
    skewed (smaller chunks rebalance better) or tiny and uniform (larger
    chunks cut dispatch overhead further).

    ``metrics`` is honoured on the serial path only: registries are
    in-process objects and do not aggregate across a worker pool, so the
    parallel path checks without instrumentation rather than silently
    accounting a single worker's share.  Pass ``processes=1`` to combine
    batch checking with a registry.

    The parallel path ships each chunk to a worker via pickling, so
    histories must be picklable — in particular
    :class:`~repro.core.predicates.FunctionPredicate` conditions must be
    module-level functions, not lambdas.  Each worker pays the full
    per-history analysis cost; the speedup is in wall-clock across
    histories, which is why this API exists for corpus sweeps
    (``repro check-many``) rather than single-history calls.
    """
    items = list(histories)
    if processes is None:
        processes = os.cpu_count() or 1
    if processes <= 1 or len(items) <= 1:
        return [
            check(
                h,
                levels=levels,
                extensions=extensions,
                mode=mode,
                auto_complete=auto_complete,
                metrics=metrics,
            )
            for h in items
        ]
    from concurrent.futures import ProcessPoolExecutor

    worker = functools.partial(
        _check_chunk,
        levels=tuple(levels),
        extensions=extensions,
        mode=mode,
        auto_complete=auto_complete,
    )
    if chunksize is None:
        chunksize = max(1, len(items) // (processes * 4))
    elif chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    chunks = [items[i : i + chunksize] for i in range(0, len(items), chunksize)]
    reports: List[CheckReport] = []
    with ProcessPoolExecutor(max_workers=processes) as pool:
        for batch in pool.map(worker, chunks):
            reports.extend(batch)
    return reports


def check_level(
    history: HistoryLike,
    level: Union[IsolationLevel, str],
    *,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    auto_complete: bool = False,
) -> LevelVerdict:
    """Does the history provide one level?  Accepts level names (including
    ANSI aliases such as ``"READ COMMITTED"``)."""
    if isinstance(level, str):
        level = IsolationLevel.from_string(level)
    h = as_history(history, auto_complete=auto_complete)
    return satisfies(h, level, mode=mode)
