"""Operation-interval checking: client-observed strict serializability.

This is the *other* end of the telescope from the DSG machinery.  The
Adya checker certifies isolation levels from the server's history — every
version, every dependency edge.  An operation checker in the porcupine /
Wing & Gong tradition sees only what the *clients* saw: each transaction
reduced to an operation with an invocation tick, a response tick, and the
values it observed and installed.  The question it answers is black-box
strict serializability: **is there a single serial order of the
operations, consistent with real time, under which every read returns the
latest installed write?**

The two checkers must agree on strict-serializable executions — a run the
DSG analysis certifies at PL-3 under a commit order that respects real
time admits a witness order here, and a run this checker passes cannot
contain a proscribed PL-3 phenomenon among its observed values.  They
*diverge*, explainably, on weaker levels: a PL-2 run with a lagging
replica serves stale values that no serial order can produce, so this
checker fails with a stale-read witness while the DSG checker (correctly)
still certifies PL-2 — the paper's point that isolation levels are
properties of histories, not of client-visible value sequences.

The search is the classic one, adapted to transactions:

* **membership partitioning** — operations split into components by
  shared objects (union-find); disjoint components serialize
  independently, so each is searched on its own;
* **windowing** — within a component, a *cut* falls wherever every
  earlier operation responded before every later one invoked; the search
  carries the set of reachable states across cuts instead of one frontier
  over the whole run;
* **memoized DFS** (Wing & Gong) — within a window, extend the serial
  order by any operation whose real-time predecessors are all applied and
  whose reads match the current state; memoize on (applied set, state).

Operations with *unknown* outcome (the client never saw the commit reply)
are optional: the search may apply them anywhere after their invocation
or never — exactly the freedom a crashed server leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["Op", "OpCheckResult", "check_operations"]


@dataclass(frozen=True)
class Op:
    """One transaction as a client-observed operation interval."""

    op_id: int
    session: str
    tid: Optional[int]
    #: Logical tick the transaction's first request was submitted.
    invoked: int
    #: Logical tick the commit reply arrived; ``None`` = outcome unknown
    #: (the client timed out waiting for the commit decision).
    responded: Optional[int]
    #: Values observed, in program order: ``((obj, value), ...)``.
    reads: Tuple[Tuple[str, Any], ...] = ()
    #: Values installed at commit: ``((obj, value), ...)``.
    writes: Tuple[Tuple[str, Any], ...] = ()

    @property
    def objects(self) -> FrozenSet[str]:
        return frozenset(o for o, _v in self.reads) | frozenset(
            o for o, _v in self.writes
        )

    def __repr__(self) -> str:
        resp = self.responded if self.responded is not None else "?"
        return (
            f"<Op {self.op_id} {self.session}/T{self.tid} "
            f"[{self.invoked},{resp}] r={list(self.reads)} "
            f"w={list(self.writes)}>"
        )


@dataclass
class OpCheckResult:
    """Verdict of one :func:`check_operations` run."""

    #: Whether a real-time-respecting serial witness order exists.
    ok: bool
    ops: int
    components: int
    windows: int
    states_explored: int
    #: One entry per component that admitted no witness: the stuck
    #: frontier's stale-read explanations.
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable verdict, witnesses included on failure."""
        if self.ok:
            return (
                f"strict-serializable: {self.ops} operations, "
                f"{self.components} component(s), {self.windows} window(s), "
                f"{self.states_explored} states explored"
            )
        lines = [
            f"NOT strict-serializable: {len(self.failures)} component(s) "
            f"admit no witness order ({self.states_explored} states explored)"
        ]
        for failure in self.failures:
            lines.append(
                f"  component of {failure['component_size']} ops stuck with "
                f"{failure['applied']} applied:"
            )
            for w in failure["witnesses"]:
                lines.append(
                    f"    stale read: {w['session']}/T{w['tid']} read "
                    f"{w['obj']}={w['observed']!r} but every reachable "
                    f"state has {w['obj']}={w['expected']!r}"
                )
        return "\n".join(lines)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Any, Any] = {}

    def find(self, x: Any) -> Any:
        parent = self.parent
        root = parent.setdefault(x, x)
        while root != parent[root]:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: Any, b: Any) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _components(ops: List[Op]) -> List[List[Op]]:
    """Partition by shared objects (ops on disjoint data commute)."""
    uf = _UnionFind()
    for op in ops:
        objs = sorted(op.objects)
        uf.find(("op", op.op_id))
        for obj in objs:
            uf.union(("op", op.op_id), ("obj", obj))
    groups: Dict[Any, List[Op]] = {}
    for op in ops:
        groups.setdefault(uf.find(("op", op.op_id)), []).append(op)
    return [sorted(g, key=lambda o: (o.invoked, o.op_id)) for g in groups.values()]


def _windows(component: List[Op]) -> List[List[Op]]:
    """Cut wherever no interval spans: every earlier op responded strictly
    before every later op invoked (unknown outcomes never close, so they
    stay in their component's final window)."""
    windows: List[List[Op]] = []
    current: List[Op] = []
    frontier = -1  # max response tick seen so far (unknown = +inf)
    for op in component:
        if current and frontier >= 0 and frontier < op.invoked:
            windows.append(current)
            current = []
        current.append(op)
        if op.responded is None:
            frontier = -2  # sticks: no further cuts in this component
        elif frontier != -2:
            frontier = max(frontier, op.responded)
    if current:
        windows.append(current)
    return windows


def _precedes(a: Op, b: Op) -> bool:
    """Real-time order: ``a`` finished before ``b`` started."""
    return a.responded is not None and a.responded < b.invoked


class _Budget:
    __slots__ = ("states", "limit")

    def __init__(self, limit: int) -> None:
        self.states = 0
        self.limit = limit

    def spend(self) -> None:
        self.states += 1
        if self.states > self.limit:
            raise RuntimeError(
                f"operation check exceeded {self.limit} explored states; "
                "raise max_states or reduce the run"
            )


def _linearize_window(
    window: List[Op],
    start_states: List[Tuple[Tuple[str, Any], ...]],
    budget: _Budget,
) -> Tuple[List[Tuple[Tuple[str, Any], ...]], Dict[str, Any]]:
    """All object states reachable by serializing the window's operations
    from any of ``start_states``, plus (when none) the best-progress
    failure witnesses.

    An op is *eligible* once every op real-time-preceding it is applied;
    it is *appliable* when additionally every read matches the state.
    Unknown-outcome ops are optional: they may stay unapplied (a crashed
    server may never have committed them), and by construction of
    :func:`_windows` they only occur in their component's final window.
    """
    ops = window
    preds: List[int] = [0] * len(ops)  # bitmask of real-time predecessors
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and _precedes(a, b):
                preds[j] |= 1 << i
    must_mask = 0
    for i, op in enumerate(ops):
        if op.responded is not None:
            must_mask |= 1 << i
    seen: set = set()
    best_applied = -1
    best_witnesses: List[Dict[str, Any]] = []
    stack: List[Tuple[int, Tuple[Tuple[str, Any], ...]]] = [
        (0, state) for state in start_states
    ]
    results: set = set()
    while stack:
        mask, state = stack.pop()
        key = (mask, state)
        if key in seen:
            continue
        seen.add(key)
        budget.spend()
        complete = (mask & must_mask) == must_mask
        if complete:
            # All known ops applied; optional unknowns may still follow,
            # and each distinct choice is itself a reachable end state.
            results.add(state)
        stuck_witnesses: List[Dict[str, Any]] = []
        lookup = dict(state)
        for i, op in enumerate(ops):
            bit = 1 << i
            if mask & bit or (preds[i] & ~mask):
                continue
            mismatch = None
            for obj, value in op.reads:
                if lookup.get(obj) != value:
                    mismatch = (obj, value, lookup.get(obj))
                    break
            if mismatch is not None:
                if op.responded is not None:
                    obj, observed, expected = mismatch
                    stuck_witnesses.append({
                        "op_id": op.op_id,
                        "session": op.session,
                        "tid": op.tid,
                        "obj": obj,
                        "observed": observed,
                        "expected": expected,
                    })
                continue
            new_state = state
            if op.writes:
                merged = dict(state)
                merged.update(op.writes)
                new_state = tuple(sorted(merged.items()))
            stack.append((mask | bit, new_state))
        applied = bin(mask & must_mask).count("1")
        if not complete and applied > best_applied and stuck_witnesses:
            best_applied = applied
            best_witnesses = stuck_witnesses
    failure = {
        "applied": max(best_applied, 0),
        "witnesses": best_witnesses,
    }
    return list(results), failure


def check_operations(
    ops,
    *,
    initial: Optional[Dict[str, Any]] = None,
    max_states: int = 2_000_000,
) -> OpCheckResult:
    """Check a set of :class:`Op` records for strict serializability.

    ``initial`` maps objects to their pre-run values (objects absent from
    it start as ``None``).  ``max_states`` bounds the search; exceeding it
    raises rather than returning an unverified verdict.
    """
    ops = list(ops)
    # A read-only op whose outcome is unknown is trivially serializable by
    # omission (its reads were never observed by anyone).
    ops = [
        op for op in ops
        if not (op.responded is None and not op.writes)
    ]
    budget = _Budget(max_states)
    components = _components(ops)
    window_count = 0
    failures: List[Dict[str, Any]] = []
    base = dict(initial or {})
    for component in components:
        objs = sorted({o for op in component for o in op.objects})
        state0 = tuple(sorted((o, base.get(o)) for o in objs))
        states: List[Tuple[Tuple[str, Any], ...]] = [state0]
        windows = _windows(component)
        window_count += len(windows)
        for window in windows:
            states, failure = _linearize_window(window, states, budget)
            if not states:
                failure["component_size"] = len(component)
                failures.append(failure)
                break
    return OpCheckResult(
        ok=not failures,
        ops=len(ops),
        components=len(components),
        windows=window_count,
        states_explored=budget.states,
        failures=failures,
    )
