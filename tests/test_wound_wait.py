"""Tests for wound-wait deadlock prevention (LockingScheduler(deadlock=...))."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.engine import Database, LockingScheduler, Program, Simulator, Write
from repro.exceptions import TransactionAborted, WouldBlock


def make_db(**kw):
    db = Database(LockingScheduler("serializable", **kw))
    db.load({"x": 0, "y": 0})
    return db


class TestPolicySelection:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            LockingScheduler("serializable", deadlock="hope")

    def test_default_is_detect(self):
        assert LockingScheduler("serializable").deadlock_policy == "detect"


class TestWounding:
    def test_older_wounds_younger_holder(self):
        db = make_db(deadlock="wound-wait")
        t1 = db.begin()  # older
        t2 = db.begin()  # younger
        t2.write("x", 2)
        t1.write("x", 1)  # wounds T2, acquires immediately
        t1.commit()
        with pytest.raises(TransactionAborted, match="wounded"):
            t2.read("y")  # the victim finds out at its next operation

    def test_younger_waits_for_older(self):
        db = make_db(deadlock="wound-wait")
        t1 = db.begin()
        t2 = db.begin()
        t1.write("x", 1)
        with pytest.raises(WouldBlock) as exc:
            t2.write("x", 2)
        assert exc.value.holders == {t1.tid}

    def test_wounded_writes_are_undone(self):
        db = make_db(deadlock="wound-wait")
        t1 = db.begin()
        t2 = db.begin()
        t2.write("x", 99)
        t1.write("x", 1)  # wound + overwrite
        t1.commit()
        t3 = db.begin()
        assert t3.read("x") == 1

    def test_history_records_the_wound(self):
        db = make_db(deadlock="wound-wait")
        t1 = db.begin()
        t2 = db.begin()
        t2.write("x", 2)
        t1.write("x", 1)
        t1.commit()
        h = db.history(validate=True)
        assert t2.tid in h.aborted


class TestNoDeadlocks:
    def crossing_programs(self):
        return [
            Program("a", [Write("x", 1), Write("y", 1)]),
            Program("b", [Write("y", 2), Write("x", 2)]),
        ]

    def test_crossing_order_never_needs_detection(self):
        """Under wound-wait the simulator's waits-for graph never has a
        cycle: zero detected deadlocks across seeds, yet all programs
        commit (victims restart after being wounded)."""
        for seed in range(20):
            db = make_db(deadlock="wound-wait")
            result = Simulator(db, self.crossing_programs(), seed=seed).run()
            assert result.deadlocks == 0
            assert result.committed_count == 2

    def test_detect_policy_does_deadlock_sometimes(self):
        total = 0
        for seed in range(20):
            db = make_db(deadlock="detect")
            result = Simulator(db, self.crossing_programs(), seed=seed).run()
            total += result.deadlocks
        assert total > 0

    def test_histories_still_pl3(self):
        for seed in range(10):
            db = make_db(deadlock="wound-wait")
            result = Simulator(db, self.crossing_programs(), seed=seed).run()
            assert repro.classify(result.history) is L.PL_3

    def test_contended_increments_stay_correct(self):
        from repro.engine import Increment

        programs = [Program(f"p{i}", [Increment("x")]) for i in range(5)]
        for seed in range(6):
            db = make_db(deadlock="wound-wait")
            result = Simulator(db, programs, seed=seed).run()
            assert result.committed_count == 5
            assert db.begin().read("x") == 5
