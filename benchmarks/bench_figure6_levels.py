"""FIG6 — Figure 6: Summary of portable ANSI isolation levels.

Figure 6 defines the four PL levels by their proscribed phenomena.  This
bench regenerates it as an *admission matrix*: every canonical paper history
and every corpus anomaly, checked at every level (ANSI chain plus the
extension levels), asserting each cell against the paper's claims.  The
timing measures full classification of the combined corpus.
"""

from __future__ import annotations

import repro
from repro.core.canonical import ALL_CANONICAL
from repro.core.levels import IsolationLevel as L
from repro.workloads.anomalies import ALL_ANOMALIES

CORPUS = ALL_CANONICAL + ALL_ANOMALIES
COLUMNS = (L.PL_1, L.PL_2, L.PL_CS, L.PL_2PLUS, L.PL_2_99, L.PL_SI, L.PL_3, L.PL_SS)


def classify_corpus():
    out = []
    for entry in CORPUS:
        report = repro.check(entry.history, extensions=True)
        out.append((entry, report))
    return out


def test_figure6_admission_matrix(benchmark, record_table):
    rows = benchmark(classify_corpus)
    lines = [
        "FIG6 — admission matrix (Y = history provides the level)",
        "",
        f"{'history':26}" + "".join(f"{str(c):>9}" for c in COLUMNS),
    ]
    for entry, report in rows:
        cells = []
        for level in COLUMNS:
            got = report.ok(level)
            expected = entry.provides.get(level)
            if expected is not None:
                assert got == expected, (
                    f"{entry.name} at {level}: got {got}, expected {expected}"
                )
            cells.append(f"{'Y' if got else '-':>9}")
        lines.append(f"{entry.name:26}" + "".join(cells))
    lines += [
        "",
        "Every cell with a paper/corpus claim matches it "
        f"({sum(len(e.provides) for e, _r in rows)} checked claims).",
    ]
    record_table("figure6_levels", "\n".join(lines))


def test_figure6_proscription_table(benchmark, record_table):
    """The defining table itself: level -> proscribed phenomena."""

    def build():
        lines = ["FIG6 — level definitions", ""]
        for level in COLUMNS:
            names = ", ".join(str(p) for p in level.proscribed)
            lines.append(f"  {str(level):8} proscribes {names}")
        return lines

    lines = benchmark(build)
    record_table("figure6_proscriptions", "\n".join(lines))
    assert L.PL_3.proscribed[-1].value == "G2"
