"""Workload generators: random programs for the engine and direct synthetic
histories for checker-scaling benchmarks.

Two layers:

* :func:`random_programs` builds seeded random transaction programs
  (read/write mixes over a keyspace with optional hot spots, predicate
  operations, inserts and deletes) to drive any scheduler through the
  simulator — this is how the FIG1 and SEC3 experiments produce adversarial
  histories.
* :func:`synthetic_history` manufactures a large well-formed history
  directly (no engine), with knobs for dirty reads and stale (multi-version)
  reads, for benchmarking the checker itself at 10^4–10^5 events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.events import Abort, Begin, Commit, Event, PredicateRead
from ..core.events import Read as ReadEvent
from ..core.events import Write as WriteEvent
from ..core.history import History
from ..core.levels import IsolationLevel
from ..core.objects import Version
from ..core.predicates import FieldPredicate, FunctionPredicate, VersionSet
from ..exceptions import WorkloadError
from ..engine.programs import (
    Delete,
    Insert,
    Program,
    Read,
    Select,
    Count,
    UpdateWhere,
    Write,
)

__all__ = ["WorkloadConfig", "random_programs", "synthetic_history"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for :func:`random_programs`.

    ``hot_fraction`` of operations target the first ``hot_keys`` objects,
    modelling contention hot spots (the paper's "high traffic hotspots").
    ``predicate_fraction`` of steps are predicate operations over the
    ``rows`` relation (select / count / predicate update); ``insert_fraction``
    and ``delete_fraction`` add phantoms.  Set the latter three to zero for a
    pure key-value workload.
    """

    n_programs: int = 6
    steps_per_program: int = 4
    n_keys: int = 8
    hot_keys: int = 2
    hot_fraction: float = 0.5
    write_fraction: float = 0.5
    predicate_fraction: float = 0.0
    insert_fraction: float = 0.0
    delete_fraction: float = 0.0
    relation: str = "rows"
    level: Optional[IsolationLevel] = None

    def initial_state(self) -> Dict[str, int]:
        """The matching ``Database.load`` payload: keys ``k0..`` with value
        100, plus ``rows:*`` tuples when predicate operations are enabled."""
        state: Dict[str, int] = {f"k{i}": 100 for i in range(self.n_keys)}
        if self.predicate_fraction or self.insert_fraction or self.delete_fraction:
            for i in range(1, self.n_keys + 1):
                state[f"{self.relation}:{i}"] = {
                    "group": i % 2,
                    "amount": 10 * i,
                }
        return state


def _pick_key(rng: random.Random, cfg: WorkloadConfig) -> str:
    if cfg.hot_keys and rng.random() < cfg.hot_fraction:
        return f"k{rng.randrange(cfg.hot_keys)}"
    return f"k{rng.randrange(cfg.n_keys)}"


def random_programs(
    cfg: WorkloadConfig, seed: int = 0
) -> List[Program]:
    """Seeded random transaction programs per ``cfg``."""
    if not 0 <= cfg.write_fraction <= 1:
        raise WorkloadError("write_fraction must be within [0, 1]")
    rng = random.Random(seed)
    group0 = FieldPredicate(cfg.relation, "group", "==", 0, name="group=0")
    group1 = FieldPredicate(cfg.relation, "group", "==", 1, name="group=1")
    programs: List[Program] = []
    for p in range(cfg.n_programs):
        steps: List[object] = []
        for s in range(cfg.steps_per_program):
            roll = rng.random()
            if roll < cfg.predicate_fraction:
                pred = group0 if rng.random() < 0.5 else group1
                kind = rng.randrange(3)
                if kind == 0:
                    steps.append(Select(pred, into=f"sel{s}"))
                elif kind == 1:
                    steps.append(Count(pred, into=f"cnt{s}"))
                else:
                    steps.append(
                        UpdateWhere(
                            pred,
                            lambda row: {**row, "amount": row["amount"] + 1},
                        )
                    )
                continue
            roll -= cfg.predicate_fraction
            if roll < cfg.insert_fraction:
                steps.append(
                    Insert(
                        cfg.relation,
                        {"group": rng.randrange(2), "amount": rng.randrange(100)},
                        into=f"new{s}",
                    )
                )
                continue
            roll -= cfg.insert_fraction
            if roll < cfg.delete_fraction:
                steps.append(f"__delete_one__{s}")  # resolved below
                continue
            key = _pick_key(rng, cfg)
            if rng.random() < cfg.write_fraction:
                reg = f"v{s}"
                steps.append(Read(key, into=reg, for_update=True))
                steps.append(
                    Write(key, lambda regs, _r=reg: (regs[_r] or 0) + 1)
                )
            else:
                steps.append(Read(key, into=f"v{s}"))
        # Resolve delete placeholders to concrete preloaded rows so each
        # program deletes a distinct object (repeat deletes would violate E7).
        resolved = []
        delete_target = (p % cfg.n_keys) + 1
        for step in steps:
            if isinstance(step, str) and step.startswith("__delete_one__"):
                resolved.append(Delete(f"{cfg.relation}:{delete_target}"))
                delete_target = (delete_target % cfg.n_keys) + 1
            else:
                resolved.append(step)
        programs.append(Program(f"p{p}", resolved, level=cfg.level))
    return programs


# ----------------------------------------------------------------------
# direct synthetic histories (checker scaling)
# ----------------------------------------------------------------------


def _even_value(version: Version, value) -> bool:
    """Module-level predicate condition (not a lambda) so synthetic
    histories stay picklable for ``check_many``'s process pool."""
    return isinstance(value, int) and value % 2 == 0


def synthetic_history(
    *,
    n_txns: int = 100,
    n_objects: int = 20,
    ops_per_txn: int = 5,
    write_fraction: float = 0.4,
    abort_fraction: float = 0.05,
    stale_read_fraction: float = 0.0,
    predicate_fraction: float = 0.0,
    seed: int = 0,
    validate: bool = True,
) -> History:
    """A large well-formed history built directly, no engine.

    Transactions run concurrently in random interleavings; reads observe the
    latest committed version (or, with probability ``stale_read_fraction``,
    a uniformly random earlier committed version — the multi-version
    flavour), writes buffer and install at commit in commit order.  With
    probability ``predicate_fraction`` an operation is a predicate read
    ("value is even") whose version set selects every object at its latest
    (or stale) committed version — exercising predicate read- and
    anti-dependencies at scale.  The result is well-formed by construction;
    ``validate=True`` double-checks.  Histories are picklable (the predicate
    condition is a module-level function), so they can feed ``check_many``.
    """
    rng = random.Random(seed)
    objects = [f"o{i}" for i in range(n_objects)]
    even = FunctionPredicate("even", _even_value)
    events: List[Event] = []
    order: Dict[str, List[Version]] = {obj: [] for obj in objects}
    committed_chain: Dict[str, List[Tuple[Version, int]]] = {
        obj: [] for obj in objects
    }

    # Loader transaction installs every object so reads always find data.
    loader = 0
    for obj in objects:
        v = Version(obj, loader)
        events.append(WriteEvent(loader, v, value=0))
    events.append(Commit(loader))
    for obj in objects:
        order[obj].append(Version(obj, loader))
        committed_chain[obj].append((Version(obj, loader), 0))

    class _T:
        def __init__(self, tid: int):
            self.tid = tid
            self.remaining = ops_per_txn
            self.writes: Dict[str, int] = {}
            self.values: Dict[str, int] = {}

    active: List[_T] = []
    next_tid = 1
    started = 0
    while started < n_txns or active:
        if started < n_txns and (len(active) < 4 or rng.random() < 0.3):
            txn = _T(next_tid)
            next_tid += 1
            started += 1
            active.append(txn)
            events.append(Begin(txn.tid))
            continue
        txn = rng.choice(active)
        if txn.remaining <= 0:
            active.remove(txn)
            if rng.random() < abort_fraction:
                events.append(Abort(txn.tid))
            else:
                events.append(Commit(txn.tid))
                for obj, count in txn.writes.items():
                    v = Version(obj, txn.tid, count)
                    order[obj].append(v)
                    committed_chain[obj].append((v, txn.values[obj]))
            continue
        txn.remaining -= 1
        if predicate_fraction and rng.random() < predicate_fraction:
            # Predicate read over every object; each selects its latest (or
            # stale) committed version.  The extra rng draws only happen when
            # the knob is on, so seeds reproduce pre-knob histories exactly
            # at predicate_fraction=0.
            selected = {}
            for obj in objects:
                chain = committed_chain[obj]
                if stale_read_fraction and rng.random() < stale_read_fraction:
                    version, _value = rng.choice(chain)
                else:
                    version, _value = chain[-1]
                selected[obj] = version
            events.append(PredicateRead(txn.tid, even, VersionSet(selected)))
            continue
        obj = rng.choice(objects)
        if obj in txn.writes or rng.random() < write_fraction:
            count = txn.writes.get(obj, 0) + 1
            txn.writes[obj] = count
            txn.values[obj] = rng.randrange(1000)
            events.append(
                WriteEvent(txn.tid, Version(obj, txn.tid, count), txn.values[obj])
            )
        else:
            chain = committed_chain[obj]
            if stale_read_fraction and rng.random() < stale_read_fraction:
                version, value = rng.choice(chain)
            else:
                version, value = chain[-1]
            events.append(ReadEvent(txn.tid, version, value))
    return History(events, order, validate=validate)
