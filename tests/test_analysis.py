"""Tests for the permissiveness analysis (repro.analysis.permissiveness)."""


from repro.analysis import compare
from repro.core.levels import IsolationLevel as L
from repro.engine import (
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    SnapshotIsolationScheduler,
)
from repro.workloads import bank_programs, initial_balances


def bank(seed):
    return bank_programs(n_accounts=3, n_transfers=3, n_audits=1, seed=seed)


class TestPermissiveness:
    def test_locking_accepted_by_both(self):
        res = compare(
            lambda: LockingScheduler("serializable"),
            bank,
            initial_balances(3),
            n_seeds=6,
        )
        assert res.generalized_rate == 1.0
        assert res.preventative_rate == 1.0
        assert res.gap == 0

    def test_occ_gap(self):
        """The Section 3 headline: every OCC history is PL-3, almost none
        pass P0–P3."""
        res = compare(OptimisticScheduler, bank, initial_balances(3), n_seeds=8)
        assert res.generalized_rate == 1.0
        assert res.preventative_rate < 1.0
        assert res.gap > 0
        assert res.example_gap_history is not None

    def test_mvrc_at_pl2(self):
        res = compare(
            ReadCommittedMVScheduler,
            bank,
            initial_balances(3),
            level=L.PL_2,
            n_seeds=8,
        )
        assert res.generalized_rate == 1.0
        assert res.preventative_rate < 1.0

    def test_si_gap_at_pl2(self):
        res = compare(
            SnapshotIsolationScheduler,
            bank,
            initial_balances(3),
            level=L.PL_2,
            n_seeds=8,
        )
        assert res.generalized_rate == 1.0

    def test_describe(self):
        res = compare(OptimisticScheduler, bank, initial_balances(3), n_seeds=2)
        text = res.describe()
        assert "optimistic" in text and "PL-3" in text
