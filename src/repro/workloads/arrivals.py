"""Open-loop arrival processes and hot-key samplers on the logical clock.

A closed-loop driver (each client starts its next transaction only after
the previous one finished) can never overload a server: completion
throttles offered load, so queues stay flat and the saturation knee is
invisible.  Capacity questions need an **open-loop** source — transactions
*arrive* on their own schedule whether or not the system kept up — which is
what these processes provide.

Every process is a frozen config plus a pure function of ``(horizon,
seed)``: :meth:`ArrivalProcess.schedule` returns the sorted integer ticks
at which transactions arrive, byte-identical for equal arguments.  The
sampler is non-homogeneous Poisson thinning: candidate arrivals are drawn
at the process's :attr:`~ArrivalProcess.max_rate` from seeded exponential
gaps, then kept with probability ``rate_at(t) / max_rate`` — so a single
RNG stream serves constant, bursty and diurnal shapes alike.

* :class:`PoissonArrivals` — constant mean rate;
* :class:`BurstyArrivals` — a base rate with periodic seeded bursts (the
  "flash crowd" shape: most of the time quiet, periodically several times
  the base rate);
* :class:`DiurnalArrivals` — a sinusoidal day curve between a trough and a
  peak rate (millions of sessions don't arrive uniformly);
* :class:`ZipfianKeys` — a seeded hot-key sampler (Zipf/zeta over a key
  space) so contention concentrates the way production key popularity
  does.

>>> PoissonArrivals(rate=0.5).schedule(horizon=20, seed=1)
[0, 4, 6, 7, 8, 10, 12, 15, 15, 15, 19]
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ZipfianKeys",
]


@dataclass(frozen=True, kw_only=True)
class ArrivalProcess:
    """Base class: a (possibly time-varying) arrival-rate curve.

    Subclasses define :meth:`rate_at` (arrivals per tick at tick ``t``)
    and :attr:`max_rate` (an upper bound on it, the thinning envelope).
    """

    def rate_at(self, t: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def max_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def schedule(self, *, horizon: int, seed: int) -> List[int]:
        """Arrival ticks in ``[0, horizon)``, sorted, seeded, deterministic.

        Thinning: exponential gaps at :attr:`max_rate`, each candidate
        kept with probability ``rate_at(t) / max_rate``.  Ticks are the
        floor of the continuous arrival times; several arrivals may share
        a tick (that is real burstiness, not an artifact).
        """
        if horizon <= 0:
            return []
        envelope = self.max_rate
        if envelope <= 0:
            return []
        rng = random.Random(seed)
        ticks: List[int] = []
        t = 0.0
        while True:
            t += rng.expovariate(envelope)
            if t >= horizon:
                return ticks
            tick = int(t)
            rate = self.rate_at(tick)
            if rate >= envelope or rng.random() < rate / envelope:
                ticks.append(tick)

    def mean_rate(self, horizon: int) -> float:
        """The average of :meth:`rate_at` over ``[0, horizon)``."""
        if horizon <= 0:
            return 0.0
        return sum(self.rate_at(t) for t in range(horizon)) / horizon


@dataclass(frozen=True, kw_only=True)
class PoissonArrivals(ArrivalProcess):
    """Constant-rate Poisson arrivals: ``rate`` expected arrivals per tick."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")

    def rate_at(self, t: int) -> float:
        return self.rate

    @property
    def max_rate(self) -> float:
        return self.rate


@dataclass(frozen=True, kw_only=True)
class BurstyArrivals(ArrivalProcess):
    """A base Poisson rate with periodic bursts.

    Every ``period`` ticks, the first ``burst_length`` ticks run at
    ``rate * burst_factor``; the rest of the period runs at ``rate``.
    """

    rate: float
    burst_factor: float = 5.0
    period: int = 200
    burst_length: int = 20

    def __post_init__(self) -> None:
        if self.rate < 0 or self.burst_factor < 1.0:
            raise ValueError("need rate >= 0 and burst_factor >= 1")
        if self.period <= 0 or not (0 < self.burst_length <= self.period):
            raise ValueError("need 0 < burst_length <= period")

    def rate_at(self, t: int) -> float:
        in_burst = (t % self.period) < self.burst_length
        return self.rate * self.burst_factor if in_burst else self.rate

    @property
    def max_rate(self) -> float:
        return self.rate * self.burst_factor


@dataclass(frozen=True, kw_only=True)
class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day curve between ``trough`` and ``peak`` arrivals per
    tick, with period ``day`` ticks (peak at ``day/4``, trough at
    ``3*day/4``)."""

    trough: float
    peak: float
    day: int = 1000

    def __post_init__(self) -> None:
        if self.trough < 0 or self.peak < self.trough:
            raise ValueError("need 0 <= trough <= peak")
        if self.day <= 0:
            raise ValueError("day must be > 0")

    def rate_at(self, t: int) -> float:
        mid = (self.peak + self.trough) / 2.0
        amp = (self.peak - self.trough) / 2.0
        return mid + amp * math.sin(2.0 * math.pi * (t % self.day) / self.day)

    @property
    def max_rate(self) -> float:
        return self.peak


class ZipfianKeys:
    """A seeded Zipf-skewed sampler over ``keys`` object names.

    Key ``i`` (0-based rank) is drawn with probability proportional to
    ``1 / (i + 1) ** theta``; ``theta=0`` is uniform, ``theta≈1`` is the
    classic web/YCSB skew where a handful of keys absorb most traffic.
    The CDF is precomputed, so a draw is one RNG float plus a bisect.
    """

    def __init__(self, keys: int, *, theta: float = 0.99) -> None:
        if keys <= 0:
            raise ValueError("keys must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.keys = keys
        self.theta = theta
        weights = [1.0 / (i + 1) ** theta for i in range(keys)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """One key index drawn from the caller's RNG stream."""
        return bisect_left(self._cdf, rng.random())

    def sample_distinct(self, rng: random.Random, n: int) -> List[int]:
        """``n`` distinct key indices (hot keys first in expectation)."""
        n = min(n, self.keys)
        picked: List[int] = []
        seen = set()
        while len(picked) < n:
            k = self.sample(rng)
            if k not in seen:
                seen.add(k)
                picked.append(k)
        return picked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfianKeys(keys={self.keys}, theta={self.theta})"
