"""History recording for the engine.

Every scheduler narrates its execution through a :class:`HistoryRecorder`:
each operation appends the corresponding Adya event, and each commit appends
the transaction's final versions to the per-object install order.  At the
end, :meth:`HistoryRecorder.history` materialises a validated
:class:`~repro.core.history.History` — the artifact the checker consumes.

This is the bridge that makes the paper's thesis testable: locking, OCC and
MVCC executions all reduce to the same history formalism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from ..core.history import History
from ..core.objects import Version
from ..core.predicates import Predicate, VersionSet

__all__ = ["HistoryRecorder"]


class HistoryRecorder:
    """Accumulates events and the version (install) order of an execution.

    An optional *monitor* — any object with the
    :meth:`~repro.core.incremental.IncrementalAnalysis.add` protocol,
    typically an :class:`~repro.core.incremental.IncrementalAnalysis` — can
    observe the execution online: every recorded event is forwarded as it
    happens, commits with their install positions, so phenomena can be
    detected *while the workload runs* rather than after materialising the
    full history.
    """

    def __init__(self, monitor: Optional[object] = None) -> None:
        self.events: List[Event] = []
        self._install: Dict[str, List[tuple]] = {}
        self._install_counter = 0
        #: Offset added to every install key.  Normally 0; a sharded cluster
        #: bumps the destination recorder's base when an object migrates in,
        #: so the object's future install keys sort after every key its old
        #: shard ever issued (per-object version order stays monotone even
        #: though keys come from different recorders' index spaces).
        self.position_base = 0
        self.monitor = monitor
        #: Replication log: one ``(event, finals, keys)`` entry per event
        #: (``finals``/``keys`` are None except for commits, where they
        #: carry the installed versions and their base-adjusted install
        #: keys).  None until :meth:`enable_replication` — unreplicated
        #: recorders pay nothing.
        self.repl_log: Optional[List[tuple]] = None
        # Per-event-type bound counters, populated by instrument(); None
        # keeps every emission at exactly one extra `is not None` check.
        self._ev_counters: Optional[Dict[str, object]] = None

    def instrument(
        self, *, metrics: Optional[object] = None, scheduler: str = ""
    ) -> None:
        """Count every recorded event into ``metrics`` as
        ``history_events_total{type=...,scheduler=...}`` (begins, commits
        and aborts included — the engine's begin/commit/abort totals).
        The label set is bound once here so the per-event cost when
        enabled is a single dict add."""
        if metrics is None:
            self._ev_counters = None
            return
        counter = metrics.counter(
            "history_events_total", "history events recorded by type"
        )
        self._ev_counters = {
            kind: counter.labels(type=kind, scheduler=scheduler)
            for kind in ("begin", "read", "write", "predicate_read", "commit", "abort")
        }

    def attach_monitor(self, monitor: object) -> None:
        """Attach an online monitor mid-execution, replaying everything
        recorded so far (commits replay with their original install
        positions, so the monitor's version order matches ours)."""
        keyed: Dict[int, Dict[str, tuple]] = {}
        for obj, entries in self._install.items():
            for key, version in entries:
                keyed.setdefault(version.tid, {})[obj] = (key, version)
        for ev in self.events:
            if isinstance(ev, Commit):
                slot = keyed.get(ev.tid, {})
                monitor.add(
                    ev,
                    finals={obj: v for obj, (_k, v) in slot.items()},
                    positions={obj: k for obj, (k, _v) in slot.items()},
                )
            else:
                monitor.add(ev)
        self.monitor = monitor

    # ------------------------------------------------------------------
    # replication log
    # ------------------------------------------------------------------

    def enable_replication(self) -> None:
        """Start keeping a shippable replication log, backfilled for
        everything already recorded (commits regain their install keys
        from the install order, the same reconstruction
        :meth:`attach_monitor` replays with)."""
        if self.repl_log is not None:
            return
        keyed: Dict[int, Dict[str, tuple]] = {}
        for obj, entries in self._install.items():
            for key, version in entries:
                keyed.setdefault(version.tid, {})[obj] = (key, version)
        log: List[tuple] = []
        for ev in self.events:
            if isinstance(ev, Commit):
                slot = keyed.get(ev.tid, {})
                log.append((
                    ev,
                    {obj: v for obj, (_k, v) in slot.items()},
                    {obj: k for obj, (k, _v) in slot.items()},
                ))
            else:
                log.append((ev, None, None))
        self.repl_log = log

    def apply_entry(self, entry: tuple) -> None:
        """Append one shipped replication-log entry: the event verbatim,
        and for commits the installed versions under the *primary's*
        install keys, so a backup's install order is a prefix-exact copy
        of the primary's (a promoted backup keeps issuing keys that sort
        consistently after :meth:`rebase`)."""
        ev, finals, keys = entry
        self.events.append(ev)
        if finals is not None:
            for obj in sorted(finals):
                self._install.setdefault(obj, []).append(
                    (keys[obj], finals[obj])
                )
        if self.repl_log is not None:
            self.repl_log.append(entry)
        if self.monitor is not None:
            if finals is not None:
                self.monitor.add(ev, finals=dict(finals), positions=dict(keys))
            else:
                self.monitor.add(ev)

    def rebase(self, counter: int, base: int) -> None:
        """Rebase the install-key space onto another recorder's (used at
        backup promotion: the promoted log must hand out future keys that
        sort after every key the retired primary ever issued)."""
        self._install_counter = max(self._install_counter, counter)
        self.position_base = max(self.position_base, base)

    # ------------------------------------------------------------------
    # event emission
    # ------------------------------------------------------------------

    def begin(self, tid: int, level: Optional[object] = None) -> None:
        self.events.append(Begin(tid, level))
        if self._ev_counters is not None:
            self._ev_counters["begin"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], None, None))
        if self.monitor is not None:
            self.monitor.add(self.events[-1])

    def read(self, tid: int, version: Version, value: Any = None, *, cursor: bool = False) -> None:
        self.events.append(Read(tid, version, value=value, cursor=cursor))
        if self._ev_counters is not None:
            self._ev_counters["read"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], None, None))
        if self.monitor is not None:
            self.monitor.add(self.events[-1])

    def write(self, tid: int, version: Version, value: Any = None, *, dead: bool = False) -> None:
        self.events.append(Write(tid, version, value=value, dead=dead))
        if self._ev_counters is not None:
            self._ev_counters["write"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], None, None))
        if self.monitor is not None:
            self.monitor.add(self.events[-1])

    def predicate_read(
        self, tid: int, predicate: Predicate, vset: VersionSet
    ) -> None:
        self.events.append(PredicateRead(tid, predicate, vset))
        if self._ev_counters is not None:
            self._ev_counters["predicate_read"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], None, None))
        if self.monitor is not None:
            self.monitor.add(self.events[-1])

    def commit(
        self,
        tid: int,
        finals: Dict[str, Version],
        positions: Optional[Dict[str, int]] = None,
    ) -> None:
        """Emit the commit event and install the transaction's final
        versions.

        By default versions are installed in commit order (multi-version
        schedulers choose that order).  ``positions`` overrides the sort key
        per object — the single-version locking scheduler passes the write
        *event* index so that in-place overwrites order versions by when the
        write actually happened (which matters at Degree 0, where short
        write locks let writes of concurrent transactions interleave).
        """
        keys: Dict[str, int] = {}
        for obj in sorted(finals):
            self._install_counter += 1
            key = self._install_counter if positions is None else positions[obj]
            key += self.position_base
            keys[obj] = key
            self._install.setdefault(obj, []).append((key, finals[obj]))
        self.events.append(Commit(tid))
        if self._ev_counters is not None:
            self._ev_counters["commit"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], dict(finals), dict(keys)))
        if self.monitor is not None:
            self.monitor.add(self.events[-1], finals=dict(finals), positions=keys)

    @property
    def install_order(self) -> Dict[str, List[Version]]:
        """The version order installed so far (sorted by install key)."""
        return {
            obj: [v for _k, v in sorted(entries, key=lambda e: e[0])]
            for obj, entries in self._install.items()
        }

    def abort(self, tid: int) -> None:
        self.events.append(Abort(tid))
        if self._ev_counters is not None:
            self._ev_counters["abort"].inc()
        if self.repl_log is not None:
            self.repl_log.append((self.events[-1], None, None))
        if self.monitor is not None:
            self.monitor.add(self.events[-1])

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def history(
        self,
        *,
        default_level: Optional[object] = None,
        validate: bool = True,
    ) -> History:
        """The execution as a validated history.  Unfinished transactions
        (programs cut off by a step budget) are completed with aborts, the
        paper's completion rule."""
        return History(
            self.events,
            self.install_order,
            default_level=default_level,
            auto_complete=True,
            validate=validate,
        )

    def __len__(self) -> int:
        return len(self.events)
