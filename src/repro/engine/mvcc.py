"""Multi-version schedulers: Snapshot Isolation and multi-version
read-committed.

These are the Oracle-style implementations the paper's introduction names as
the reason the preventative definitions are too strong (Oracle "provides ...
Snapshot Isolation ... using multi-version optimistic implementations").

* :class:`SnapshotIsolationScheduler` — every transaction reads from the
  committed snapshot taken at its begin; writes are buffered and installed
  at commit under the *first-committer-wins* rule: if any object in the
  write set was installed by a transaction that committed after this
  transaction's snapshot, the committer aborts with
  :class:`~repro.exceptions.WriteConflict`.  Emitted committed histories
  provide PL-SI (no G1, no G-SI) — and genuinely exhibit write skew, which
  PL-3 rejects, demonstrating the SI ≠ serializability gap.

* :class:`ReadCommittedMVScheduler` — statement-level snapshots: each read
  observes the latest committed version at that moment; writes are buffered
  and installed at commit with no validation (last-committer-wins).  Emitted
  histories provide PL-2 and exhibit lost updates and fuzzy reads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.objects import Version
from ..core.predicates import Predicate, VersionSet
from ..exceptions import WriteConflict
from .scheduler import PredicateResult, Scheduler
from .storage import StoredVersion
from .transaction import BufferedWrite, Transaction, TxnState

__all__ = ["SnapshotIsolationScheduler", "ReadCommittedMVScheduler"]


class _MultiVersionBase(Scheduler):
    """Shared read/write/predicate machinery; subclasses pick the visible
    version and the commit-time validation."""

    def _visible(self, txn: Transaction, obj: str) -> Optional[StoredVersion]:
        raise NotImplementedError

    def read(
        self,
        txn: Transaction,
        obj: str,
        *,
        cursor: bool = False,
        for_update: bool = False,
    ) -> Any:
        txn.require_active()
        own = txn.buffer.get(obj)
        if own is not None:
            if own.dead:
                return None
            self.recorder.read(txn.tid, own.version, own.value, cursor=cursor)
            txn.read_set.add(obj)
            return own.value
        stored = self._visible(txn, obj)
        if stored is None or stored.dead:
            return None
        self.recorder.read(txn.tid, stored.version, stored.value, cursor=cursor)
        txn.read_set.add(obj)
        return stored.value

    def write(
        self, txn: Transaction, obj: str, value: Any, *, dead: bool = False
    ) -> None:
        txn.require_active()
        self.store.register(obj)
        version = txn.next_version(obj)
        self.recorder.write(txn.tid, version, None if dead else value, dead=dead)
        txn.buffer[obj] = BufferedWrite(
            version, None if dead else value, dead, len(self.recorder.events) - 1
        )
        txn.write_set.add(obj)

    def predicate_read(
        self, txn: Transaction, predicate: Predicate
    ) -> PredicateResult:
        txn.require_active()
        selected: Dict[str, Version] = {}
        matched: List[Tuple[str, Any]] = []
        for relation in sorted(predicate.relations):
            for obj in self.store.objects_in(relation):
                own = txn.buffer.get(obj)
                if own is not None:
                    selected[obj] = own.version
                    if not own.dead and predicate.matches(own.version, own.value):
                        matched.append((obj, own.value))
                    continue
                stored = self._visible(txn, obj)
                if stored is None:
                    continue  # implicitly unborn in this view
                selected[obj] = stored.version
                if not stored.dead and predicate.matches(
                    stored.version, stored.value
                ):
                    matched.append((obj, stored.value))
        self.recorder.predicate_read(txn.tid, predicate, VersionSet(selected))
        txn.predicates.append(predicate)
        return PredicateResult(tuple(sorted(matched)))

    def abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            return
        self.recorder.abort(txn.tid)
        txn.state = TxnState.ABORTED


class SnapshotIsolationScheduler(_MultiVersionBase):
    """Begin-time snapshots with first-committer-wins writes (PL-SI)."""

    name = "snapshot-isolation"

    def on_begin(self, txn: Transaction) -> None:
        txn.snapshot_seq = self.store.commit_seq

    def _visible(self, txn: Transaction, obj: str) -> Optional[StoredVersion]:
        return self.store.at_snapshot(obj, txn.snapshot_seq)

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        for obj in sorted(txn.write_set):
            if self.store.changed_since(obj, txn.snapshot_seq):
                winner = self.store.latest(obj)
                assert winner is not None
                self._abort_metric("first-committer-wins")
                if self.tracer is not None:
                    self.tracer.event(
                        "first-committer-wins",
                        tid=txn.tid,
                        obj=obj,
                        winner=winner.version.tid,
                        scheduler=self.name,
                    )
                self.abort(txn)
                raise WriteConflict(txn.tid, obj, winner.version.tid)
        self.store.install(txn.final_values())
        self.recorder.commit(txn.tid, txn.finals())
        txn.state = TxnState.COMMITTED


class ReadCommittedMVScheduler(_MultiVersionBase):
    """Statement-level committed reads, unvalidated commits (PL-2)."""

    name = "mv-read-committed"

    def _visible(self, txn: Transaction, obj: str) -> Optional[StoredVersion]:
        return self.store.latest(obj)

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        self.store.install(txn.final_values())
        self.recorder.commit(txn.tid, txn.finals())
        txn.state = TxnState.COMMITTED
