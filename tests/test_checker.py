"""Tests for the user-facing checker API (repro.checker)."""

import pytest

import repro
from repro.checker import as_history, check, check_level
from repro.core import parse_history
from repro.core.levels import IsolationLevel as L
from repro.core.phenomena import Phenomenon as G


class TestCheck:
    def test_accepts_text(self):
        rep = check("w1(x1) c1 r2(x1) c2")
        assert rep.serializable

    def test_accepts_history(self):
        rep = check(parse_history("w1(x1) c1"))
        assert rep.strongest_level is L.PL_3

    def test_strongest_level_none_below_pl1(self):
        rep = check(
            "w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]"
        )
        assert rep.strongest_level is None

    def test_exhibited_lists_phenomena(self):
        rep = check("w1(x1) r2(x1) c2 a1")
        assert G.G1A in rep.exhibited()

    def test_extensions_flag_adds_levels(self):
        rep = check("w1(x1) c1", extensions=True)
        assert L.PL_SI in rep.verdicts
        assert L.PL_2PLUS in rep.verdicts
        assert L.PL_CS in rep.verdicts

    def test_auto_complete_flag(self):
        rep = check("w1(x1) c1 w2(x2)", auto_complete=True)
        assert 2 in rep.history.aborted

    def test_custom_levels_only(self):
        rep = check("w1(x1) c1", levels=(L.PL_2,))
        assert list(rep.verdicts) == [L.PL_2]
        with pytest.raises(KeyError):
            rep.serializable


class TestExplain:
    def test_mentions_each_level(self):
        text = check("w1(x1) c1 r2(x1) c2").explain()
        for name in ("PL-1", "PL-2", "PL-2.99", "PL-3"):
            assert name in text

    def test_serialization_order_shown_when_serializable(self):
        text = check("w1(x1) c1 r2(x1) c2").explain()
        assert "serialization order: T1, T2" in text

    def test_violations_explained_with_witnesses(self):
        text = check("w1(x1) r2(x1) c2 a1").explain()
        assert "aborted" in text
        assert "G1a" in text

    def test_str_is_explain(self):
        rep = check("w1(x1) c1")
        assert str(rep) == rep.explain()


class TestCheckLevel:
    def test_level_object(self):
        assert check_level("w1(x1) c1", L.PL_3).ok

    def test_level_name_string(self):
        assert check_level("w1(x1) c1", "serializable").ok
        assert check_level("w1(x1) c1", "READ COMMITTED").ok

    def test_violation_reported(self):
        verdict = check_level("w1(x1) r2(x1) c2 a1", "PL-2")
        assert not verdict.ok


class TestAsHistory:
    def test_passthrough(self):
        h = parse_history("w1(x1) c1")
        assert as_history(h) is h

    def test_parse(self):
        assert len(as_history("w1(x1) c1")) == 2


class TestTopLevelApi:
    def test_module_exports(self):
        assert repro.check is check
        assert callable(repro.classify)
        assert callable(repro.parse_history)

    def test_quickstart_docstring_example(self):
        rep = repro.check(
            "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 "
            "r1(y0, 5) w1(y1, 9) c1"
        )
        assert rep.strongest_level is L.PL_2


class TestReportExtras:
    def test_timeline_method(self):
        rep = check("w1(x1) c1 r2(x1) c2")
        grid = rep.timeline()
        assert grid.splitlines()[0].startswith("T1 |")
