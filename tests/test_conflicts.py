"""Tests for direct-conflict extraction, one class per Figure 2 row
(repro.core.conflicts)."""


from repro.core import parse_history
from repro.core.conflicts import (
    DepKind,
    PredicateDepMode,
    all_dependencies,
    anti_dependencies,
    read_dependencies,
    write_dependencies,
)


def edges(found):
    return {(e.src, e.dst, e.kind, e.via_predicate) for e in found}


class TestWriteDependencies:
    def test_consecutive_installs(self):
        h = parse_history("w1(x1) c1 w2(x2) c2")
        assert edges(write_dependencies(h)) == {(1, 2, DepKind.WW, False)}

    def test_version_order_not_commit_order(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x2 << x1]")
        assert edges(write_dependencies(h)) == {(2, 1, DepKind.WW, False)}

    def test_unborn_predecessor_yields_no_edge(self):
        h = parse_history("w1(x1) c1")
        assert write_dependencies(h) == []

    def test_setup_version_predecessor(self):
        h = parse_history("r2(x0) w2(x2) c2")
        assert edges(write_dependencies(h)) == {(0, 2, DepKind.WW, False)}

    def test_aborted_writes_produce_no_edges(self):
        h = parse_history("w1(x1) a1 w2(x2) c2")
        assert write_dependencies(h) == []

    def test_dead_version_still_orders(self):
        h = parse_history("w1(x1) c1 w2(x2, dead) c2")
        assert edges(write_dependencies(h)) == {(1, 2, DepKind.WW, False)}


class TestItemReadDependencies:
    def test_simple_wr(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        assert edges(read_dependencies(h)) == {(1, 2, DepKind.WR, False)}

    def test_own_reads_excluded(self):
        h = parse_history("w1(x1) r1(x1) c1")
        assert read_dependencies(h) == []

    def test_uncommitted_reader_excluded(self):
        h = parse_history("w1(x1) c1 r2(x1) a2")
        assert read_dependencies(h) == []

    def test_aborted_writer_yields_no_edge(self):
        # (G1a condemns the read; the DSG has no node for aborted T1.)
        h = parse_history("w1(x1) r2(x1) c2 a1")
        assert read_dependencies(h) == []

    def test_read_of_uncommitted_then_committed_writer(self):
        h = parse_history("w1(x1) r2(x1) c1 c2")
        assert edges(read_dependencies(h)) == {(1, 2, DepKind.WR, False)}

    def test_duplicate_reads_one_edge(self):
        h = parse_history("w1(x1) c1 r2(x1) r2(x1) c2")
        assert len(read_dependencies(h)) == 1


class TestPredicateReadDependencies:
    H = (
        "w0(x0) c0 w1(x1) c1 w2(x2) r3(Dept=Sales: x2, y0) w2(y2) c2 c3 "
        "[x0 << x1 << x2, y0 << y2] [Dept=Sales matches: x0]"
    )

    def test_latest_mode_uses_last_change(self):
        # The paper's H_pred-read: the edge comes from T1 (moved x out of
        # Sales), not T2 (irrelevant phone-number update).
        h = parse_history(self.H)
        preds = [e for e in read_dependencies(h) if e.via_predicate]
        assert edges(preds) == {(1, 3, DepKind.WR, True)}

    def test_all_mode_adds_every_changer(self):
        h = parse_history(self.H)
        preds = [
            e
            for e in read_dependencies(h, PredicateDepMode.ALL)
            if e.via_predicate
        ]
        assert edges(preds) == {
            (0, 3, DepKind.WR, True),  # x0 put x into Sales
            (1, 3, DepKind.WR, True),  # x1 took it out
        }

    def test_unborn_selection_yields_no_read_edge(self):
        h = parse_history("w1(x1) r2(P: yinit) c1 c2")
        assert [e for e in read_dependencies(h) if e.via_predicate] == []

    def test_own_changes_excluded(self):
        h = parse_history("w1(x1) r1(P: x1*) c1")
        assert [e for e in read_dependencies(h) if e.via_predicate] == []


class TestItemAntiDependencies:
    def test_simple_rw(self):
        h = parse_history("w1(x1) c1 r2(x1) c2 w3(x3) c3")
        assert edges(anti_dependencies(h)) == {(2, 3, DepKind.RW, False)}

    def test_overwrite_of_setup_read(self):
        h = parse_history("r1(x0) c1 w2(x2) c2")
        assert edges(anti_dependencies(h)) == {(1, 2, DepKind.RW, False)}

    def test_own_overwrite_excluded(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2")
        assert anti_dependencies(h) == []

    def test_only_next_version_counts(self):
        # T2 reads x1; x's order is x1 << x3 << x4 — only T3 anti-depends.
        h = parse_history("w1(x1) c1 r2(x1) c2 w3(x3) c3 w4(x4) c4")
        assert edges(anti_dependencies(h)) == {(2, 3, DepKind.RW, False)}

    def test_cursor_flag_propagates(self):
        h = parse_history("w1(x1) c1 rc2(x1) c2 w3(x3) c3")
        (edge,) = anti_dependencies(h)
        assert edge.cursor

    def test_uncommitted_reader_excluded(self):
        h = parse_history("w1(x1) c1 r2(x1) a2 w3(x3) c3")
        assert anti_dependencies(h) == []


class TestPredicateAntiDependencies:
    def test_insert_phantom(self):
        # T1's predicate read selected y's unborn version; T2's insert of a
        # matching y overwrites the read.
        h = parse_history("r1(P: x0*) c1 w2(y2) c2 [P matches: y2]")
        preds = [e for e in anti_dependencies(h) if e.via_predicate]
        assert edges(preds) == {(1, 2, DepKind.RW, True)}

    def test_non_matching_insert_is_not_a_phantom(self):
        h = parse_history("r1(P: x0*) c1 w2(y2) c2")
        assert [e for e in anti_dependencies(h) if e.via_predicate] == []

    def test_delete_phantom(self):
        # Deleting a matching tuple changes the matches.
        h = parse_history("r1(P: x0*) c1 w2(x2, dead) c2")
        preds = [e for e in anti_dependencies(h) if e.via_predicate]
        assert edges(preds) == {(1, 2, DepKind.RW, True)}

    def test_every_later_changer_counts(self):
        # Unlike item-anti (next version only), predicate-anti covers any
        # later match-changing version (Definition 4).
        h = parse_history(
            "r1(P: x0*) c1 w2(x2) c2 w3(x3) c3 "
            "[x0 << x2 << x3] [P matches: x3]"
        )
        preds = [e for e in anti_dependencies(h) if e.via_predicate]
        assert edges(preds) == {
            (1, 2, DepKind.RW, True),  # x2 removed the match
            (1, 3, DepKind.RW, True),  # x3 restored it
        }

    def test_irrelevant_update_is_not_a_phantom(self):
        # x stays matching across x0 -> x2: no predicate-anti edge.
        h = parse_history("r1(P: x0*) c1 w2(x2) c2 [P matches: x2]")
        assert [e for e in anti_dependencies(h) if e.via_predicate] == []


class TestAllDependencies:
    def test_union_of_three_kinds(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(y2) c2 w3(x3) c3")
        kinds = {e.kind for e in all_dependencies(h)}
        assert kinds == {DepKind.WW, DepKind.WR, DepKind.RW}

    def test_edge_descriptions_mention_parties(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        (edge,) = read_dependencies(h)
        text = edge.describe()
        assert "T2" in text and "T1" in text and "read" in text
