"""Anomaly flight recorder: per-shard rings of recent trace records and
anomaly **dossiers** dumped when something latches.

A :class:`FlightRecorder` chains onto a :class:`~repro.observability.
trace.Tracer`'s sink and keeps a bounded ring buffer of the most recent
span/event records per shard lane (records carrying a ``shard`` attribute
— ``repl.*`` spans, 2PC participant traffic — land in their shard's ring;
everything else in the shared ``"cluster"`` ring).  When an anomaly
latches mid-run — the global certifier proves a phenomenon, or a
windowed-telemetry SLO trips — the recorder captures a **dossier**: the
trigger's witness (DSG cycle + provenance events for phenomena, the SLO
verdict for objectives), the ring contents at latch time, and the
replica/2PC state snapshot.  The dossier's **trace slice** — every record
belonging to a witness-cycle transaction, its 2PC ``2pc.prepare``/
``2pc.decide`` spans and the ``repl.ship``/``repl.apply`` batches that
carried its writes included — is assembled at read time
(:meth:`FlightRecorder.dossiers`), once every span has closed.

Post-run triggers work too: :meth:`FlightRecorder.opcheck_dossier` turns a
failed operation-interval check (a stale-read witness) into the same
dossier shape.

Everything here is observational.  The recorder consumes records the
tracer emits anyway, draws from no RNG, and sends no messages — attaching
it changes no byte of any history, journal or certification verdict, and
identical seeds produce byte-identical dossiers
(:func:`dossier_json` serialises with sorted keys).

Sizing: each lane keeps ``capacity`` records (default 256); a record is a
small dict, so a 4-shard cluster with the default capacity retains at
most ~1.2k records regardless of run length.  ``max_dossiers`` bounds
capture work under pathological latch storms.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "FlightRecorder",
    "trace_slice",
    "dossier_json",
    "render_dossier",
]


def trace_slice(
    records: Iterable[Dict[str, Any]], tids: Sequence[int]
) -> List[Dict[str, Any]]:
    """The sub-trace covering a set of witness transactions.

    Selects every record that names a witness tid directly (``tid``
    attribute: client txn/op spans, 2PC spans, certification events), any
    replication batch whose ``tids`` attribute intersects the witness set
    (``repl.ship``/``repl.apply``), and every record sharing a ``trace_id``
    with a selected one (the transaction's retries, ``net.msg`` legs and
    ``server.handle`` spans ride the same trace id).  Descendant records
    of selected spans are folded in to a fixpoint, so the slice is
    self-contained for :func:`~repro.observability.trace.span_tree`.
    Records come back in emission (``seq``) order.
    """
    tidset = set(tids)
    records = list(records)
    if not tidset:
        return []

    def hits(attrs: Dict[str, Any]) -> bool:
        if attrs.get("tid") in tidset:
            return True
        batch = attrs.get("tids")
        return isinstance(batch, list) and bool(tidset.intersection(batch))

    trace_ids = {
        (r.get("attrs") or {}).get("trace_id")
        for r in records
        if hits(r.get("attrs") or {})
    }
    trace_ids.discard(None)
    selected: Dict[int, Dict[str, Any]] = {}
    span_ids: set = set()
    for record in records:
        attrs = record.get("attrs") or {}
        if hits(attrs) or attrs.get("trace_id") in trace_ids:
            selected[record["seq"]] = record
            span_ids.add(record["id"])
    changed = True
    while changed:
        changed = False
        for record in records:
            if record["seq"] in selected:
                continue
            parent = (
                record.get("parent")
                if record["kind"] == "span"
                else record.get("span")
            )
            if parent in span_ids:
                selected[record["seq"]] = record
                span_ids.add(record["id"])
                changed = True
    return [selected[seq] for seq in sorted(selected)]


def dossier_json(dossier: Dict[str, Any]) -> str:
    """One dossier as canonical JSON (sorted keys — the byte-identical
    artifact pinned by the determinism tests)."""
    return json.dumps(dossier, sort_keys=True, indent=2)


def render_dossier(dossier: Dict[str, Any]) -> str:
    """A human-readable summary of one dossier (the ``repro dossier``
    CLI's default output)."""
    lines = [
        f"anomaly dossier: {dossier.get('kind')}"
        + (f" @ tick {dossier['tick']}" if dossier.get("tick") is not None else ""),
    ]
    if dossier.get("seed") is not None:
        lines.append(f"  seed            : {dossier['seed']}")
    trigger = dossier.get("trigger") or {}
    if dossier.get("kind") == "phenomenon":
        lines.append(f"  phenomenon      : {trigger.get('phenomenon')}")
        for edge in trigger.get("cycle") or ():
            lines.append(f"    {edge.get('describe')}")
        for witness in trigger.get("witnesses") or ():
            lines.append(
                f"    {witness.get('phenomenon')}: {witness.get('description')}"
            )
    elif dossier.get("kind") == "slo":
        lines.append(
            f"  objective       : {trigger.get('objective')} "
            f"(worst {trigger.get('worst')}, violated at tick "
            f"{trigger.get('violated_at')})"
        )
    elif dossier.get("kind") == "opcheck":
        for witness in trigger.get("witnesses") or ():
            lines.append(
                f"    stale read: {witness.get('session')}/T{witness.get('tid')}"
                f" read {witness.get('obj')}={witness.get('observed')!r}"
                f" expected {witness.get('expected')!r}"
            )
    lines.append(
        "  witness tids    : "
        + (", ".join(f"T{t}" for t in dossier.get("witness_tids") or ())
           or "(none)")
    )
    slice_records = dossier.get("trace_slice") or ()
    by_name: Dict[str, int] = {}
    for record in slice_records:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    lines.append(
        f"  trace slice     : {len(slice_records)} records ("
        + ", ".join(f"{n}×{c}" for n, c in sorted(by_name.items()))
        + ")"
    )
    recent = dossier.get("recent") or {}
    lines.append(
        "  flight rings    : "
        + ", ".join(f"{lane}={len(ring)}" for lane, ring in sorted(recent.items()))
    )
    state = dossier.get("state") or {}
    two_pc = state.get("two_pc")
    if two_pc is not None:
        pending = two_pc.get("pending") or ()
        lines.append(
            f"  2PC at latch    : {len(pending)} in doubt, "
            f"decisions {two_pc.get('decisions')}, "
            f"retransmits {two_pc.get('retransmits')}"
        )
        for st in pending:
            lines.append(
                f"    T{st['gid']}: phase={st['phase']} "
                f"participants={st['participants']} prepared={st['prepared']}"
            )
    for replica in state.get("replicas") or ():
        lines.append(
            f"  replica {replica['shard']}.{replica['replica']}     : "
            f"applied={replica['applied']} lag={replica.get('lag')} "
            f"up={replica['up']}"
        )
    return "\n".join(lines)


class FlightRecorder:
    """Bounded per-shard rings of recent trace records + dossier capture.

    Wire-up (``run_stress(..., flight=FlightRecorder())`` does all of it):

    * :meth:`attach` chains onto the tracer's sink — every emitted record
      is ring-buffered by shard lane before reaching any prior sink;
    * :meth:`bind` points the recorder at the live run (network clock,
      cluster/server state to snapshot, windowed telemetry to watch);
    * the analysis's ``on_phenomenon`` chains :meth:`on_phenomenon`; the
      driver loop calls :meth:`check_slos` after each telemetry sample.
    """

    def __init__(self, *, capacity: int = 256, max_dossiers: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.max_dossiers = max_dossiers
        self._rings: Dict[str, Deque[Dict[str, Any]]] = {}
        self._tracer: Optional[object] = None
        self._network: Optional[object] = None
        self._cluster: Optional[object] = None
        self._server: Optional[object] = None
        self._windows: Optional[object] = None
        self.seed: Optional[int] = None
        self._endpoint_lane: Dict[str, str] = {}
        self._lanes_version: Optional[int] = None
        self._slo_latched: set = set()
        #: Dossiers captured at latch time (trace slice deferred to read).
        self._captured: List[Dict[str, Any]] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, tracer) -> "FlightRecorder":
        """Chain onto ``tracer``'s sink; existing sinks keep receiving
        every record after the ring observes it."""
        self._tracer = tracer
        prev = tracer._sink

        def sink(record: Dict[str, Any], _prev=prev) -> None:
            self._observe(record)
            if _prev is not None:
                _prev(record)

        tracer._sink = sink
        return self

    def bind(
        self,
        *,
        network: Optional[object] = None,
        cluster: Optional[object] = None,
        server: Optional[object] = None,
        windows: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> "FlightRecorder":
        if network is not None:
            self._network = network
        if cluster is not None:
            self._cluster = cluster
            self._refresh_lanes()
        if server is not None:
            self._server = server
        if windows is not None:
            self._windows = windows
        if seed is not None:
            self.seed = seed
        return self

    # -- ring maintenance ------------------------------------------------

    def _refresh_lanes(self) -> None:
        cluster = self._cluster
        if cluster is None:
            return
        lanes: Dict[str, str] = {cluster.coordinator.name: "cluster"}
        for shard in cluster.shards:
            lanes[shard.name] = f"shard{shard.index}"
        for group in cluster.replicas:
            for replica in group:
                if replica is not None:
                    lanes[replica.name] = f"shard{replica.shard_index}"
        self._endpoint_lane = lanes
        self._lanes_version = cluster.shard_map.version

    def _lane_of(self, record: Dict[str, Any]) -> str:
        attrs = record.get("attrs") or {}
        shard = attrs.get("shard")
        if isinstance(shard, int):
            return f"shard{shard}"
        for key in ("dst", "src"):
            endpoint = attrs.get(key)
            if endpoint in self._endpoint_lane:
                return self._endpoint_lane[endpoint]
        if (
            self._cluster is not None
            and self._lanes_version != self._cluster.shard_map.version
        ):
            # Reconfiguration renamed an endpoint: rebuild once per map
            # version and retry the endpoint match.
            self._refresh_lanes()
            for key in ("dst", "src"):
                endpoint = attrs.get(key)
                if endpoint in self._endpoint_lane:
                    return self._endpoint_lane[endpoint]
        return "cluster"

    def _observe(self, record: Dict[str, Any]) -> None:
        lane = self._lane_of(record)
        ring = self._rings.get(lane)
        if ring is None:
            ring = self._rings[lane] = deque(maxlen=self.capacity)
        ring.append(record)

    def rings(self) -> Dict[str, List[Dict[str, Any]]]:
        """Current ring contents (lane → records, oldest first)."""
        return {lane: list(ring) for lane, ring in sorted(self._rings.items())}

    # -- latch triggers --------------------------------------------------

    def on_phenomenon(self, phenomenon, analysis) -> None:
        """``on_phenomenon=`` chain link: capture a dossier the moment the
        certifier latches a phenomenon (the provenance hook has already
        emitted the witness event — it is in the rings)."""
        from .provenance import provenance_record

        trigger = provenance_record(analysis, phenomenon)
        tids = trigger.get("cycle_tids") or [
            w["tid"] for w in trigger.get("witnesses", ())
        ]
        self._capture("phenomenon", trigger, tids)

    def check_slos(self, now: int) -> None:
        """Capture a dossier for every SLO that newly latched (drivers call
        this after each telemetry sample; cheap no-op otherwise)."""
        windows = self._windows
        if windows is None:
            return
        for status in windows.slo_status:
            if (
                status.violated_at is not None
                and status.slo.name not in self._slo_latched
            ):
                self._slo_latched.add(status.slo.name)
                self._capture("slo", status.to_dict(), ())

    def opcheck_dossier(self, result) -> Optional[Dict[str, Any]]:
        """Post-run trigger: a failed operation-interval check becomes an
        ``"opcheck"`` dossier (``None`` when the check passes)."""
        report = result.opcheck()
        if report.ok:
            return None
        witnesses = [
            dict(w) for failure in report.failures
            for w in failure.get("witnesses", ())
        ]
        trigger = {
            "ok": False,
            "components": report.components,
            "states_explored": report.states_explored,
            "witnesses": witnesses,
        }
        tids = [w["tid"] for w in witnesses if w.get("tid") is not None]
        self._capture("opcheck", trigger, tids)
        return self.dossiers()[-1]

    def _capture(
        self, kind: str, trigger: Dict[str, Any], tids: Sequence[int]
    ) -> None:
        if len(self._captured) >= self.max_dossiers:
            return
        self._captured.append({
            "kind": kind,
            "tick": (
                self._network.now if self._network is not None else None
            ),
            "seed": self.seed,
            "trigger": trigger,
            "witness_tids": sorted(set(tids)),
            "recent": self.rings(),
            "state": self._state_snapshot(),
        })

    # -- state snapshot --------------------------------------------------

    def _state_snapshot(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        cluster = self._cluster
        if cluster is not None:
            coordinator = cluster.coordinator
            state["two_pc"] = {
                "pending": [
                    {
                        "gid": gid,
                        "phase": st.phase,
                        "decision": st.decision,
                        "participants": list(st.participants),
                        "prepared": sorted(st.prepared),
                        "opened_at": st.opened_at,
                    }
                    for gid, st in sorted(coordinator._pending.items())
                ],
                "decisions": dict(coordinator.decisions),
                "retransmits": coordinator.retransmits,
            }
            state["shards"] = [
                {
                    "shard": shard.index,
                    "name": shard.name,
                    "up": shard.up,
                    "commits": shard.commit_count,
                    "certification_lag": shard.certification_lag,
                }
                for shard in cluster.shards
            ]
            if cluster.config.replicas:
                lags = cluster.replica_lags()
                state["replicas"] = [
                    {
                        "shard": i,
                        "replica": j,
                        "name": replica.name,
                        "up": replica.up,
                        "applied": replica.applied,
                        "lag": lags.get((i, j)),
                    }
                    for i in range(len(cluster.shards))
                    for j in range(cluster.config.replicas)
                    for replica in (cluster.replica_of(i, j),)
                    if replica is not None
                ]
            state["map_version"] = cluster.shard_map.version
        elif self._server is not None:
            server = self._server
            state["server"] = {
                "up": server.up,
                "commits": server.commit_count,
                "certification_lag": server.certification_lag,
            }
        return state

    # -- dossiers --------------------------------------------------------

    def dossiers(self) -> List[Dict[str, Any]]:
        """Captured dossiers with their trace slices assembled from the
        tracer's (now complete) records — call after the run settles."""
        records = self._tracer.records if self._tracer is not None else []
        out = []
        for captured in self._captured:
            dossier = dict(captured)
            dossier["trace_slice"] = trace_slice(
                records, dossier["witness_tids"]
            )
            out.append(dossier)
        return out

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder lanes={sorted(self._rings)} "
            f"captured={len(self._captured)} capacity={self.capacity}>"
        )
