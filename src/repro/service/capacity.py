"""Capacity sweeps: an offered-load ladder, the saturation knee, SLO
verdicts and a per-object contention heatmap.

A single open-loop run answers "did the system keep up at rate r"; a
*capacity sweep* answers the operator's real question — "at what offered
load does it stop keeping up, and what breaks first".  :func:`run_capacity`
runs one seeded open-loop stress run per ladder rung (same seed per rung,
rising Poisson rate), each with a fresh :class:`~repro.observability.
windows.WindowedTelemetry` and tracer, then:

* finds the **saturation knee** — the last rung whose completion ratio
  (committed / offered) still clears :data:`KNEE_COMPLETION`; rungs above
  it are past saturation: queues grow, latency percentiles inflate, and
  admission control (when configured) sheds;
* evaluates every :class:`~repro.observability.windows.SLO` per rung with
  latch-on-violation semantics — the verdict table shows which objective
  broke first as load rises;
* builds a per-object **contention heatmap** from each rung's
  :func:`~repro.observability.traceview.contention_summary` — wait ticks
  per key per rung, so hot-key pile-ups are visible as a column of heat.

Everything is deterministic per ``seed``: equal arguments render a
byte-identical capacity report (the capacity tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..observability.trace import Tracer
from ..observability.traceview import contention_summary
from ..observability.windows import SLO, WindowedTelemetry
from ..workloads.arrivals import PoissonArrivals, ZipfianKeys
from .config import (
    AdmissionConfig,
    NetworkConfig,
    RetryPolicy,
    SchedulerConfig,
    StressConfig,
)
from .stress import StressResult, run_stress

__all__ = [
    "CapacityResult",
    "CapacityRung",
    "KNEE_COMPLETION",
    "build_capacity_report",
    "find_knee",
    "run_capacity",
]

#: A rung "keeps up" while committed / offered stays at or above this.
KNEE_COMPLETION = 0.9


@dataclass
class CapacityRung:
    """One ladder rung: an open-loop run at one offered rate."""

    rate: float
    offered: int
    committed: int
    aborted: int
    shed: int
    ticks: int
    p50: Optional[int]
    p95: Optional[int]
    p99: Optional[int]
    max_queue_depth: int
    max_certification_lag: int
    #: Worst concurrently in-doubt 2PC transactions (cluster templates
    #: only; ``None`` on single-server sweeps).
    max_in_doubt: Optional[int] = None
    slos: List[Dict[str, Any]] = field(default_factory=list)
    contention: List[Dict[str, Any]] = field(default_factory=list)
    #: The underlying stress result (full artifacts, not serialised).
    stress: Optional[StressResult] = field(repr=False, default=None)

    @property
    def completion_ratio(self) -> float:
        """Committed / offered (1.0 when nothing was offered)."""
        return self.committed / self.offered if self.offered else 1.0

    @property
    def throughput_per_kilotick(self) -> float:
        """Commits per 1000 logical ticks."""
        return 1000.0 * self.committed / self.ticks if self.ticks else 0.0

    @property
    def slos_ok(self) -> bool:
        return all(s["ok"] for s in self.slos)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "offered": self.offered,
            "committed": self.committed,
            "aborted": self.aborted,
            "shed": self.shed,
            "ticks": self.ticks,
            "completion_ratio": round(self.completion_ratio, 4),
            "throughput_per_kilotick": round(self.throughput_per_kilotick, 3),
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max_queue_depth": self.max_queue_depth,
            "max_certification_lag": self.max_certification_lag,
            **(
                {"max_in_doubt": self.max_in_doubt}
                if self.max_in_doubt is not None
                else {}
            ),
            "slos_ok": self.slos_ok,
            "slos": self.slos,
        }


@dataclass
class CapacityResult:
    """One sweep: the ladder, plus where it stopped keeping up."""

    seed: int
    horizon: int
    rungs: List[CapacityRung]
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def knee(self) -> Optional[CapacityRung]:
        index = find_knee(self.rungs)
        return self.rungs[index] if index is not None else None

    @property
    def all_slos_ok(self) -> bool:
        return all(r.slos_ok for r in self.rungs)

    def to_dict(self) -> Dict[str, Any]:
        knee = self.knee
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "config": self.config,
            "knee_rate": knee.rate if knee is not None else None,
            "ladder": [r.to_dict() for r in self.rungs],
        }


def find_knee(
    rungs: Sequence[CapacityRung], *, completion: float = KNEE_COMPLETION
) -> Optional[int]:
    """Index of the saturation knee: the last rung (ladder order) whose
    completion ratio is still ``>= completion``; ``None`` if even the
    first rung is overloaded."""
    knee = None
    for i, rung in enumerate(rungs):
        if rung.completion_ratio >= completion:
            knee = i
    return knee


def run_capacity(
    *,
    rates: Sequence[float],
    horizon: int = 1500,
    seed: int = 0,
    template: Optional[StressConfig] = None,
    scheduler: SchedulerConfig | str = "locking",
    level: Optional[str] = None,
    clients: int = 8,
    keys: int = 8,
    ops_per_txn: int = 2,
    network: Optional[NetworkConfig] = None,
    retry: Optional[RetryPolicy] = None,
    admission: Optional[AdmissionConfig] = None,
    zipf_theta: Optional[float] = None,
    slos: Tuple[SLO, ...] = (),
    window: int = 500,
    sample_every: int = 100,
    trace: bool = True,
) -> CapacityResult:
    """Run the offered-load ladder; see the module docstring.

    Each rung is an independent open-loop :func:`~repro.service.stress.
    run_stress` at ``PoissonArrivals(rate)`` over ``horizon`` ticks, with
    the same ``seed`` — so the sweep as a whole is deterministic per seed.
    ``trace=False`` skips the per-rung tracer (no contention heatmap, much
    lighter).

    ``template`` names the run shape as a :class:`~repro.service.config.
    StressConfig` (cluster mode included); the sweep replaces only the
    per-rung fields (``arrivals``, ``horizon``, ``seed``, ``windows``) on
    it.  Without a template the remaining keyword arguments build one.
    """
    if not rates:
        raise ValueError("rates must name at least one offered load")
    hot = ZipfianKeys(keys, theta=zipf_theta) if zipf_theta is not None else None
    base = template or StressConfig(
        scheduler=scheduler,
        level=level,
        clients=clients,
        keys=keys,
        ops_per_txn=ops_per_txn,
        network=network,
        retry=retry,
        admission=admission,
        hot_keys=hot,
        # StressConfig requires a horizon alongside arrivals; both are
        # replaced per rung below.
        arrivals=None,
        horizon=None,
    )
    rungs: List[CapacityRung] = []
    for rate in rates:
        tracer = Tracer() if trace else None
        windows = WindowedTelemetry(
            window=window, sample_every=sample_every, slos=slos
        )
        result = run_stress(
            replace(
                base,
                seed=seed,
                arrivals=PoissonArrivals(rate=rate),
                horizon=horizon,
                windows=windows,
            ),
            tracer=tracer,
        )
        rungs.append(
            CapacityRung(
                rate=rate,
                offered=result.offered,
                committed=result.committed,
                aborted=result.client_aborts,
                shed=result.server_counters.get("shed", 0),
                ticks=result.ticks,
                p50=result.latency_percentile(50),
                p95=result.latency_percentile(95),
                p99=result.latency_percentile(99),
                max_queue_depth=windows.max_queue_depth,
                max_certification_lag=windows.max_certification_lag,
                max_in_doubt=(
                    windows.max_in_doubt if windows.in_doubt is not None else None
                ),
                slos=windows.slo_report(),
                contention=contention_summary(tracer.records)
                if tracer is not None
                else [],
                stress=result,
            )
        )
    config = {
        "scheduler": (
            base.scheduler.scheduler
            if isinstance(base.scheduler, SchedulerConfig)
            else base.scheduler
        ),
        "level": str(base.level) if base.level is not None else None,
        "clients": base.clients,
        "keys": base.keys,
        "ops_per_txn": base.ops_per_txn,
        "rates": list(rates),
        "horizon": horizon,
        "seed": seed,
        "zipf_theta": (
            base.hot_keys.theta if base.hot_keys is not None else None
        ),
        "window": window,
        "sample_every": sample_every,
    }
    if base.cluster is not None:
        config["cluster"] = {
            "shards": base.cluster.shards,
            "slots": base.cluster.slots,
        }
    if base.admission is not None:
        config["admission"] = {
            "max_active": base.admission.max_active,
            "retry_after": base.admission.retry_after,
            "certify_every": base.admission.certify_every,
            "on_uncertified": base.admission.on_uncertified,
        }
    return CapacityResult(
        seed=seed, horizon=horizon, rungs=rungs, config=config
    )


def build_capacity_report(
    result: CapacityResult, *, heatmap_objects: int = 8
) -> Dict[str, Any]:
    """The JSON-ready capacity section a :class:`~repro.observability.
    traceview.RunReport` embeds: the ladder, the knee, per-rung SLO
    verdicts and the object × rate contention heatmap."""
    knee = result.knee
    heat = _heatmap(result.rungs, top=heatmap_objects)
    return {
        "seed": result.seed,
        "horizon": result.horizon,
        "knee": (
            {
                "rate": knee.rate,
                "throughput_per_kilotick": round(
                    knee.throughput_per_kilotick, 3
                ),
                "completion_ratio": round(knee.completion_ratio, 4),
            }
            if knee is not None
            else None
        ),
        "ladder": [r.to_dict() for r in result.rungs],
        "heatmap": heat,
    }


def _heatmap(
    rungs: Sequence[CapacityRung], *, top: int
) -> Dict[str, Any]:
    """Object × rate matrix of contention wait ticks, hottest rows first."""
    totals: Dict[str, float] = {}
    per_rung: List[Dict[str, float]] = []
    for rung in rungs:
        waits = {
            row["obj"]: float(row["wait_ticks"]) for row in rung.contention
        }
        per_rung.append(waits)
        for obj, ticks in waits.items():
            totals[obj] = totals.get(obj, 0.0) + ticks
    objects = [
        obj
        for obj, _total in sorted(
            totals.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
    ]
    return {
        "rates": [r.rate for r in rungs],
        "objects": objects,
        "wait_ticks": [
            [round(waits.get(obj, 0.0), 1) for waits in per_rung]
            for obj in objects
        ],
    }
