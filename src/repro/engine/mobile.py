"""Disconnected operation with tentative commits (paper Section 3).

The paper's central example of why P1 is too strong is the mobile history
H1': "commits can be assumed to have happened 'tentatively' at client
machines; later transactions may observe modifications of those tentative
transactions.  When the client reconnects with the servers, its work is
checked to determine if consistency has been violated and the relevant
transactions are aborted.  Of course, if dirty reads are allowed, cascading
aborts can occur."  (Coda/Bayou-style operation, the paper's [12, 16, 18,
26].)

:class:`MobileCluster` implements exactly that:

* each :class:`MobileClient` runs transactions against its local view —
  the server state as of its last contact, plus the client's own
  *tentatively committed* transactions, whose uncommitted writes later
  local transactions freely read (the H1' pattern that P1 forbids);
* ``client.sync()`` reconnects: the server certifies the client's tentative
  transactions in order with backward validation (reads of server data must
  not have been overwritten by commits since the transaction's base), and
  a certification failure **cascades** to every later tentative transaction
  that read the failed one's writes — so no committed transaction ever read
  an aborted one's data (G1a never occurs);
* certified transactions commit in certification order, which is therefore
  a valid serialization order: every committed history provides PL-3.

The emitted histories are the quantitative version of the paper's argument:
they teem with P1 violations (reads of uncommitted data) yet always check
out serializable — see ``tests/test_mobile.py`` and the SEC3-MOBILE bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.history import History
from ..core.objects import Version
from ..core.predicates import Predicate, VersionSet
from ..exceptions import InvalidOperation
from ..service.replication import SessionVector
from .recorder import HistoryRecorder
from .storage import MultiVersionStore
from .transaction import BufferedWrite, Transaction, TxnState

__all__ = ["MobileCluster", "MobileClient", "MobileTxn", "SyncResult"]

#: The session-vector key for the (single) server a mobile client talks to.
SERVER = "server"


@dataclass
class _Tentative:
    """A tentatively committed transaction awaiting certification."""

    txn: Transaction
    base_seq: int
    #: objects read from *server* state (validated at certification)
    server_reads: Set[str]
    #: relations predicate-read from server state (validated coarsely)
    server_predicates: Set[str]
    #: tids of same-client tentative transactions whose writes were read
    read_from: Set[int]


@dataclass
class SyncResult:
    """Outcome of one client synchronisation."""

    committed: List[int] = field(default_factory=list)
    aborted: List[int] = field(default_factory=list)
    #: aborted because a transaction they read from was aborted
    cascaded: List[int] = field(default_factory=list)


class MobileTxn:
    """Handle for a transaction running at one client."""

    def __init__(self, client: "MobileClient", txn: Transaction):
        self._client = client
        self._txn = txn

    @property
    def tid(self) -> int:
        return self._txn.tid

    @property
    def state(self) -> TxnState:
        return self._txn.state

    def read(self, obj: str) -> Any:
        return self._client._read(self._txn, obj)

    def write(self, obj: str, value: Any) -> None:
        self._client._write(self._txn, obj, value)

    def delete(self, obj: str) -> None:
        self._client._write(self._txn, obj, None, dead=True)

    def select(self, predicate: Predicate) -> Dict[str, Any]:
        result = self._client._predicate_read(self._txn, predicate)
        return {obj: self.read(obj) for obj, _v in result}

    def count(self, predicate: Predicate) -> int:
        return len(self._client._predicate_read(self._txn, predicate))

    def tentative_commit(self) -> None:
        """Commit locally; visible to later transactions at this client,
        pending server certification at the next sync."""
        self._client._tentative_commit(self._txn)

    def abort(self) -> None:
        self._client._abort(self._txn)


class MobileClient:
    """One disconnected client: a local tentative log over a server base.

    The server base is tracked through the same :class:`SessionVector`
    the replicated cluster uses for session guarantees: the vector's
    ``SERVER`` entry is the commit offset of the client's last contact.
    A *connected* client refreshes the watermark on every ``begin`` (each
    transaction starts from current server state); after
    :meth:`disconnect` the watermark freezes, so the client is exactly a
    replica with unbounded lag serving stale-by-choice reads — the
    replication layer's weak-session mode — until :meth:`sync`
    reconnects, observes the fresh offset, and certifies the tentative
    log against everything that committed past the old watermark.
    """

    def __init__(self, cluster: "MobileCluster", client_id: int):
        self.cluster = cluster
        self.client_id = client_id
        # Creation is the client's first server contact.
        self.session = SessionVector({SERVER: cluster.store.commit_seq})
        self.connected = True
        self._tentative: List[_Tentative] = []
        self._running: Dict[int, _Tentative] = {}

    def session_vector(self) -> SessionVector:
        """Snapshot of the client's watermark vector (cf. ClusterClient)."""
        return self.session.copy()

    def disconnect(self) -> None:
        """Freeze the server watermark: later transactions run against
        the state as of the last contact, however stale it grows."""
        self.connected = False

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self) -> MobileTxn:
        txn = self.cluster._new_txn()
        if self.connected:
            self.session.observe(SERVER, self.cluster.store.commit_seq)
        self._running[txn.tid] = _Tentative(
            txn, self.session.get(SERVER), set(), set(), set()
        )
        return MobileTxn(self, txn)

    def _pending(self, txn: Transaction) -> _Tentative:
        try:
            return self._running[txn.tid]
        except KeyError:
            raise InvalidOperation(
                f"T{txn.tid} is not running at client {self.client_id}"
            ) from None

    def _tentative_view(self, obj: str) -> Optional[BufferedWrite]:
        """The latest tentative (locally committed, uncertified) write."""
        for entry in reversed(self._tentative):
            own = entry.txn.buffer.get(obj)
            if own is not None:
                return own
        return None

    def _read(self, txn: Transaction, obj: str) -> Any:
        txn.require_active()
        meta = self._pending(txn)
        own = txn.buffer.get(obj)
        if own is not None:
            if own.dead:
                return None
            self.cluster.recorder.read(txn.tid, own.version, own.value)
            return own.value
        tentative = self._tentative_view(obj)
        if tentative is not None:
            # Reading another (uncommitted!) transaction's write — the
            # paper's H1' pattern; remember the dependency for cascades.
            meta.read_from.add(tentative.version.tid)
            if tentative.dead:
                return None
            self.cluster.recorder.read(
                txn.tid, tentative.version, tentative.value
            )
            return tentative.value
        stored = self.cluster.store.at_snapshot(obj, meta.base_seq)
        if stored is None or stored.dead:
            return None
        meta.server_reads.add(obj)
        self.cluster.recorder.read(txn.tid, stored.version, stored.value)
        return stored.value

    def _write(
        self, txn: Transaction, obj: str, value: Any, *, dead: bool = False
    ) -> None:
        txn.require_active()
        self.cluster.store.register(obj)
        version = txn.next_version(obj)
        self.cluster.recorder.write(
            txn.tid, version, None if dead else value, dead=dead
        )
        txn.buffer[obj] = BufferedWrite(
            version, None if dead else value, dead, len(self.cluster.recorder.events) - 1
        )
        txn.write_set.add(obj)

    def _predicate_read(
        self, txn: Transaction, predicate: Predicate
    ) -> Tuple[Tuple[str, Any], ...]:
        txn.require_active()
        meta = self._pending(txn)
        selected: Dict[str, Version] = {}
        matched: List[Tuple[str, Any]] = []
        for relation in sorted(predicate.relations):
            meta.server_predicates.add(relation)
            for obj in self.cluster.store.objects_in(relation):
                own = txn.buffer.get(obj) or self._tentative_view(obj)
                if own is not None:
                    if own.version.tid != txn.tid:
                        meta.read_from.add(own.version.tid)
                    selected[obj] = own.version
                    if not own.dead and predicate.matches(own.version, own.value):
                        matched.append((obj, own.value))
                    continue
                stored = self.cluster.store.at_snapshot(obj, meta.base_seq)
                if stored is None:
                    continue
                selected[obj] = stored.version
                if not stored.dead and predicate.matches(
                    stored.version, stored.value
                ):
                    matched.append((obj, stored.value))
        self.cluster.recorder.predicate_read(
            txn.tid, predicate, VersionSet(selected)
        )
        txn.predicates.append(predicate)
        return tuple(sorted(matched))

    def _tentative_commit(self, txn: Transaction) -> None:
        txn.require_active()
        meta = self._running.pop(txn.tid)
        self._tentative.append(meta)
        # No Commit event yet: the transaction stays uncommitted in the
        # history until the server certifies it at sync time.

    def _abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            return
        self._running.pop(txn.tid, None)
        self.cluster.recorder.abort(txn.tid)
        txn.state = TxnState.ABORTED

    # ------------------------------------------------------------------
    # reconnection
    # ------------------------------------------------------------------

    def sync(self) -> SyncResult:
        """Reconnect: certify tentative transactions in order, cascading
        aborts to dependents of failures; returns what happened.

        Reconnecting also advances the session watermark to the server's
        current commit offset, so post-sync transactions read fresh state
        (read-your-writes across the sync is automatic: certified writes
        are part of that offset)."""
        result = SyncResult()
        aborted: Set[int] = set()
        for entry in self._tentative:
            txn = entry.txn
            cascade_source = entry.read_from & aborted
            if cascade_source:
                self._certify_abort(entry, result, cascaded=True)
                aborted.add(txn.tid)
                continue
            if self._conflicts(entry):
                self._certify_abort(entry, result, cascaded=False)
                aborted.add(txn.tid)
                continue
            self.cluster.store.install(txn.final_values())
            self.cluster.recorder.commit(txn.tid, txn.finals())
            txn.state = TxnState.COMMITTED
            result.committed.append(txn.tid)
        self._tentative.clear()
        self.connected = True
        self.session.observe(SERVER, self.cluster.store.commit_seq)
        return result

    def _conflicts(self, entry: _Tentative) -> bool:
        """Backward validation against commits since the transaction's
        base: overwritten server reads, or relation changes under its
        predicate reads (coarse, like the OCC scheduler)."""
        store = self.cluster.store
        for obj in entry.server_reads:
            if store.changed_since(obj, entry.base_seq):
                return True
        for relation in entry.server_predicates:
            for obj in store.objects_in(relation):
                if store.changed_since(obj, entry.base_seq):
                    return True
        return False

    def _certify_abort(
        self, entry: _Tentative, result: SyncResult, *, cascaded: bool
    ) -> None:
        entry.txn.state = TxnState.ABORTED
        self.cluster.recorder.abort(entry.txn.tid)
        result.aborted.append(entry.txn.tid)
        if cascaded:
            result.cascaded.append(entry.txn.tid)


class MobileCluster:
    """The server plus its disconnected clients."""

    def __init__(self) -> None:
        self.store = MultiVersionStore()
        self.recorder = HistoryRecorder()
        self._next_tid = 1
        self._clients: Dict[int, MobileClient] = {}
        self._loaded = False

    def load(self, initial: Dict[str, Any]) -> None:
        """Install the initial server state (loader transaction T0)."""
        if self._loaded:
            raise InvalidOperation("initial data already loaded")
        self._loaded = True
        loader = Transaction(0)
        for obj, value in initial.items():
            self.store.register(obj)
            version = loader.next_version(obj)
            self.recorder.write(0, version, value)
            loader.buffer[obj] = BufferedWrite(version, value, False, -1)
        self.store.install(loader.final_values())
        self.recorder.commit(0, loader.finals())

    def client(self, client_id: int) -> MobileClient:
        if client_id not in self._clients:
            self._clients[client_id] = MobileClient(self, client_id)
        return self._clients[client_id]

    def _new_txn(self) -> Transaction:
        txn = Transaction(self._next_tid)
        self._next_tid += 1
        self.recorder.begin(txn.tid)
        return txn

    def history(self, *, validate: bool = True) -> History:
        """The global execution (all clients) as an Adya history."""
        return self.recorder.history(validate=validate)
