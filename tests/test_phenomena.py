"""Tests for phenomena detection G0–G2 (repro.core.phenomena)."""


from repro.core import Analysis, parse_history
from repro.core.phenomena import Phenomenon as G


def analysis(text, **kw):
    return Analysis(parse_history(text, **kw))


class TestG0:
    def test_write_cycle(self):
        a = analysis("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]")
        assert a.exhibits(G.G0)

    def test_uncommitted_interleaving_allowed(self):
        # The paper's point: PL-1 is more permissive than P0 — concurrent
        # transactions may interleave writes as long as *committed* versions
        # are consistently ordered.
        a = analysis("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y1 << y2]")
        assert not a.exhibits(G.G0)

    def test_witness_carries_cycle(self):
        a = analysis("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]")
        report = a.report(G.G0)
        assert report.witnesses[0].cycle is not None


class TestG1a:
    def test_aborted_read(self):
        a = analysis("w1(x1) r2(x1) c2 a1")
        assert a.exhibits(G.G1A)

    def test_reader_must_commit(self):
        a = analysis("w1(x1) r2(x1) a2 a1")
        assert not a.exhibits(G.G1A)

    def test_read_before_abort_still_counts(self):
        a = analysis("w1(x1) r2(x1) a1 c2")
        assert a.exhibits(G.G1A)

    def test_via_version_set(self):
        a = analysis("w1(x1) r2(P: x1) c2 a1")
        assert a.exhibits(G.G1A)

    def test_witness_identifies_reader(self):
        a = analysis("w1(x1) r2(x1) c2 a1")
        assert a.report(G.G1A).witnesses[0].tid == 2

    def test_committed_writer_is_clean(self):
        a = analysis("w1(x1) r2(x1) c1 c2")
        assert not a.exhibits(G.G1A)


class TestG1b:
    def test_intermediate_read(self):
        a = analysis("w1(x1.1) r2(x1.1) c2 w1(x1.2) c1")
        assert a.exhibits(G.G1B)

    def test_final_read_is_clean(self):
        a = analysis("w1(x1.1) w1(x1.2) r2(x1.2) c1 c2")
        assert not a.exhibits(G.G1B)

    def test_own_intermediate_read_is_clean(self):
        a = analysis("w1(x1.1) r1(x1.1) w1(x1.2) c1")
        assert not a.exhibits(G.G1B)

    def test_uncommitted_reader_is_clean(self):
        a = analysis("w1(x1.1) r2(x1.1) a2 w1(x1.2) c1")
        assert not a.exhibits(G.G1B)

    def test_setup_versions_are_not_intermediate(self):
        a = analysis("r1(x0) c1")
        assert not a.exhibits(G.G1B)

    def test_via_version_set(self):
        a = analysis("w1(x1.1) r2(P: x1.1) c2 w1(x1.2) c1")
        assert a.exhibits(G.G1B)


class TestG1c:
    def test_mutual_reads(self):
        a = analysis("w1(x1) w2(y2) r1(y2) r2(x1) c1 c2")
        assert a.exhibits(G.G1C)

    def test_includes_g0(self):
        # G1c subsumes write cycles (the paper notes G1c includes G0).
        a = analysis("w1(x1) w2(x2) w2(y2) c2 w1(y1) c1 [x1 << x2, y2 << y1]")
        assert a.exhibits(G.G1C)

    def test_anti_dependency_cycle_is_not_g1c(self):
        a = analysis(
            "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1"
        )
        assert not a.exhibits(G.G1C)


class TestG1Composite:
    def test_any_part_triggers(self):
        assert analysis("w1(x1) r2(x1) c2 a1").exhibits(G.G1)
        assert analysis("w1(x1.1) r2(x1.1) c2 w1(x1.2) c1").exhibits(G.G1)
        assert analysis("w1(x1) w2(y2) r1(y2) r2(x1) c1 c2").exhibits(G.G1)

    def test_clean_history(self):
        assert not analysis("w1(x1) c1 r2(x1) c2").exhibits(G.G1)


class TestG2:
    def test_single_anti_cycle(self):
        a = analysis("r1(x0, 10) w2(x2, 15) c2 r1(x2, 15) c1 [x0 << x2]")
        assert a.exhibits(G.G2)

    def test_pure_dependency_cycle_is_not_g2(self):
        a = analysis("w1(x1) w2(y2) r1(y2) r2(x1) c1 c2")
        assert not a.exhibits(G.G2)

    def test_acyclic_history_clean(self):
        a = analysis("w1(x1) c1 r2(x1) w2(x2) c2")
        assert not a.exhibits(G.G2)


class TestG2Item:
    def test_item_anti_cycle(self):
        a = analysis(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert a.exhibits(G.G2_ITEM)

    def test_predicate_only_cycle_excluded(self):
        # The phantom: cycle exists only through a predicate-anti edge.
        a = analysis(
            "r1(Dept=Sales: x0*) w2(y2) c2 r1(y2) c1 [Dept=Sales matches: y2]"
        )
        assert not a.exhibits(G.G2_ITEM)
        assert a.exhibits(G.G2)


class TestReports:
    def test_report_memoized(self):
        a = analysis("w1(x1) c1")
        assert a.report(G.G0) is a.report(G.G0)

    def test_describe_mentions_phenomenon(self):
        a = analysis("w1(x1) r2(x1) c2 a1")
        assert "G1a" in a.report(G.G1A).describe()
        assert "EXHIBITED" in a.report(G.G1A).describe()

    def test_bool_protocol(self):
        a = analysis("w1(x1) c1")
        assert not a.report(G.G0)
