"""Cross-system integration tests: engines → histories → checkers.

These encode the paper's central implementation-independence claims as
executable statements over many seeds and workloads.
"""

import pytest

import repro
from repro.baseline import PreventativeAnalysis, PreventativePhenomenon as P
from repro.core.levels import IsolationLevel as L
from repro.core.msg import mixing_correct
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import (
    WorkloadConfig,
    bank_programs,
    initial_balances,
    random_programs,
)

SEEDS = range(6)


def run(scheduler, programs, initial, seed):
    db = Database(scheduler)
    db.load(initial)
    Simulator(db, programs, seed=seed).run()
    return db.history()


def contentious(seed, level=None):
    cfg = WorkloadConfig(
        n_programs=5,
        steps_per_program=3,
        n_keys=4,
        hot_fraction=0.7,
        write_fraction=0.6,
        level=level,
    )
    return random_programs(cfg, seed=seed), cfg.initial_state()


class TestLockingGuarantees:
    """Each Figure 1 row provides exactly its PL level (lower rows may
    incidentally do better on a lucky interleaving, never worse)."""

    @pytest.mark.parametrize(
        "profile,level",
        [
            ("serializable", L.PL_3),
            ("repeatable-read", L.PL_2_99),
            ("read-committed", L.PL_2),
            ("read-uncommitted", L.PL_1),
        ],
    )
    def test_profile_guarantees_level(self, profile, level):
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(LockingScheduler(profile), programs, initial, seed)
            verdict = repro.satisfies(h, level)
            assert verdict.ok, f"{profile} seed {seed}:\n{verdict.describe()}"

    def test_serializable_locking_passes_preventative_too(self):
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(LockingScheduler("serializable"), programs, initial, seed)
            a = PreventativeAnalysis(h)
            assert not any(a.exhibits(p) for p in P)


class TestOptimisticGuarantees:
    def test_occ_always_serializable(self):
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(OptimisticScheduler(), programs, initial, seed)
            assert repro.classify(h) is L.PL_3

    def test_occ_violates_preventative(self):
        violations = 0
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(OptimisticScheduler(), programs, initial, seed)
            a = PreventativeAnalysis(h)
            violations += any(a.exhibits(p) for p in P)
        assert violations > 0


class TestMultiVersionGuarantees:
    def test_si_always_pl_si(self):
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(SnapshotIsolationScheduler(), programs, initial, seed)
            assert repro.satisfies(h, L.PL_SI).ok

    def test_mvrc_always_pl2(self):
        for seed in SEEDS:
            programs, initial = contentious(seed)
            h = run(ReadCommittedMVScheduler(), programs, initial, seed)
            assert repro.satisfies(h, L.PL_2).ok


class TestMixedSystems:
    """Section 5.5: the locking scheduler with the standard short/long lock
    combination is mixing-correct for any level assignment."""

    @pytest.mark.parametrize("levels", [
        (L.PL_1, L.PL_3),
        (L.PL_2, L.PL_2_99),
        (L.PL_1, L.PL_2, L.PL_3),
    ])
    def test_mixed_locking_is_mixing_correct(self, levels):
        for seed in SEEDS:
            cfg = WorkloadConfig(
                n_programs=len(levels) * 2,
                steps_per_program=3,
                n_keys=4,
                write_fraction=0.6,
            )
            programs = random_programs(cfg, seed=seed)
            for i, program in enumerate(programs):
                program.level = levels[i % len(levels)]
            db = Database(LockingScheduler("serializable"))
            db.load(cfg.initial_state())
            Simulator(db, programs, seed=seed).run()
            report = mixing_correct(db.history())
            assert report.ok, report.describe()

    def test_mixed_history_gives_pl3_transactions_their_guarantee(self):
        """In a mixing-correct history the PL-3 transactions' obligatory
        edges are acyclic even though PL-1 peers run amok."""
        for seed in SEEDS:
            cfg = WorkloadConfig(
                n_programs=4, steps_per_program=3, n_keys=3, write_fraction=0.7
            )
            programs = random_programs(cfg, seed=seed)
            for i, program in enumerate(programs):
                program.level = L.PL_1 if i % 2 else L.PL_3
            db = Database(LockingScheduler("serializable"))
            db.load(cfg.initial_state())
            Simulator(db, programs, seed=seed).run()
            assert mixing_correct(db.history()).ok


class TestBankInvariantCorrelation:
    """Observed invariant violations correlate exactly with checker
    verdicts: a PL-3 history never shows a violated audit."""

    def test_pl3_histories_never_violate_audits(self):
        from repro.workloads import audit_violations

        for scheduler_factory in (
            lambda: LockingScheduler("serializable"),
            OptimisticScheduler,
            SnapshotIsolationScheduler,
        ):
            for seed in SEEDS:
                db = Database(scheduler_factory())
                db.load(initial_balances(4))
                res = Simulator(db, bank_programs(seed=seed), seed=seed).run()
                if repro.check(res.history).serializable:
                    assert audit_violations(res.outcomes, 4) == []
