"""Every example history from the paper, in library form (Sections 3–5).

Each entry records the notation text, what the paper says about it, and the
machine-checkable claims: which PL levels the history provides.  The FIG6
benchmark and the integration tests assert every claim.

Values and version orders are transcribed directly from the paper; versions
like ``x0`` whose writer has no events are the paper's implicit initial
state (setup versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Tuple

from .history import History
from .levels import IsolationLevel
from .parser import parse_history

__all__ = [
    "CanonicalHistory",
    "H1",
    "H2",
    "H1_PRIME",
    "H2_PRIME",
    "H_WRITE_ORDER",
    "H_PRED_READ",
    "H_INSERT",
    "H_SERIAL",
    "H_WCYCLE",
    "H_PRED_UPDATE",
    "H_PHANTOM",
    "ALL_CANONICAL",
]


@dataclass(frozen=True)
class CanonicalHistory:
    """A named paper history with its stated properties.

    ``provides`` maps levels to the paper's (or, where the paper is silent,
    the formalism's direct) verdicts on whether the committed history
    provides that level.  ``auto_complete`` mirrors Section 4.2's completion
    of histories that leave transactions unfinished.
    """

    name: str
    section: str
    description: str
    text: str
    provides: Mapping[IsolationLevel, bool] = field(default_factory=dict)
    auto_complete: bool = False

    @cached_property
    def history(self) -> History:
        return parse_history(self.text, auto_complete=self.auto_complete)

    def __str__(self) -> str:
        return f"{self.name} ({self.section}): {self.description}"


_PL = IsolationLevel


H1 = CanonicalHistory(
    name="H1",
    section="Section 3",
    description=(
        "T2 observes the invariant x + y = 10 violated (it sees T1's new x "
        "but the old y); non-serializable, ruled out by P1 in the "
        "preventative approach and by G2 here"
    ),
    text="r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1",
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: False,
        _PL.PL_3: False,
    },
)

H2 = CanonicalHistory(
    name="H2",
    section="Section 3",
    description=(
        "T2 sees old x and new y, again observing x + y = 10 violated; "
        "non-serializable, ruled out by P2 in the preventative approach and "
        "by G2 here"
    ),
    text="r2(x0, 5) r1(x0, 5) w1(x1, 1) r1(y0, 5) w1(y1, 9) c1 r2(y1, 9) c2",
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: False,
        _PL.PL_3: False,
    },
)

H1_PRIME = CanonicalHistory(
    name="H1'",
    section="Section 3",
    description=(
        "T2 reads T1's values for both x and y and serializes after T1; "
        "legal (e.g. in mobile systems with tentative commits) but "
        "disallowed by P1 because T2 read uncommitted data"
    ),
    text="r1(x0, 5) w1(x1, 1) r1(y0, 5) w1(y1, 9) r2(x1, 1) r2(y1, 9) c1 c2",
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H2_PRIME = CanonicalHistory(
    name="H2'",
    section="Section 3",
    description=(
        "T2 reads the old values of x and y and serializes before T1; legal "
        "under optimistic schemes but disallowed by P2 because T1 "
        "overwrites data read by the uncommitted T2"
    ),
    text="r2(x0, 5) r1(x0, 5) w1(x1, 1) r1(y0, 5) r2(y0, 5) w1(y1, 9) c2 c1",
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H_WRITE_ORDER = CanonicalHistory(
    name="H_write-order",
    section="Section 4.2",
    description=(
        "the system chose version order x2 << x1 even though T1 committed "
        "first — version order is independent of commit order; T3 is "
        "unfinished (completed by an appended abort) and T4 aborted, so x3 "
        "and y4 are unconstrained"
    ),
    text="w1(x1) w2(x2) w2(y2) c1 c2 r3(x1) w3(x3) w4(y4) a4  [x2 << x1]",
    auto_complete=True,
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H_PRED_READ = CanonicalHistory(
    name="H_pred-read",
    section="Section 4.4.1",
    description=(
        "T0 inserts x into Sales, T1 moves x to Legal, T2 changes x's phone "
        "number; T3's query of Sales predicate-read-depends on T1 (the "
        "latest match-changing transaction), not T2; serializable as "
        "T0, T1, T3, T2"
    ),
    text=(
        "w0(x0) c0 w1(x1) c1 w2(x2) r3(Dept=Sales: x2, y0) w2(y2) c2 c3 "
        "[x0 << x1 << x2, y0 << y2] [Dept=Sales matches: x0]"
    ),
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H_INSERT = CanonicalHistory(
    name="H_insert",
    section="Section 4.3.2",
    description=(
        "the INSERT ... SELECT statement: T1's predicate read over "
        "COMM > 0.25 * SAL matches x0, which it reads to generate the new "
        "BONUS tuple y1"
    ),
    text="r1(CommGt25Sal: x0*, z0) r1(x0) w1(y1) c1",
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H_SERIAL = CanonicalHistory(
    name="H_serial",
    section="Section 4.4.4 (Figure 3)",
    description=(
        "the DSG example: serializable in the order T1, T2, T3 with edges "
        "T1-ww/wr->T2, T1-ww->T3, T2-wr/rw->T3"
    ),
    text=(
        "w1(z1) w1(x1) w1(y1) w3(x3) c1 r2(x1) w2(y2) c2 r3(y2) w3(z3) c3 "
        "[x1 << x3, y1 << y2, z1 << z3]"
    ),
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: True,
    },
)

H_WCYCLE = CanonicalHistory(
    name="H_wcycle",
    section="Section 5.1 (Figure 4)",
    description=(
        "updates of x and y occur in opposite orders, a pure "
        "write-dependency cycle (G0); disallowed even at PL-1"
    ),
    text="w1(x1, 2) w2(x2, 5) w2(y2, 5) c2 w1(y1, 8) c1  [x1 << x2, y2 << y1]",
    provides={
        _PL.PL_1: False,
        _PL.PL_2: False,
        _PL.PL_2_99: False,
        _PL.PL_3: False,
    },
)

H_PRED_UPDATE = CanonicalHistory(
    name="H_pred-update",
    section="Section 5.1",
    description=(
        "T1 adds employees x and y to Sales while T2 increments Sales "
        "salaries; the interleaving updates x but misses y.  Allowed at "
        "PL-1 (no write-dependency cycle) and even PL-2.99 (the cycle needs "
        "a predicate-anti-dependency edge), but not at PL-3"
    ),
    text=(
        "w1(x1) r2(Dept=Sales: x1*, yinit) w1(y1) w2(x2) c1 c2 "
        "[xinit << x1 << x2, yinit << y1] [Dept=Sales matches: y1, x2]"
    ),
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: False,
    },
)

H_PHANTOM = CanonicalHistory(
    name="H_phantom",
    section="Section 5.4 (Figure 5)",
    description=(
        "T1 sums Sales salaries while T2 inserts employee z and updates the "
        "stored sum; T1 sees the new sum but not z — an anti-dependency "
        "cycle that exists only through the predicate edge, so PL-2.99 "
        "admits it and PL-3 rejects it"
    ),
    text=(
        "r1(Dept=Sales: x0*, y0*) r1(x0, 10) r1(y0, 10) r2(Sum0, 20) "
        "w2(z2, 10) w2(Sum2, 30) c2 r1(Sum2, 30) c1 "
        "[Sum0 << Sum2, zinit << z2] [Dept=Sales matches: z2]"
    ),
    provides={
        _PL.PL_1: True,
        _PL.PL_2: True,
        _PL.PL_2_99: True,
        _PL.PL_3: False,
    },
)

#: All canonical histories in paper order.
ALL_CANONICAL: Tuple[CanonicalHistory, ...] = (
    H1,
    H2,
    H1_PRIME,
    H2_PRIME,
    H_WRITE_ORDER,
    H_PRED_READ,
    H_INSERT,
    H_SERIAL,
    H_WCYCLE,
    H_PRED_UPDATE,
    H_PHANTOM,
)
