"""FIG5 — Figure 5: the DSG of H_phantom.

The sum-of-salaries phantom: T2 -wr-> T1 and T1 -predicate-rw-> T2 (with the
setup transaction T0 present but "not shown" in the paper's figure).  The
cycle exists *only* through the predicate anti-dependency edge, which is the
whole point of PL-2.99: REPEATABLE READ admits the history, SERIALIZABLE
rejects it.

Beyond the static figure, the bench regenerates the anomaly live: the
employee workload under repeatable-read locking produces histories with the
same cycle shape, while serializable locking never does.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import DSG
from repro.core.canonical import H_PHANTOM
from repro.core.levels import IsolationLevel as L
from repro.engine import Database, LockingScheduler, Simulator
from repro.workloads import employee_programs, initial_employees

N_SEEDS = 15


def test_figure5_static_dsg(benchmark, record_table):
    dsg = benchmark(lambda: DSG(H_PHANTOM.history))
    edges = {
        (e.src, e.dst, ("p" if e.via_predicate else "") + e.kind.value)
        for e in dsg.edges
    }
    assert (2, 1, "wr") in edges  # T1 read T2's Sum
    assert (1, 2, "prw") in edges  # T2 overwrote T1's predicate read
    rep = repro.check(H_PHANTOM.history)
    assert rep.ok(L.PL_2_99) and not rep.ok(L.PL_3)

    lines = [
        "FIG5 — DSG(H_phantom)  (T0 is the implicit setup transaction)",
        f"history: {H_PHANTOM.history}",
        "edges:",
    ]
    for src, dst, tag in sorted(edges):
        lines.append(f"  T{src} -{tag}-> T{dst}")
    lines.append("verdict: PL-2.99 PROVIDED, PL-3 violated (cycle needs the prw edge)")
    record_table("figure5_dsg_phantom", "\n".join(lines))


def _run_profile(profile):
    phantoms = 0
    shapes = []
    for seed in range(N_SEEDS):
        db = Database(LockingScheduler(profile))
        db.load(initial_employees(3))
        result = Simulator(
            db,
            employee_programs(n_hires=1, n_raises=1, n_audits=1, seed=seed),
            seed=seed,
        ).run()
        bad_audit = any(
            o.committed and o.program.startswith("audit")
            and o.regs.get("consistent") is False
            for o in result.outcomes
        )
        if bad_audit:
            phantoms += 1
            shapes.append(repro.check(result.history))
    return phantoms, shapes


@pytest.mark.parametrize("profile,expect_phantoms", [
    ("serializable", False),
    ("repeatable-read", True),
])
def test_figure5_live_phantoms(benchmark, record_table, profile, expect_phantoms):
    phantoms, reports = benchmark.pedantic(
        _run_profile, args=(profile,), iterations=1, rounds=1
    )
    if expect_phantoms:
        assert phantoms > 0
        for rep in reports:
            assert rep.ok(L.PL_2_99) and not rep.ok(L.PL_3)
    else:
        assert phantoms == 0
    record_table(
        f"figure5_live_{profile}",
        f"FIG5 live — locking/{profile}: {phantoms}/{N_SEEDS} runs produced "
        "an observed phantom"
        + (
            "; every such history is PL-2.99 but not PL-3"
            if expect_phantoms
            else " (long predicate locks prevent them)"
        ),
    )
