"""Incremental (online) phenomenon analysis.

:class:`IncrementalAnalysis` consumes history events one at a time and
maintains, between events, everything the batch checker derives from a full
:class:`~repro.core.history.History`:

* per-object version chains (the version order ``<<``), including the
  paper's implicit *setup* versions discovered on first read;
* the three direct-conflict edge sets of Section 4.4 — ``ww``/``wr``/``rw``,
  item and predicate flavours — keyed for O(1) dedup and cursor-flag merge;
* the G1a/G1b witness sets.

G0/G1/G2 queries are then O(1) in the steady state: each cycle phenomenon
has a :class:`_CycleMonitor` — a Pearce–Kelly dynamic topological order
over its filtered edge set — that detects the cycle at the *edge insert*
that closes it, and presence is monotone over a growing history so a
positive verdict is cached permanently.  Only the anti-dependency
phenomena (G2/G2-item) ever fall back to a full SCC pass
(:mod:`repro.core.graph`), and only in the narrow regime where their view
contains a cycle that has not yet been proven to thread an anti-dependency
edge.  Appending one transaction and re-querying therefore costs amortised
O(new edges), not O(history) — the asymptotic gap
``bench_scaling_incremental`` pins.

Interned hot path
-----------------

All internal state is keyed by dense ints from a per-analysis
:class:`~repro.core.interning.Interner`: a version is hashed exactly once
(at first mention), and from then on chains are lists of version ids,
conflict edges are 6-int tuples, and the per-event work is int dict/list
traffic instead of dataclass hashing.  :class:`~repro.core.conflicts.Edge`
objects are materialised lazily (the :attr:`edges` property and reports);
verdicts are unchanged.

There are four cycle monitors, but their views nest — ww ⊆ ww+wr ⊆
item-only ⊆ full — and a subgraph of an acyclic graph is acyclic, so only
the first *non-latched* monitor in that chain (the frontier) is actually
maintained.  While the full view is acyclic it alone runs; when it latches
its first cycle the next monitor is brought live by replaying the
accumulated edge set once, and so on down the chain.  Workloads therefore
pay for one Pearce–Kelly structure at a time instead of four, and latched
monitors stop doing any maintenance at all.

:meth:`add_all` is a true batch path: events are consumed through an
inlined type-dispatched loop and the chunk's Pearce–Kelly insertions are
buffered and applied in bulk (:meth:`_CycleMonitor.add_many`), amortising
the per-edge bookkeeping; any structural repair or per-event ``watch``
probe flushes the buffer first, so the final state is identical to feeding
events one at a time.

Edges are *activated* lazily: a conflict materialises only once both
endpoint transactions have committed, mirroring the batch extractors'
restriction to ``committed_all``.  Most chain updates are appends and apply
purely incrementally; the rare structural mutation (a mid-chain insert from
an out-of-order install key or a late-discovered setup version) triggers a
localized rebuild of the affected object's edges only.

Install order
-------------

Batch histories order versions either explicitly or by the default rule
(committed transactions' final write events).  The incremental analysis
supports the same spectrum through install keys:

* ``order_mode="event"`` (default) keys a committed final version by its
  write event's index — exactly the :class:`History` default order;
* ``order_mode="commit"`` keys by a monotone commit counter — the order
  multi-version engines and :func:`~repro.workloads.synthetic_history` use;
* per-commit ``positions`` (as passed by
  :meth:`~repro.engine.recorder.HistoryRecorder.commit`) override the key
  per object;
* ``version_order_hint`` pins the final chain of selected objects outright
  (used when replaying a history whose explicit order is known up front).

``to_history()`` materialises the accumulated events and chains as a
regular :class:`History`, and ``check()`` runs the batch checker over it
when full witness reports are needed; the incremental layer itself answers
presence and level queries without that round trip.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from . import graph as _g
from .conflicts import DepKind, Edge, PredicateDepMode
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .interning import Interner
from .objects import INIT_TID, Version, relation_of
from .phenomena import Phenomenon, PhenomenonReport, Witness
from .predicates import Predicate, VersionSet

__all__ = ["IncrementalAnalysis"]

#: Phenomena the incremental layer answers directly.
CORE_PHENOMENA: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1A,
    Phenomenon.G1B,
    Phenomenon.G1C,
    Phenomenon.G1,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)

#: Edge kind codes used in interned edge keys (indexes into ``_KINDS``).
_KW, _KR, _KA = 0, 1, 2  # ww, wr, rw
_KINDS: Tuple[DepKind, ...] = (DepKind.WW, DepKind.WR, DepKind.RW)

#: Interned edge key: (src, dst, kind code, oid, vid, pid) — pid 0 = no
#: predicate.  The dict value is the cursor flag.
_IKey = Tuple[int, int, int, int, int, int]


class _PreadRec:
    """Mutable record of one predicate read."""

    __slots__ = ("tid", "predicate", "vset", "committed")

    def __init__(self, tid: int, predicate: Predicate, vset: VersionSet):
        self.tid = tid
        self.predicate = predicate
        self.vset = vset
        self.committed = False


class _CycleMonitor:
    """Incremental cycle detection over one filtered view of the DSG.

    Maintains a topological order of the collapsed transaction graph with
    the Pearce–Kelly dynamic algorithm: inserting an edge that already
    respects the order costs O(1) (the overwhelmingly common case — DSG
    edges mostly point from older commits to newer ones), and a violating
    insert reorders only the affected region between the two endpoints'
    ranks.  The first insert that closes a cycle latches :attr:`has_cycle`.

    The latch is permanent because cycle presence in every view we monitor
    is monotone over a growing history: chain repairs replace edges with
    transitive refinements (a mid-chain insert turns ``u->w`` into
    ``u->v, v->w``), so a repair can reroute a cycle but never break the
    last one.  Removals therefore only decrement the pair refcounts; they
    never re-open the latch — which makes every subsequent presence query
    O(1).  For the same reason a latched monitor stops maintaining its
    order and adjacency outright: nothing downstream reads them once the
    verdict is permanently True.
    """

    __slots__ = ("order", "_next_rank", "fwd", "back", "count", "has_cycle")

    def __init__(self) -> None:
        self.order: Dict[int, int] = {}
        self._next_rank = 0
        self.fwd: Dict[int, Set[int]] = {}
        self.back: Dict[int, Set[int]] = {}
        self.count: Dict[Tuple[int, int], int] = {}
        self.has_cycle = False

    def add(self, u: int, v: int) -> None:
        if u == v or self.has_cycle:
            return  # a self-loop is a singleton SCC, not a cycle
        key = (u, v)
        count = self.count
        refs = count.get(key)
        if refs is not None:
            count[key] = refs + 1
            return  # collapsed pair already in the graph
        count[key] = 1
        order = self.order
        rank_u = order.get(u)
        if rank_u is None:
            rank_u = order[u] = self._next_rank
            self._next_rank += 1
            self.fwd[u] = {v}
            self.back[u] = set()
        else:
            self.fwd[u].add(v)
        rank_v = order.get(v)
        if rank_v is None:
            rank_v = order[v] = self._next_rank
            self._next_rank += 1
            self.fwd[v] = set()
            self.back[v] = {u}
        else:
            self.back[v].add(u)
        if rank_u > rank_v:
            self._reorder(u, v, rank_u, rank_v)

    def add_many(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk insert of collapsed pairs — one locals-hoisted pass, with
        the Pearce–Kelly reorder firing only on order-violating inserts."""
        if self.has_cycle:
            return
        count = self.count
        order = self.order
        fwd = self.fwd
        back = self.back
        count_get = count.get
        order_get = order.get
        next_rank = self._next_rank
        for pair in pairs:
            u, v = pair
            if u == v:
                continue
            refs = count_get(pair)
            if refs is not None:
                count[pair] = refs + 1
                continue
            count[pair] = 1
            rank_u = order_get(u)
            if rank_u is None:
                rank_u = order[u] = next_rank
                next_rank += 1
                fwd[u] = {v}
                back[u] = set()
            else:
                fwd[u].add(v)
            rank_v = order_get(v)
            if rank_v is None:
                rank_v = order[v] = next_rank
                next_rank += 1
                fwd[v] = set()
                back[v] = {u}
            else:
                back[v].add(u)
            if rank_u > rank_v:
                self._next_rank = next_rank
                self._reorder(u, v, rank_u, rank_v)
                if self.has_cycle:
                    return
                next_rank = self._next_rank
        self._next_rank = next_rank

    def _reorder(self, u: int, v: int, rank_u: int, rank_v: int) -> None:
        # Order violated: discover the affected region (Pearce–Kelly).
        # Forward from v, pruned to ranks below rank(u): in a valid order
        # any v=>u path stays inside that window, so meeting u here is the
        # definitive cycle test for the new edge.
        order, fwd, back = self.order, self.fwd, self.back
        lower, upper = rank_v, rank_u
        delta_f: List[int] = []
        seen = {v}
        stack = [v]
        while stack:
            node = stack.pop()
            delta_f.append(node)
            for succ in fwd[node]:
                if succ == u:
                    self.has_cycle = True
                    return
                if succ not in seen and order[succ] < upper:
                    seen.add(succ)
                    stack.append(succ)
        # Backward from u, pruned to ranks above rank(v).
        delta_b: List[int] = []
        seen = {u}
        stack = [u]
        while stack:
            node = stack.pop()
            delta_b.append(node)
            for pred in back[node]:
                if pred not in seen and order[pred] > lower:
                    seen.add(pred)
                    stack.append(pred)
        # Re-rank: the affected nodes permute among their own old ranks —
        # ancestors of u first, then descendants of v, each group keeping
        # its relative order.  Nodes outside the region are untouched.
        delta_b.sort(key=order.__getitem__)
        delta_f.sort(key=order.__getitem__)
        moved = delta_b + delta_f
        for rank, node in zip(sorted(order[n] for n in moved), moved):
            order[node] = rank

    def remove(self, u: int, v: int) -> None:
        if u == v:
            return
        refs = self.count.get((u, v), 0)
        if refs <= 1:
            self.count.pop((u, v), None)
            if refs:
                self.fwd[u].discard(v)
                self.back[v].discard(u)
        else:
            self.count[(u, v)] = refs - 1


class IncrementalAnalysis:
    """Online DSG maintenance and G-phenomenon detection.

    Parameters
    ----------
    mode:
        Predicate-read-dependency quantification (as in the batch checker).
    order_mode:
        ``"event"`` or ``"commit"`` — how committed final versions are keyed
        into their object's version order (see the module docstring).
    version_order_hint:
        Optional explicit chains ``{obj: [v1, v2, ...]}``; versions listed
        here install at their hinted position regardless of ``order_mode``.
    watch:
        Phenomena to probe after every consumed event; ``on_phenomenon(ph,
        analysis)`` fires the first time each one becomes present — this is
        the engine's commit-time online monitor hook.
    """

    __slots__ = (
        "metrics",
        "tracer",
        "_ev_counter",
        "_edge_counter",
        "mode",
        "order_mode",
        "events",
        "committed",
        "aborted",
        "_in",
        "_hint_by_version",
        "_hint_key",
        "_chains",
        "_unborn_vid",
        "_rel",
        "_setup_count",
        "_install_keys",
        "_pos",
        "_commit_counter",
        "_writes_ev",
        "_versions_of_tid",
        "_final",
        "_intermediate",
        "_reads_by_version",
        "_reads_of_tid",
        "_preads_of_tid",
        "_preads_by_relation",
        "_preads_by_vset_version",
        "_setup_versions",
        "_setup_value",
        "_objects_by_relation",
        "_node_tids",
        "_edges",
        "_edge_keys_by_obj",
        "_keyed_built",
        "_g1a",
        "_g1b",
        "_gen",
        "_preds",
        "_pred_ids",
        "_mon_g0",
        "_mon_g1c",
        "_mon_full",
        "_mon_item",
        "_cascade",
        "_frontier",
        "_deferring",
        "_pending",
        "_present",
        "_presence_cache",
        "_match_caches",
        "watch",
        "on_phenomenon",
        "_fired",
    )

    def __init__(
        self,
        *,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        order_mode: str = "event",
        version_order_hint: Optional[Mapping[str, Sequence[Version]]] = None,
        watch: Iterable[Phenomenon] = (),
        on_phenomenon: Optional[Callable[[Phenomenon, "IncrementalAnalysis"], None]] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ):
        if order_mode not in ("event", "commit"):
            raise ValueError(f"unknown order_mode {order_mode!r}")
        # Optional observability sinks (see :mod:`repro.observability`):
        # per-event/per-edge counters and phenomenon events.
        self.metrics = metrics
        self.tracer = tracer
        self._ev_counter = (
            metrics.counter(
                "incremental_events_total", "events consumed by online analyses"
            ).labels()
            if metrics is not None
            else None
        )
        self._edge_counter = (
            metrics.counter(
                "incremental_edges_total", "DSG edges inserted by online analyses"
            ).labels()
            if metrics is not None
            else None
        )
        self.mode = mode
        self.order_mode = order_mode
        self.events: List[Event] = []
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()
        # Hints are recorded per Version and resolved to a vid lazily when
        # the version is first interned, so hinted-but-never-mentioned
        # objects do not enter the object universe early.
        self._hint_by_version: Dict[Version, int] = {}
        if version_order_hint:
            for chain in version_order_hint.values():
                for i, v in enumerate(chain):
                    if not v.is_unborn:
                        self._hint_by_version[v] = i
        self._hint_key: Dict[int, int] = {}  # vid -> hinted position
        # --- interned identity space -----------------------------------
        self._in = Interner()
        # --- chains (all indexed by oid) --------------------------------
        self._chains: List[List[int]] = []  # oid -> [vid, ...], [0] unborn
        self._unborn_vid: List[int] = []
        self._rel: List[str] = []  # oid -> relation
        self._setup_count: List[int] = []
        self._install_keys: List[List[Any]] = []  # committed section keys
        self._pos: Dict[int, int] = {}  # vid -> position in its chain
        self._commit_counter = 0
        # --- events indexes (vid/tid keyed) -----------------------------
        self._writes_ev: Dict[int, Write] = {}  # vid -> write event
        self._versions_of_tid: Dict[int, List[int]] = {}
        #: (oid, tid) -> (final vid, final write event index).
        self._final: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: Written versions later superseded by the same writer — the G1b
        #: candidates.  A set probe here replaces a tuple-keyed dict probe
        #: in the commit-time read loop; membership is monotone because a
        #: superseded version can never become final again.
        self._intermediate: Set[int] = set()
        self._reads_by_version: Dict[int, List[Read]] = {}
        self._reads_of_tid: Dict[int, List[Tuple[int, Read]]] = {}
        self._preads_of_tid: Dict[int, List[_PreadRec]] = {}
        self._preads_by_relation: Dict[str, List[_PreadRec]] = {}
        self._preads_by_vset_version: Dict[int, List[_PreadRec]] = {}
        self._setup_versions: Set[int] = set()
        self._setup_value: Dict[int, Any] = {}
        self._objects_by_relation: Dict[str, List[str]] = {}
        self._node_tids: Set[int] = set()  # committed txns + setup installers
        # --- edges and verdict caches ----------------------------------
        self._edges: Dict[_IKey, bool] = {}  # key -> cursor flag
        # oid -> chain-dependent edge keys; built lazily at the first
        # structural repair (append-only runs never pay for it).
        self._edge_keys_by_obj: Dict[int, Set[_IKey]] = {}
        self._keyed_built = False
        self._g1a: Set[Tuple[int, int]] = set()  # (reader tid, vid)
        self._g1b: Set[Tuple[int, int]] = set()
        self._gen = 0
        self._preds: List[Optional[Predicate]] = [None]  # pid -> predicate
        self._pred_ids: Dict[Predicate, int] = {}
        # Incremental cycle monitors, one per phenomenon edge filter:
        # ww only (G0), ww+wr (G1c), everything (gates G2), and everything
        # except predicate anti-dependencies (gates G2-item).  The views
        # nest (g0 ⊆ g1c ⊆ item ⊆ full), so only the first non-latched
        # monitor in that chain — the *frontier* — is actually maintained:
        # while it is acyclic every smaller view is trivially acyclic, and
        # when it latches the next monitor is brought live by replaying the
        # accumulated edge set once (see the module docstring).
        self._mon_g0 = _CycleMonitor()
        self._mon_g1c = _CycleMonitor()
        self._mon_full = _CycleMonitor()
        self._mon_item = _CycleMonitor()
        self._cascade = (self._mon_full, self._mon_item, self._mon_g1c, self._mon_g0)
        self._frontier = 0  # index into _cascade; 4 = everything latched
        # Batch mode: edge->monitor feeds buffered for bulk insertion.
        self._deferring = False
        self._pending: List[_IKey] = []
        # Phenomena already proven present — permanent (presence over a
        # growing history is monotone), so re-queries are O(1).
        self._present: Set[Phenomenon] = set()
        self._presence_cache: Dict[Phenomenon, Tuple[int, bool]] = {}
        self._match_caches: Dict[int, Dict[int, bool]] = {}  # pid -> {vid: bool}
        # --- monitoring -------------------------------------------------
        self.watch: Tuple[Phenomenon, ...] = tuple(watch)
        for ph in self.watch:
            if ph not in CORE_PHENOMENA:
                raise ValueError(
                    f"cannot watch {ph}: only core phenomena "
                    "(G0/G1a/G1b/G1c/G1/G2-item/G2) are maintained online"
                )
        self.on_phenomenon = on_phenomenon
        self._fired: Set[Phenomenon] = set()

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------

    def _register_object(self, obj: str) -> int:
        """Object id, creating the chain structures on first mention."""
        in_ = self._in
        oid = in_.obj_id.get(obj)
        if oid is not None:
            return oid
        oid = in_.intern_object(obj)
        uv = in_.intern_version(Version.unborn(obj))
        self._unborn_vid.append(uv)
        self._chains.append([uv])
        self._pos[uv] = 0
        self._setup_count.append(0)
        self._install_keys.append([])
        rel = relation_of(obj)
        self._rel.append(rel)
        self._objects_by_relation.setdefault(rel, []).append(obj)
        return oid

    def _vid_of(self, v: Version) -> int:
        """Version id, interning (and registering the object) on first use."""
        in_ = self._in
        vid = in_.version_id.get(v)
        if vid is None:
            oid = in_.obj_id.get(v.obj)
            if oid is None:
                oid = self._register_object(v.obj)
                if v.tid == INIT_TID:
                    # Registering interned the unborn version, which may be
                    # the very version being asked for.
                    vid = in_.version_id.get(v)
                    if vid is not None:
                        return vid
            vid = in_.version_id[v] = len(in_.versions)
            in_.versions.append(v)
            in_.ver_obj.append(oid)
            in_.ver_tid.append(v.tid)
            in_.ver_seq.append(v.seq)
            if self._hint_by_version:
                hint = self._hint_by_version.get(v)
                if hint is not None:
                    self._hint_key[vid] = hint
        return vid

    def _pid_of(self, predicate: Optional[Predicate]) -> int:
        if predicate is None:
            return 0
        pid = self._pred_ids.get(predicate)
        if pid is None:
            pid = len(self._preds)
            self._preds.append(predicate)
            self._pred_ids[predicate] = pid
        return pid

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------

    def add(
        self,
        event: Event,
        *,
        finals: Optional[Mapping[str, Version]] = None,
        positions: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Consume one event.

        ``finals``/``positions`` apply to :class:`Commit` events only and
        mirror :meth:`HistoryRecorder.commit`: the versions to install (by
        default the transaction's final write per object) and their install
        keys (by default per ``order_mode``).
        """
        index = len(self.events)
        self.events.append(event)
        if self._ev_counter is not None:
            self._ev_counter.inc()
        if isinstance(event, Write):
            self._on_write(event, index)
        elif isinstance(event, Read):
            self._on_read(event)
        elif isinstance(event, PredicateRead):
            self._on_pread(event)
        elif isinstance(event, Commit):
            self._on_commit(event.tid, finals, positions)
        elif isinstance(event, Abort):
            self._on_abort(event.tid)
        elif isinstance(event, Begin):
            pass
        if self.watch and self.on_phenomenon is not None:
            for ph in self.watch:
                if ph not in self._fired and self.exhibits(ph):
                    self._fired.add(ph)
                    self.on_phenomenon(ph, self)

    def add_all(
        self, events: Iterable[Event], *, chunk: int = 8192
    ) -> "IncrementalAnalysis":
        """Feed a whole event sequence through the batch path.

        Equivalent to ``add()`` in a loop, but events go through an inlined
        dispatch and the chunk's Pearce–Kelly edge insertions are buffered
        and applied in bulk every ``chunk`` events, so per-edge monitor
        bookkeeping amortises across the batch.  With an active ``watch``
        hook the per-event path is used instead (the hook must fire at the
        exact latching event).
        """
        if self.watch and self.on_phenomenon is not None:
            for ev in events:
                self.add(ev)
            return self
        ev_list = self.events
        append = ev_list.append
        on_write = self._on_write
        on_read = self._on_read
        on_commit = self._on_commit
        on_abort = self._on_abort
        on_pread = self._on_pread
        counter = 0
        self._deferring = True
        try:
            for ev in events:
                t = type(ev)
                if t is Write:
                    index = len(ev_list)
                    append(ev)
                    on_write(ev, index)
                elif t is Read:
                    append(ev)
                    on_read(ev)
                elif t is Commit:
                    append(ev)
                    on_commit(ev.tid, None, None)
                elif t is Abort:
                    append(ev)
                    on_abort(ev.tid)
                elif t is Begin:
                    append(ev)
                elif t is PredicateRead:
                    append(ev)
                    on_pread(ev)
                else:  # subclassed events: full isinstance dispatch
                    index = len(ev_list)
                    ev_list.append(ev)
                    if isinstance(ev, Write):
                        on_write(ev, index)
                    elif isinstance(ev, Read):
                        on_read(ev)
                    elif isinstance(ev, PredicateRead):
                        self._on_pread(ev)
                    elif isinstance(ev, Commit):
                        self._on_commit(ev.tid, None, None)
                    elif isinstance(ev, Abort):
                        self._on_abort(ev.tid)
                counter += 1
                if counter >= chunk:
                    if self._ev_counter is not None:
                        self._ev_counter.inc(counter)
                    counter = 0
                    self._flush_pending()
        finally:
            self._flush_pending()
            self._deferring = False
        if counter and self._ev_counter is not None:
            self._ev_counter.inc(counter)
        return self

    def finish(self) -> None:
        """Section 4.2's completion rule: abort every unfinished
        transaction (mirrors ``History(auto_complete=True)``)."""
        finished = self.committed | self.aborted
        pending = []
        seen: Dict[int, None] = {}
        for ev in self.events:
            seen.setdefault(ev.tid, None)
        for tid in seen:
            if tid not in finished:
                pending.append(Abort(tid))
        for ev in pending:
            self.add(ev)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_write(self, ev: Write, index: int) -> None:
        in_ = self._in
        version = ev.version
        vid = in_.version_id.get(version)
        if vid is None:
            vid = self._vid_of(version)
        tid = ev.tid
        self._writes_ev[vid] = ev
        vlist = self._versions_of_tid.get(tid)
        if vlist is None:
            self._versions_of_tid[tid] = [vid]
        else:
            vlist.append(vid)
        if vid in self._setup_versions:
            # A version previously mis-classified as setup (read before its
            # write — invalid per Section 4.2, but stay consistent anyway).
            self._setup_versions.discard(vid)
            self._setup_value.pop(vid, None)
            self._invalidate_matches(vid)
        key = (in_.ver_obj[vid], tid)
        cur = self._final.get(key)
        if cur is None:
            self._final[key] = (vid, index)
        elif in_.ver_seq[vid] > in_.ver_seq[cur[0]]:
            self._final[key] = (vid, index)
            self._now_intermediate(cur[0])
        else:
            self._now_intermediate(vid)

    def _now_intermediate(self, old: int) -> None:
        """``old`` stopped being its writer's final modification; committed
        transactions that observed it are now G1b witnesses."""
        self._intermediate.add(old)
        wtid = self._in.ver_tid[old]
        for read in self._reads_by_version.get(old, ()):
            if read.tid != wtid and read.tid in self.committed:
                self._add_g1b(read.tid, old)
        for rec in self._preads_by_vset_version.get(old, ()):
            if rec.committed and rec.tid != wtid:
                self._add_g1b(rec.tid, old)

    def _on_read(self, ev: Read) -> None:
        in_ = self._in
        version = ev.version
        vid = in_.version_id.get(version)
        if vid is None:
            vid = self._vid_of(version)
        readers = self._reads_by_version.get(vid)
        if readers is None:
            self._reads_by_version[vid] = [ev]
        else:
            readers.append(ev)
        mine = self._reads_of_tid.get(ev.tid)
        if mine is None:
            self._reads_of_tid[ev.tid] = [(vid, ev)]
        else:
            mine.append((vid, ev))
        if vid not in self._writes_ev and in_.ver_tid[vid] != INIT_TID:
            self._note_possible_setup(vid)
        if (
            ev.value is not None
            and vid in self._setup_versions
            and self._setup_value.get(vid) is None
        ):
            # First observed value of a setup version: predicate matching
            # may change retroactively — repair the object.
            self._setup_value[vid] = ev.value
            self._invalidate_matches(vid)
            self._repair_object(self._in.ver_obj[vid])

    def _on_pread(self, ev: PredicateRead) -> None:
        rec = _PreadRec(ev.tid, ev.predicate, ev.vset)
        self._preads_of_tid.setdefault(ev.tid, []).append(rec)
        for rel in ev.predicate.relations:
            self._preads_by_relation.setdefault(rel, []).append(rec)
        for v in ev.vset.versions():
            vid = self._vid_of(v)
            self._preads_by_vset_version.setdefault(vid, []).append(rec)
            if vid not in self._writes_ev and self._in.ver_tid[vid] != INIT_TID:
                self._note_possible_setup(vid)
        for obj in ev.vset.objects():
            self._register_object(obj)

    def _on_commit(
        self,
        tid: int,
        finals: Optional[Mapping[str, Version]],
        positions: Optional[Mapping[str, Any]],
    ) -> None:
        self.committed.add(tid)
        self._node_tids.add(tid)
        in_ = self._in
        ver_tid = in_.ver_tid
        ver_obj = in_.ver_obj
        objects = in_.objects
        written = self._versions_of_tid.get(tid, ())
        final = self._final
        fin: Dict[str, int]
        if finals is None:
            fin = {}
            for vid in written:
                obj = objects[ver_obj[vid]]
                if obj not in fin:
                    fin[obj] = final[(ver_obj[vid], tid)][0]
        else:
            fin = {obj: self._vid_of(v) for obj, v in finals.items()}
        hints = self._hint_key
        commit_keyed = self.order_mode == "commit"
        if positions is None and not hints and commit_keyed:
            # The dominant shape: default install keys from the commit
            # counter, no explicit positions and no order hints.
            counter = self._commit_counter
            install = self._install
            for obj in (sorted(fin) if len(fin) > 1 else fin):
                vid = fin[obj]
                counter += 1
                install(ver_obj[vid], vid, (0, counter))
            self._commit_counter = counter
        else:
            for obj in sorted(fin):
                vid = fin[obj]
                oid = ver_obj[vid]
                if positions is not None and obj in positions:
                    key = (0, positions[obj])
                elif hints and vid in hints:
                    key = (-1, hints[vid])
                elif commit_keyed:
                    self._commit_counter += 1
                    key = (0, self._commit_counter)
                else:
                    ent = final.get((oid, tid))
                    key = (0, ent[1] if ent is not None else len(self.events))
                self._install(oid, vid, key)
        # Item reads by the newly committed transaction.
        reads = self._reads_of_tid.get(tid)
        if reads:
            aborted = self.aborted
            node_tids = self._node_tids
            pos = self._pos
            chains = self._chains
            intermediate = self._intermediate
            add_edge = self._add_edge
            for vid, read in reads:
                writer = ver_tid[vid]
                oid = ver_obj[vid]
                if writer in aborted:
                    self._add_g1a(tid, vid)
                if writer != tid:
                    if vid in intermediate:
                        self._add_g1b(tid, vid)
                    if (
                        writer != INIT_TID
                        and writer in node_tids
                        and writer not in aborted
                    ):
                        add_edge(writer, tid, _KR, oid, vid, 0, False)
                idx = pos.get(vid)
                if idx is not None:
                    chain = chains[oid]
                    if idx + 1 < len(chain):
                        nxt = chain[idx + 1]
                        ntid = ver_tid[nxt]
                        if ntid != tid:
                            add_edge(
                                tid, ntid, _KA, oid, nxt, 0, read.cursor
                            )
        # Predicate reads by the newly committed transaction.
        for rec in self._preads_of_tid.get(tid, ()):
            rec.committed = True
            for v in rec.vset.versions():
                vid = self._vid_of(v)
                if ver_tid[vid] in self.aborted:
                    self._add_g1a(tid, vid)
                if ver_tid[vid] != tid and self._is_intermediate(vid):
                    self._add_g1b(tid, vid)
            for oid in self._vset_oids(rec):
                self._pread_read_edges(rec, oid)
                self._pread_anti_edges(rec, oid)
        # The new commit as a read-dependency *source*: readers that
        # committed earlier were waiting on this writer.
        if written:
            committed = self.committed
            add_edge = self._add_edge
            for vid in written:
                for read in self._reads_by_version.get(vid, ()):
                    rt = read.tid
                    if rt != tid and rt in committed:
                        add_edge(tid, rt, _KR, ver_obj[vid], vid, 0, False)

    def _on_abort(self, tid: int) -> None:
        self.aborted.add(tid)
        committed = self.committed
        for vid in self._versions_of_tid.get(tid, ()):
            for read in self._reads_by_version.get(vid, ()):
                if read.tid in committed:
                    self._add_g1a(read.tid, vid)
            for rec in self._preads_by_vset_version.get(vid, ()):
                if rec.committed:
                    self._add_g1a(rec.tid, vid)

    # ------------------------------------------------------------------
    # chains
    # ------------------------------------------------------------------

    def _note_possible_setup(self, vid: int) -> None:
        """A read (or version-set selection) of a never-written version is a
        setup version: implicit initial state, installed right after the
        unborn version (cf. ``History._build_order``).  Callers pre-check
        the unborn/written fast path."""
        if vid in self._setup_versions:
            return
        self._setup_versions.add(vid)
        self._setup_value.setdefault(vid, None)
        in_ = self._in
        self._node_tids.add(in_.ver_tid[vid])
        oid = in_.ver_obj[vid]
        if self._hint_key:
            hint = self._hint_key.get(vid)
            if hint is not None:
                # An explicit order hint may place a setup version anywhere
                # in the chain; honour it instead of the front position.
                self._install(oid, vid, (-1, hint))
                return
        chain = self._chains[oid]
        pos = 1 + self._setup_count[oid]
        self._setup_count[oid] += 1
        if pos == len(chain):
            chain.append(vid)
            self._pos[vid] = pos
            self._append_effects(oid, pos)
        else:
            chain.insert(pos, vid)
            self._repair_object(oid)

    def _install(self, oid: int, vid: int, key: Any) -> None:
        """Install a committed final version with the given sort key."""
        if vid in self._pos:
            return  # already installed (duplicate finals are harmless)
        keys = self._install_keys[oid]
        if not keys or key >= keys[-1]:
            # In-order install (the overwhelmingly common case: commit
            # counters and event indexes are monotone) — pure append.
            at = len(keys)
            keys.append(key)
        else:
            at = bisect_right(keys, key)
            keys.insert(at, key)
        chain = self._chains[oid]
        pos = 1 + self._setup_count[oid] + at
        if pos == len(chain):
            chain.append(vid)
            self._pos[vid] = pos
            self._append_effects(oid, pos)
        else:
            chain.insert(pos, vid)
            self._repair_object(oid)

    def _append_effects(self, oid: int, pos: int) -> None:
        """Edge updates after appending ``chain[pos]`` at the tail."""
        chain = self._chains[oid]
        vid = chain[pos]
        prev = chain[pos - 1]
        in_ = self._in
        ver_tid = in_.ver_tid
        vtid = ver_tid[vid]
        ptid = ver_tid[prev]
        if ptid != INIT_TID and ptid != vtid:
            self._add_edge(ptid, vtid, _KW, oid, vid, 0, False)
        readers = self._reads_by_version.get(prev)
        if readers:
            committed = self.committed
            add_edge = self._add_edge
            for read in readers:
                rt = read.tid
                if rt != vtid and rt in committed:
                    add_edge(rt, vtid, _KA, oid, vid, 0, read.cursor)
        recs = self._preads_by_relation.get(self._rel[oid])
        if recs:
            obj = in_.objects[oid]
            unborn = self._unborn_vid[oid]
            for rec in recs:
                if not rec.committed:
                    continue
                selected = rec.vset.get(obj)
                if selected is None or selected.tid == INIT_TID:
                    svid: Optional[int] = unborn
                    idx: Optional[int] = 0
                else:
                    svid = in_.version_id.get(selected)
                    idx = None if svid is None else self._pos.get(svid)
                if svid == vid:
                    # The selected version itself just installed: the read-
                    # dependency edges of this (pread, object) pair now exist.
                    self._pread_read_edges(rec, oid)
                    continue
                if idx is None:
                    continue  # uninstalled selection yields no edges (yet)
                if (
                    pos > idx
                    and vtid != rec.tid
                    and self._changes_at(chain, pos, rec.predicate)
                ):
                    self._add_edge(
                        rec.tid, vtid, _KA, oid, vid, self._pid_of(rec.predicate), False
                    )

    def _repair_object(self, oid: int) -> None:
        """Localized rebuild after a structural (non-append) chain change:
        drop and recompute every chain-dependent edge of ``oid``."""
        self._flush_pending()
        if not self._keyed_built:
            self._keyed_built = True
            index: Dict[int, Set[_IKey]] = {}
            for key in self._edges:
                if key[2] != _KR or key[5]:
                    index.setdefault(key[3], set()).add(key)
            self._edge_keys_by_obj = index
        for key in self._edge_keys_by_obj.get(oid, ()):
            if self._edges.pop(key, None) is not None:
                self._feed_remove(key[0], key[1], key[2], key[5])
        self._edge_keys_by_obj[oid] = set()
        self._gen += 1
        chain = self._chains[oid]
        pos_map = self._pos
        for i, vid in enumerate(chain):
            pos_map[vid] = i
        in_ = self._in
        ver_tid = in_.ver_tid
        committed = self.committed
        add_edge = self._add_edge
        for pos in range(1, len(chain)):
            vid, prev = chain[pos], chain[pos - 1]
            vtid = ver_tid[vid]
            ptid = ver_tid[prev]
            if ptid != INIT_TID and ptid != vtid:
                add_edge(ptid, vtid, _KW, oid, vid, 0, False)
            for read in self._reads_by_version.get(prev, ()):
                rt = read.tid
                if rt in committed and rt != vtid:
                    add_edge(rt, vtid, _KA, oid, vid, 0, read.cursor)
        for rec in self._preads_by_relation.get(self._rel[oid], ()):
            if rec.committed:
                self._pread_read_edges(rec, oid)
                self._pread_anti_edges(rec, oid)

    # ------------------------------------------------------------------
    # predicate machinery
    # ------------------------------------------------------------------

    def _vset_oids(self, rec: _PreadRec) -> Tuple[int, ...]:
        obj_id = self._in.obj_id
        oids: Dict[int, None] = {}
        for rel in rec.predicate.relations:
            for obj in self._objects_by_relation.get(rel, ()):
                oids.setdefault(obj_id[obj], None)
        for obj in rec.vset.objects():
            if rec.predicate.covers(obj):
                oids.setdefault(self._register_object(obj), None)
        return tuple(oids)

    def _match_cache(self, predicate: Predicate) -> Dict[int, bool]:
        pid = self._pid_of(predicate)
        cache = self._match_caches.get(pid)
        if cache is None:
            cache = self._match_caches[pid] = {}
        return cache

    def _invalidate_matches(self, vid: int) -> None:
        for cache in self._match_caches.values():
            cache.pop(vid, None)

    def _version_matches(self, predicate: Predicate, vid: int) -> bool:
        cache = self._match_cache(predicate)
        hit = cache.get(vid)
        if hit is not None:
            return hit
        in_ = self._in
        if in_.ver_tid[vid] == INIT_TID:
            result = False
        else:
            write = self._writes_ev.get(vid)
            if write is None:
                result = vid in self._setup_versions and predicate.matches(
                    in_.versions[vid], self._setup_value.get(vid)
                )
            elif write.dead:
                result = False
            else:
                result = predicate.matches(in_.versions[vid], write.value)
        cache[vid] = result
        return result

    def _changes_at(self, chain: List[int], pos: int, predicate: Predicate) -> bool:
        return self._version_matches(predicate, chain[pos]) != self._version_matches(
            predicate, chain[pos - 1]
        )

    def _selected_index(self, rec: _PreadRec, oid: int) -> Optional[int]:
        selected = rec.vset.get(self._in.objects[oid])
        if selected is None:
            return 0  # implicit unborn selection
        svid = self._in.version_id.get(selected)
        return None if svid is None else self._pos.get(svid)

    def _pread_read_edges(self, rec: _PreadRec, oid: int) -> None:
        idx = self._selected_index(rec, oid)
        if idx is None or idx == 0:
            return
        chain = self._chains[oid]
        changers = [
            k for k in range(1, idx + 1) if self._changes_at(chain, k, rec.predicate)
        ]
        if self.mode is PredicateDepMode.LATEST:
            changers = changers[-1:]
        ver_tid = self._in.ver_tid
        pid = self._pid_of(rec.predicate)
        for k in changers:
            vid = chain[k]
            if ver_tid[vid] != rec.tid:
                self._add_edge(ver_tid[vid], rec.tid, _KR, oid, vid, pid, False)

    def _pread_anti_edges(self, rec: _PreadRec, oid: int) -> None:
        idx = self._selected_index(rec, oid)
        if idx is None:
            return
        chain = self._chains[oid]
        ver_tid = self._in.ver_tid
        pid = self._pid_of(rec.predicate)
        for k in range(idx + 1, len(chain)):
            vid = chain[k]
            if ver_tid[vid] != rec.tid and self._changes_at(chain, k, rec.predicate):
                self._add_edge(rec.tid, ver_tid[vid], _KA, oid, vid, pid, False)

    # ------------------------------------------------------------------
    # edge store and verdicts
    # ------------------------------------------------------------------

    def _add_edge(
        self, src: int, dst: int, kcode: int, oid: int, vid: int, pid: int, cursor: bool
    ) -> None:
        key = (src, dst, kcode, oid, vid, pid)
        edges = self._edges
        existing = edges.get(key)
        if existing is None:
            edges[key] = cursor
            self._gen += 1
            if self._edge_counter is not None:
                self._edge_counter.inc()
            # Chain-dependent flavours are re-derived on object repair; the
            # per-object key index exists only once a repair has happened.
            if self._keyed_built and (kcode != _KR or pid):
                by_obj = self._edge_keys_by_obj.get(oid)
                if by_obj is None:
                    self._edge_keys_by_obj[oid] = {key}
                else:
                    by_obj.add(key)
            if self._deferring:
                self._pending.append(key)
            else:
                self._feed_add(src, dst, kcode, pid)
        elif cursor and not existing:
            edges[key] = True
            self._gen += 1

    def _feed_add(self, u: int, v: int, kcode: int, pid: int) -> None:
        """Feed one new collapsed pair to the frontier cycle monitor."""
        lvl = self._frontier
        if lvl == 0:
            mon = self._mon_full
        elif lvl == 1:
            if kcode == _KA and pid:
                return
            mon = self._mon_item
        elif lvl == 2:
            if kcode == _KA:
                return
            mon = self._mon_g1c
        elif lvl == 3:
            if kcode != _KW:
                return
            mon = self._mon_g0
        else:
            return
        mon.add(u, v)
        if mon.has_cycle:
            self._advance_frontier()

    def _feed_remove(self, u: int, v: int, kcode: int, pid: int) -> None:
        # Only the frontier has live state; dormant monitors are rebuilt by
        # replay when activated and latched monitors never read theirs.
        lvl = self._frontier
        if lvl == 0:
            self._mon_full.remove(u, v)
        elif lvl == 1:
            if kcode != _KA or not pid:
                self._mon_item.remove(u, v)
        elif lvl == 2:
            if kcode != _KA:
                self._mon_g1c.remove(u, v)
        elif lvl == 3:
            if kcode == _KW:
                self._mon_g0.remove(u, v)

    def _advance_frontier(self) -> None:
        """The frontier monitor latched: bring the next monitor in the
        inclusion chain live by replaying the accumulated edge set once.
        Until this moment its view was a subgraph of an acyclic graph, so
        its answer was trivially False; afterwards it is fed per edge
        (cascading further if the replay itself latches it)."""
        while self._frontier < 4 and self._cascade[self._frontier].has_cycle:
            self._frontier += 1
            nxt = self._frontier
            if nxt >= 4:
                return
            pairs: List[Tuple[int, int]] = []
            for key in self._edges:
                kcode = key[2]
                if nxt == 1:
                    if kcode == _KA and key[5]:
                        continue
                elif nxt == 2:
                    if kcode == _KA:
                        continue
                elif kcode != _KW:
                    continue
                pairs.append((key[0], key[1]))
            self._cascade[nxt].add_many(pairs)

    def _flush_pending(self) -> None:
        """Apply buffered (batch-mode) monitor insertions in bulk."""
        pend = self._pending
        if not pend:
            return
        self._pending = []
        lvl = self._frontier
        if lvl >= 4:
            return
        if lvl == 0:
            pairs = [(k[0], k[1]) for k in pend]
        elif lvl == 1:
            pairs = [(k[0], k[1]) for k in pend if k[2] != _KA or not k[5]]
        elif lvl == 2:
            pairs = [(k[0], k[1]) for k in pend if k[2] != _KA]
        else:
            pairs = [(k[0], k[1]) for k in pend if k[2] == _KW]
        mon = self._cascade[lvl]
        mon.add_many(pairs)
        if mon.has_cycle:
            self._advance_frontier()

    def _add_g1a(self, tid: int, vid: int) -> None:
        if (tid, vid) not in self._g1a:
            self._g1a.add((tid, vid))
            self._gen += 1

    def _add_g1b(self, tid: int, vid: int) -> None:
        if vid in self._setup_versions:
            return  # setup versions are never intermediate
        if (tid, vid) not in self._g1b:
            self._g1b.add((tid, vid))
            self._gen += 1

    def _is_intermediate(self, vid: int) -> bool:
        return vid in self._intermediate

    def _materialise(self, key: _IKey, cursor: bool) -> Edge:
        src, dst, kcode, oid, vid, pid = key
        return Edge(
            src,
            dst,
            _KINDS[kcode],
            self._in.objects[oid],
            self._in.versions[vid],
            predicate=self._preds[pid],
            cursor=cursor,
        )

    @property
    def edges(self) -> List[Edge]:
        """The direct-conflict edges accumulated so far (materialised from
        the interned store, in insertion order)."""
        materialise = self._materialise
        return [materialise(key, cursor) for key, cursor in self._edges.items()]

    @property
    def events_consumed(self) -> int:
        """Events fed through :meth:`add` so far (free to read — no
        registry required)."""
        return len(self.events)

    @property
    def edges_inserted(self) -> int:
        """Distinct DSG edges currently held (free to read)."""
        return len(self._edges)

    # -- public read-side accessors (used by provenance) ----------------

    def latest_version(self, obj: str) -> Optional[Version]:
        """The most recently installed version of ``obj`` in the running
        version order (``None`` while the object has no installed write) —
        what a new transaction reading ``obj`` "now" would observe."""
        oid = self._in.obj_id.get(obj)
        if oid is None:
            return None
        chain = self._chains[oid]
        if len(chain) < 2:  # only the unborn version
            return None
        return self._in.versions[chain[-1]]

    def write_of(self, version: Version) -> Optional[Write]:
        """The write event that created ``version`` (``None`` for setup or
        unknown versions)."""
        vid = self._in.version_id.get(version)
        return None if vid is None else self._writes_ev.get(vid)

    def reads_of_version(self, version: Version) -> Tuple[Read, ...]:
        """The item reads that observed ``version``."""
        vid = self._in.version_id.get(version)
        if vid is None:
            return ()
        return tuple(self._reads_by_version.get(vid, ()))

    def reads_of_tid(self, tid: int) -> Tuple[Read, ...]:
        """The item reads performed by ``T_tid``."""
        return tuple(ev for _vid, ev in self._reads_of_tid.get(tid, ()))

    def predicates_read_by(self, tid: int) -> Tuple[Predicate, ...]:
        """The predicates ``T_tid`` issued predicate reads for."""
        return tuple(rec.predicate for rec in self._preads_of_tid.get(tid, ()))

    def _cycle_presence(self, keep: Callable[[Edge], bool], special=None) -> bool:
        """Whether the kept subgraph has a cycle (``special is None``) or a
        cycle through at least one ``special`` edge."""
        kept = [e for e in self.edges if keep(e)]
        adj = _g.adjacency(kept)
        comp = _g.component_index(adj)
        if special is None:
            counts: Dict[int, int] = {}
            for node, c in comp.items():
                counts[c] = counts.get(c, 0) + 1
            return any(n >= 2 for n in counts.values())
        return any(
            special(e) and comp.get(e.src) == comp.get(e.dst) for e in kept
        )

    def _gated_cycle(self, monitor: _CycleMonitor, phenomenon, keep, special) -> bool:
        """Presence of a special-edge cycle, gated on the cheap monitor.

        While ``monitor``'s view is acyclic the phenomenon is trivially
        absent (O(1)).  Once the view has *some* cycle it may still be a
        pure ww/wr (G1c) cycle, so the anti-dependency question falls back
        to the full SCC test, cached against the edge-set generation — the
        slow path runs only until the verdict flips to (permanently) True.
        """
        if not monitor.has_cycle:
            return False
        cached = self._presence_cache.get(phenomenon)
        if cached is not None and cached[0] == self._gen:
            return cached[1]
        present = self._cycle_presence(keep, special)
        self._presence_cache[phenomenon] = (self._gen, present)
        return present

    def exhibits(self, phenomenon: Phenomenon) -> bool:
        """Presence of one core phenomenon over the events consumed so far.

        O(1) in the common case: G1a/G1b read their witness sets, the
        cycle phenomena read the incremental monitors, and any phenomenon
        proven present stays present (growing a history never removes
        events, so presence is monotone) and is answered from a permanent
        cache.
        """
        if phenomenon in self._present:
            return True
        if phenomenon is Phenomenon.G1A:
            present = bool(self._g1a)
        elif phenomenon is Phenomenon.G1B:
            present = bool(self._g1b)
        elif phenomenon is Phenomenon.G0:
            present = self._mon_g0.has_cycle
        elif phenomenon is Phenomenon.G1C:
            present = self._mon_g1c.has_cycle
        elif phenomenon is Phenomenon.G1:
            present = (
                self.exhibits(Phenomenon.G1A)
                or self.exhibits(Phenomenon.G1B)
                or self.exhibits(Phenomenon.G1C)
            )
        elif phenomenon is Phenomenon.G2:
            present = self._gated_cycle(
                self._mon_full,
                phenomenon,
                lambda e: True,
                lambda e: e.kind is DepKind.RW,
            )
        elif phenomenon is Phenomenon.G2_ITEM:
            present = self._gated_cycle(
                self._mon_item,
                phenomenon,
                lambda e: not (e.kind is DepKind.RW and e.via_predicate),
                lambda e: e.kind is DepKind.RW and not e.via_predicate,
            )
        else:
            raise ValueError(
                f"{phenomenon} is not maintained incrementally; materialise "
                "with to_history()/check() for extension phenomena"
            )
        if present:
            self._present.add(phenomenon)
        return present

    def report(self, phenomenon: Phenomenon) -> PhenomenonReport:
        """Presence-only report (no witnesses — those need the batch
        analysis, see :meth:`check`)."""
        present = self.exhibits(phenomenon)
        witnesses: Tuple[Witness, ...] = ()
        versions = self._in.versions
        if phenomenon is Phenomenon.G1A and present:
            pairs = [(tid, versions[vid]) for tid, vid in self._g1a]
            witnesses = tuple(
                Witness(
                    f"committed T{tid} observed {v}, written by aborted T{v.tid}",
                    tid=tid,
                )
                for tid, v in sorted(pairs, key=lambda p: (p[0], str(p[1])))
            )
        if phenomenon is Phenomenon.G1B and present:
            pairs = [(tid, versions[vid]) for tid, vid in self._g1b]
            witnesses = tuple(
                Witness(
                    f"committed T{tid} observed intermediate version "
                    f"{v.label(explicit_seq=True)}",
                    tid=tid,
                )
                for tid, v in sorted(pairs, key=lambda p: (p[0], str(p[1])))
            )
        return PhenomenonReport(phenomenon, present, witnesses)

    def strongest_level(self, levels=None):
        """The strongest ANSI-chain level the history-so-far provides
        (``None`` when even PL-1 is violated), matching batch
        :func:`repro.core.levels.classify`."""
        from .levels import ANSI_CHAIN

        strongest = None
        for level in levels or ANSI_CHAIN:
            if not any(self.exhibits(p) for p in level.proscribed):
                if strongest is None or level.implies(strongest):
                    strongest = level
        return strongest

    def provides(self, level) -> bool:
        """Live certification: does the execution so far provide ``level``?

        True iff none of the level's proscribed phenomena is present.  The
        level must proscribe only core phenomena (the ANSI chain PL-1,
        PL-2, PL-2.99, PL-3); extension levels (PL-SI, PL-2+, PL-CS,
        PL-SS) need the batch checker — use :meth:`check`.  This is what
        the service layer calls after every commit to certify committed
        transactions at their declared levels while the workload runs.
        """
        from .levels import IsolationLevel

        if isinstance(level, str):
            level = IsolationLevel.from_string(level)
        for p in level.proscribed:
            if p not in CORE_PHENOMENA:
                raise ValueError(
                    f"{level} proscribes {p}, which is not maintained "
                    "incrementally; use check() for extension levels"
                )
        return not any(self.exhibits(p) for p in level.proscribed)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def to_history(self, *, validate: bool = False):
        """The consumed events and maintained version order as a batch
        :class:`~repro.core.history.History`."""
        from .history import History

        versions = self._in.versions
        objects = self._in.objects
        return History(
            self.events,
            {
                objects[oid]: tuple(versions[vid] for vid in chain[1:])
                for oid, chain in enumerate(self._chains)
            },
            validate=validate,
        )

    def check(self, **kwargs):
        """Full batch analysis (witnesses, extension levels) of the events
        consumed so far; see :func:`repro.check`."""
        from ..checker import check as batch_check

        return batch_check(self.to_history(), mode=self.mode, **kwargs)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"IncrementalAnalysis({len(self.events)} events, "
            f"{len(self.committed)} committed, {len(self._edges)} edges)"
        )
