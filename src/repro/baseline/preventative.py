"""The preventative baseline: phenomena P0–P3 of Berenson et al. [8].

The paper's Section 2 recounts how [8] repaired the ANSI definitions with
the *preventative* phenomena::

    P0: w1[x] ... w2[x]      ... (c1 or a1)      (dirty write)
    P1: w1[x] ... r2[x]      ... (c1 or a1)      (dirty read)
    P2: r1[x] ... w2[x]      ... (c1 or a1)      (fuzzy read)
    P3: r1[P] ... w2[y in P] ... (c1 or a1)      (phantom)

and how Section 3 shows these to be "disguised locking": they condemn any
history in which conflicting operations interleave with an unfinished
transaction, regardless of whether the commit order repairs the conflict.
This module implements them faithfully so that the SEC3 experiment can
measure exactly how many legal (PL-3-serializable) optimistic/multi-version
histories the preventative approach rejects.

The phenomena are single-version, object-level conditions: version numbers
are ignored and only the event order matters.  ``P3`` uses the loose
interpretation of [8]: T2 writes a version of an object covered by T1's
predicate such that the object satisfied the predicate before or after the
write (i.e. the write could change the predicate's result).

Locking levels (Figure 1) proscribe prefixes of the list: Degree 1 / READ
UNCOMMITTED proscribes P0; READ COMMITTED P0–P1; REPEATABLE READ P0–P2;
SERIALIZABLE P0–P3.  ``preventative_satisfies`` maps the ANSI chain levels of
:class:`~repro.core.levels.IsolationLevel` onto those prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..core.events import PredicateRead, Read, Write
from ..core.history import History
from ..core.levels import IsolationLevel
from ..core.objects import Version

__all__ = [
    "PreventativePhenomenon",
    "PreventativeReport",
    "PreventativeAnalysis",
    "preventative_proscribed",
    "preventative_satisfies",
    "preventative_classify",
]


class PreventativePhenomenon(Enum):
    P0 = "P0"
    P1 = "P1"
    P2 = "P2"
    P3 = "P3"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PreventativeReport:
    phenomenon: PreventativePhenomenon
    present: bool
    witnesses: Tuple[str, ...] = ()

    def describe(self) -> str:
        head = f"{self.phenomenon}: {'EXHIBITED' if self.present else 'absent'}"
        return head + "".join(f"\n  - {w}" for w in self.witnesses)

    def __bool__(self) -> bool:
        return self.present


_PROSCRIBED: Dict[IsolationLevel, Tuple[PreventativePhenomenon, ...]] = {
    IsolationLevel.PL_1: (PreventativePhenomenon.P0,),
    IsolationLevel.PL_2: (PreventativePhenomenon.P0, PreventativePhenomenon.P1),
    IsolationLevel.PL_2_99: (
        PreventativePhenomenon.P0,
        PreventativePhenomenon.P1,
        PreventativePhenomenon.P2,
    ),
    IsolationLevel.PL_3: (
        PreventativePhenomenon.P0,
        PreventativePhenomenon.P1,
        PreventativePhenomenon.P2,
        PreventativePhenomenon.P3,
    ),
}


def preventative_proscribed(
    level: IsolationLevel,
) -> Tuple[PreventativePhenomenon, ...]:
    """The P-phenomena the locking analogue of ``level`` proscribes."""
    try:
        return _PROSCRIBED[level]
    except KeyError:
        raise KeyError(
            f"the preventative approach defines no analogue of {level}"
        ) from None


class PreventativeAnalysis:
    """P0–P3 detection over one history, with memoized reports."""

    def __init__(self, history: History):
        self.history = history
        self._cache: Dict[PreventativePhenomenon, PreventativeReport] = {}

    def report(self, phenomenon: PreventativePhenomenon) -> PreventativeReport:
        if phenomenon not in self._cache:
            self._cache[phenomenon] = _DETECTORS[phenomenon](self.history)
        return self._cache[phenomenon]

    def exhibits(self, phenomenon: PreventativePhenomenon) -> bool:
        return self.report(phenomenon).present


def _finish(history: History, tid: int) -> int:
    idx = history.finish_index(tid)
    # Complete histories always have a finish; guard for validate=False use.
    return len(history.events) if idx is None else idx


def _detect_p0(history: History) -> PreventativeReport:
    """w1[x] ... w2[x] before T1 finishes."""
    witnesses: List[str] = []
    for i, ev in enumerate(history.events):
        if not isinstance(ev, Write):
            continue
        horizon = _finish(history, ev.tid)
        for j in range(i + 1, horizon):
            other = history.events[j]
            if (
                isinstance(other, Write)
                and other.tid != ev.tid
                and other.version.obj == ev.version.obj
            ):
                witnesses.append(
                    f"T{other.tid} wrote {other.version.obj!r} at event {j} "
                    f"while T{ev.tid}'s write at event {i} was unfinished"
                )
                break
    return PreventativeReport(
        PreventativePhenomenon.P0, bool(witnesses), tuple(witnesses)
    )


def _detect_p1(history: History) -> PreventativeReport:
    """w1[x] ... r2[x] before T1 finishes.

    In the single-version object-level model of [8] a predicate-based read
    accesses every tuple of its relations, so a predicate read by T2 over a
    relation containing an object T1 has written (and not yet finished)
    also exhibits P1.
    """
    witnesses: List[str] = []
    for i, ev in enumerate(history.events):
        if not isinstance(ev, Write):
            continue
        horizon = _finish(history, ev.tid)
        for j in range(i + 1, horizon):
            other = history.events[j]
            hit = False
            if (
                isinstance(other, Read)
                and other.version.obj == ev.version.obj
            ):
                hit = True
            elif isinstance(other, PredicateRead) and ev.version.obj in set(
                history.vset_objects(other)
            ):
                hit = True
            if hit and other.tid != ev.tid:
                witnesses.append(
                    f"T{other.tid} read {ev.version.obj!r} at event {j} "
                    f"while T{ev.tid}'s write at event {i} was unfinished"
                )
                break
    return PreventativeReport(
        PreventativePhenomenon.P1, bool(witnesses), tuple(witnesses)
    )


def _detect_p2(history: History) -> PreventativeReport:
    """r1[x] ... w2[x] before T1 finishes."""
    witnesses: List[str] = []
    for i, ev in enumerate(history.events):
        if not isinstance(ev, Read):
            continue
        horizon = _finish(history, ev.tid)
        for j in range(i + 1, horizon):
            other = history.events[j]
            if (
                isinstance(other, Write)
                and other.tid != ev.tid
                and other.version.obj == ev.version.obj
            ):
                witnesses.append(
                    f"T{other.tid} wrote {other.version.obj!r} at event {j} "
                    f"while T{ev.tid}'s read at event {i} was unfinished"
                )
                break
    return PreventativeReport(
        PreventativePhenomenon.P2, bool(witnesses), tuple(witnesses)
    )


def _detect_p3(history: History) -> PreventativeReport:
    """r1[P] ... w2[y in P] before T1 finishes.

    ``y in P``: the written version matches P, or the version it replaces
    (the latest earlier write of ``y``, else the predicate read's selection
    for ``y``) matched P — the write could change P's result either way.
    """
    witnesses: List[str] = []
    for i, ev in enumerate(history.events):
        if not isinstance(ev, PredicateRead):
            continue
        horizon = _finish(history, ev.tid)
        for j in range(i + 1, horizon):
            other = history.events[j]
            if (
                isinstance(other, Write)
                and other.tid != ev.tid
                and ev.predicate.covers(other.version.obj)
                and _write_in_predicate(history, ev, i, j, other)
            ):
                witnesses.append(
                    f"T{other.tid} wrote {other.version.obj!r} (in predicate "
                    f"{ev.predicate}) at event {j} while T{ev.tid}'s predicate "
                    f"read at event {i} was unfinished"
                )
                break
    return PreventativeReport(
        PreventativePhenomenon.P3, bool(witnesses), tuple(witnesses)
    )


def _write_in_predicate(
    history: History, pread: PredicateRead, read_idx: int, write_idx: int, write: Write
) -> bool:
    if history.version_matches(pread.predicate, write.version):
        return True
    before = _latest_write_before(history, write.version.obj, write_idx)
    if before is None:
        before = history.vset_version(pread, write.version.obj)
    if before.is_unborn:
        return False
    return history.version_matches(pread.predicate, before)


def _latest_write_before(
    history: History, obj: str, idx: int
) -> Optional[Version]:
    for j in range(idx - 1, -1, -1):
        ev = history.events[j]
        if isinstance(ev, Write) and ev.version.obj == obj:
            return ev.version
    return None


_DETECTORS = {
    PreventativePhenomenon.P0: _detect_p0,
    PreventativePhenomenon.P1: _detect_p1,
    PreventativePhenomenon.P2: _detect_p2,
    PreventativePhenomenon.P3: _detect_p3,
}


def preventative_satisfies(
    history: History,
    level: IsolationLevel,
    *,
    analysis: Optional[PreventativeAnalysis] = None,
) -> bool:
    """Whether the history would be admitted by the locking definitions of
    [8] at the analogue of ``level``."""
    analysis = analysis or PreventativeAnalysis(history)
    return not any(
        analysis.exhibits(p) for p in preventative_proscribed(level)
    )


def preventative_classify(history: History) -> Optional[IsolationLevel]:
    """The strongest ANSI-chain level whose preventative analogue admits the
    history; ``None`` when even Degree 1 rejects it (P0 occurs)."""
    analysis = PreventativeAnalysis(history)
    strongest: Optional[IsolationLevel] = None
    for level in _PROSCRIBED:
        if preventative_satisfies(history, level, analysis=analysis):
            strongest = level
    return strongest
