"""ASCII timeline rendering of histories.

One row per transaction, one column per event, time flowing left to right —
the way concurrency papers draw executions on a whiteboard::

    >>> from repro.core import parse_history
    >>> from repro.core.timeline import timeline
    >>> print(timeline(parse_history(
    ...     "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1"
    ... )))
    T1 | r(x0)  w(x1)  .      .      .  r(y0)  w(y1)  c
    T2 | .      .      r(x1)  r(y0)  c  .      .      .

Purely cosmetic: the renderer never affects verdicts.  Used by the CLI's
``timeline`` command and handy in reports and teaching material.
"""

from __future__ import annotations

from typing import List

from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .history import History

__all__ = ["timeline", "event_glyph"]


def event_glyph(event: Event) -> str:
    """A compact per-event cell label."""
    if isinstance(event, Begin):
        return f"b@{event.level}" if event.level is not None else "b"
    if isinstance(event, Commit):
        return "c"
    if isinstance(event, Abort):
        return "a"
    if isinstance(event, Write):
        tag = "del" if event.dead else "w"
        return f"{tag}({event.version.label()})"
    if isinstance(event, PredicateRead):
        return f"r[{event.predicate.name}]"
    if isinstance(event, Read):
        op = "rc" if event.cursor else "r"
        return f"{op}({event.version.label()})"
    raise TypeError(type(event).__name__)


def timeline(history: History, *, gap: str = "  ", idle: str = ".") -> str:
    """Render the history as a transaction/time grid.

    ``gap`` separates columns; ``idle`` fills cells where the transaction
    has no event.  Transactions appear in order of first activity.
    """
    tids = list(history.tids)
    glyphs = [event_glyph(ev) for ev in history.events]
    widths = [max(len(g), len(idle)) for g in glyphs]
    label_width = max((len(f"T{t}") for t in tids), default=2)
    lines: List[str] = []
    for tid in tids:
        cells = []
        for i, ev in enumerate(history.events):
            cell = glyphs[i] if ev.tid == tid else idle
            cells.append(cell.ljust(widths[i]))
        lines.append(f"T{tid}".ljust(label_width) + " | " + gap.join(cells).rstrip())
    return "\n".join(lines)
