"""Phenomenon provenance: *why* a phenomenon latched, as trace events.

When an online :class:`~repro.core.incremental.IncrementalAnalysis` proves
a phenomenon present mid-run, the verdict alone ("G2 is now exhibited") is
not actionable — the operator needs the witness: which DSG cycle closed,
through which conflict edges, backed by which raw history events.  This
module derives that witness from the incremental state at latch time and
emits it as a structured **provenance event** through a
:class:`~repro.observability.trace.Tracer`:

    {"kind": "event", "name": "phenomenon", "attrs": {
        "phenomenon": "G2",
        "cycle": [{"src": 1, "dst": 2, "kind": "rw", "obj": "x", ...}, ...],
        "events": [{"index": 4, "tid": 2, "event": "w2(x2)"}, ...]}}

Wire-up is through the two existing hooks: build the analysis with
``watch=`` and ``on_phenomenon=phenomenon_hook(tracer)`` (or call
:func:`watching_analysis`, which does both) and attach it as the engine's
``monitor=``; phenomena then latch — and narrate themselves — while the
workload runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import graph as _g
from ..core.conflicts import DepKind, Edge
from ..core.events import PredicateRead
from ..core.incremental import IncrementalAnalysis
from ..core.phenomena import Phenomenon

from .trace import Tracer

__all__ = [
    "witness_cycle",
    "provenance_record",
    "phenomenon_hook",
    "watching_analysis",
]

#: Edge filters per cycle phenomenon, mirroring the incremental monitors:
#: ``(keep, special)`` — a witness is a cycle in the kept subgraph passing
#: through at least one special edge (``special=None``: any cycle).
_CYCLE_FILTERS: Dict[Phenomenon, Tuple[Callable[[Edge], bool], Optional[Callable[[Edge], bool]]]] = {
    Phenomenon.G0: (lambda e: e.kind is DepKind.WW, None),
    Phenomenon.G1C: (
        lambda e: e.kind is DepKind.WW or e.kind is DepKind.WR,
        None,
    ),
    Phenomenon.G2: (lambda e: True, lambda e: e.kind is DepKind.RW),
    Phenomenon.G2_ITEM: (
        lambda e: not (e.kind is DepKind.RW and e.via_predicate),
        lambda e: e.kind is DepKind.RW and not e.via_predicate,
    ),
}


def witness_cycle(
    analysis: IncrementalAnalysis, phenomenon: Phenomenon
) -> Optional[List[Edge]]:
    """A concrete DSG cycle witnessing a (latched) cycle phenomenon, as a
    chained edge list, or ``None`` when the phenomenon has no cycle witness
    (not present, or a G1a/G1b-style read phenomenon)."""
    filters = _CYCLE_FILTERS.get(phenomenon)
    if filters is None:
        return None
    keep, special = filters
    kept = [e for e in analysis.edges if keep(e)]
    adj = _g.adjacency(kept)
    comp = _g.component_index(adj)
    if special is None:
        counts: Dict[int, List[int]] = {}
        for node, c in comp.items():
            counts.setdefault(c, []).append(node)
        for members in counts.values():
            if len(members) >= 2:
                return list(_g.cycle_in_component(adj, members))
        return None
    for edge in kept:
        if not special(edge) or comp.get(edge.src) != comp.get(edge.dst):
            continue
        members = {n for n, c in comp.items() if c == comp[edge.src]}
        restricted = _g.adjacency(
            e for e in kept if e.src in members and e.dst in members
        )
        path = _g.shortest_edge_path(restricted, edge.dst, edge.src)
        if path is not None:
            return [edge, *path]
    return None


def _edge_dict(edge: Edge) -> Dict[str, Any]:
    return {
        "src": edge.src,
        "dst": edge.dst,
        "kind": str(edge.kind),
        "obj": edge.obj,
        "version": str(edge.version) if edge.version else None,
        "predicate": str(edge.predicate) if edge.predicate else None,
        "cursor": edge.cursor,
        "describe": edge.describe(),
    }


def _supporting_events(
    analysis: IncrementalAnalysis, cycle: List[Edge]
) -> List[Dict[str, Any]]:
    """The raw history events behind each witness edge: the installing
    write, the reads of the conflicting version, and any predicate reads
    the edge quantifies over."""
    index_of = {id(ev): i for i, ev in enumerate(analysis.events)}
    picked: Dict[int, Any] = {}

    def take(ev: Any) -> None:
        i = index_of.get(id(ev))
        if i is not None:
            picked.setdefault(i, ev)

    for edge in cycle:
        if edge.version is not None:
            write = analysis.write_of(edge.version)
            if write is not None:
                take(write)
            for read in analysis.reads_of_version(edge.version):
                if read.tid in (edge.src, edge.dst):
                    take(read)
        if edge.kind is DepKind.RW and not edge.via_predicate:
            # The read the installer overwrote: src's reads of the object.
            for read in analysis.reads_of_tid(edge.src):
                if read.version.obj == edge.obj:
                    take(read)
        if edge.predicate is not None:
            reader = edge.src if edge.kind is DepKind.RW else edge.dst
            for pred in analysis.predicates_read_by(reader):
                if pred is edge.predicate:
                    for i, ev in enumerate(analysis.events):
                        if (
                            isinstance(ev, PredicateRead)
                            and ev.tid == reader
                            and ev.predicate is edge.predicate
                        ):
                            picked.setdefault(i, ev)
    return [
        {"index": i, "tid": ev.tid, "event": str(ev)}
        for i, ev in sorted(picked.items())
    ]


def provenance_record(
    analysis: IncrementalAnalysis, phenomenon: Phenomenon
) -> Dict[str, Any]:
    """The provenance payload for one latched phenomenon: the witness
    cycle's edges and the raw events behind them (cycle phenomena), or the
    offending reads (G1a/G1b), plus the latch position."""
    record: Dict[str, Any] = {
        "phenomenon": str(phenomenon),
        "at_event": len(analysis.events) - 1,
        "events_consumed": len(analysis.events),
    }
    cycle = witness_cycle(analysis, phenomenon)
    if cycle is not None:
        record["cycle"] = [_edge_dict(e) for e in cycle]
        record["cycle_tids"] = [e.src for e in cycle]
        record["events"] = _supporting_events(analysis, cycle)
        return record
    if phenomenon in (Phenomenon.G1A, Phenomenon.G1B, Phenomenon.G1):
        for sub in (Phenomenon.G1A, Phenomenon.G1B):
            report = analysis.report(sub)
            if report.present:
                record.setdefault("witnesses", []).extend(
                    {"phenomenon": str(sub), "description": str(w), "tid": w.tid}
                    for w in report.witnesses
                )
        if phenomenon is Phenomenon.G1 and "witnesses" not in record:
            # G1 latched through its G1c component.
            cycle = witness_cycle(analysis, Phenomenon.G1C)
            if cycle is not None:
                record["cycle"] = [_edge_dict(e) for e in cycle]
                record["cycle_tids"] = [e.src for e in cycle]
                record["events"] = _supporting_events(analysis, cycle)
    return record


def phenomenon_hook(
    tracer: Tracer,
    *,
    also: Optional[Callable[[Phenomenon, IncrementalAnalysis], None]] = None,
) -> Callable[[Phenomenon, IncrementalAnalysis], None]:
    """An ``on_phenomenon=`` callback that emits a provenance event through
    ``tracer`` each time a watched phenomenon latches; ``also`` chains a
    second callback after the event is recorded."""

    def hook(phenomenon: Phenomenon, analysis: IncrementalAnalysis) -> None:
        tracer.event("phenomenon", **provenance_record(analysis, phenomenon))
        if also is not None:
            also(phenomenon, analysis)

    return hook


#: Phenomena a provenance monitor watches by default — the concrete ones
#: (G1 is their union and would only duplicate the latch events).
DEFAULT_WATCH: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1A,
    Phenomenon.G1B,
    Phenomenon.G1C,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)


def watching_analysis(
    tracer: Tracer,
    *,
    watch: Tuple[Phenomenon, ...] = DEFAULT_WATCH,
    on_phenomenon: Optional[Callable[[Phenomenon, IncrementalAnalysis], None]] = None,
    **kwargs: Any,
) -> IncrementalAnalysis:
    """An :class:`IncrementalAnalysis` pre-wired to narrate phenomenon
    provenance through ``tracer`` — pass it as the engine's ``monitor=``."""
    return IncrementalAnalysis(
        watch=watch,
        on_phenomenon=phenomenon_hook(tracer, also=on_phenomenon),
        **kwargs,
    )
