"""Trace analytics: percentiles, critical paths, waterfalls, exports.

The service layer (:mod:`repro.service`) propagates a trace context —
``(trace_id, span_id)`` carried in every message envelope — through the
whole request path, so one transaction's retries, duplicate deliveries,
server-side lock waits and commit certification land in a single span
tree, timed on the network's logical tick clock.  This module turns those
traces (live ``tracer.records`` or a JSONL file read back with
:func:`~repro.observability.trace.read_trace`) into answers:

* :func:`verb_latencies` / :func:`latency_table` — per-verb logical-latency
  percentiles (p50/p95/p99 over ``client.request`` span durations);
* :func:`critical_path` — the latest-finisher chain through a span tree,
  the hops that actually determined when the root ended;
* :func:`waterfall` — an ASCII Gantt of a trace, one bar per span, events
  marked in place;
* :func:`contention_summary` / :func:`contention_table` — which object
  keys accrue busy replies, lock blocks and client wait ticks;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON loadable in Perfetto (``ui.perfetto.dev``) or
  ``chrome://tracing``; the original records ride along in ``args`` so
  :func:`from_chrome_trace` (and :func:`read_trace` on the exported file)
  round-trips them exactly;
* :func:`build_run_report` / :class:`RunReport` — one markdown/JSON run
  report: fault-schedule config, metrics snapshot, latency percentiles,
  top contended objects, and every latched phenomenon with its
  witness-cycle provenance inline.

Everything here is a pure function of the records, so equal traces give
byte-equal analytics — the determinism contract of the service layer
extends through the toolkit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .trace import TraceRecords, span_tree

__all__ = [
    "percentile",
    "verb_latencies",
    "latency_table",
    "critical_path",
    "cross_shard_critical_path",
    "waterfall",
    "contention_summary",
    "contention_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "from_chrome_trace",
    "replication_lag_timeline",
    "twopc_summary",
    "cluster_summary",
    "RunReport",
    "build_run_report",
]

#: Span names the service layer emits, outermost first (reference for
#: consumers; the functions below key off these).
SERVICE_SPANS = ("stress.run", "client.txn", "client.request", "net.msg", "server.handle")


# ---------------------------------------------------------------------------
# latency percentiles
# ---------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100)
    return ordered[min(int(rank), len(ordered)) - 1]


def verb_latencies(
    records: Iterable[Dict[str, Any]],
    *,
    span_name: str = "client.request",
    key: str = "verb",
) -> Dict[str, Dict[str, float]]:
    """Per-verb logical-latency summary over request span durations.

    Durations are ``end - start`` of every closed ``span_name`` span —
    for service traces that is the full client-observed latency of one
    logical operation, retries and backoff included, in logical ticks.
    Returns ``{verb: {count, p50, p95, p99, mean, max}}``.
    """
    by_verb: Dict[str, List[float]] = {}
    for r in records:
        if r.get("kind") != "span" or r.get("name") != span_name:
            continue
        verb = str(r.get("attrs", {}).get(key, "?"))
        by_verb.setdefault(verb, []).append(r["end"] - r["start"])
    out: Dict[str, Dict[str, float]] = {}
    for verb in sorted(by_verb):
        durations = by_verb[verb]
        out[verb] = {
            "count": len(durations),
            "p50": percentile(durations, 50),
            "p95": percentile(durations, 95),
            "p99": percentile(durations, 99),
            "mean": sum(durations) / len(durations),
            "max": max(durations),
        }
    return out


def latency_table(records: Iterable[Dict[str, Any]], **kwargs: Any) -> str:
    """:func:`verb_latencies` rendered as an aligned text table."""
    stats = verb_latencies(records, **kwargs)
    lines = [
        f"{'verb':10} {'count':>6} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'mean':>8} {'max':>8}"
    ]
    for verb, s in stats.items():
        lines.append(
            f"{verb:10} {s['count']:6d} {s['p50']:8g} {s['p95']:8g} "
            f"{s['p99']:8g} {s['mean']:8.1f} {s['max']:8g}"
        )
    if not stats:
        lines.append("(no request spans)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------


def critical_path(node: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The latest-finisher chain through one span-tree node.

    Starting at ``node`` (a :func:`~repro.observability.trace.span_tree`
    node), repeatedly descend into the child whose ``end`` is latest — the
    child that kept the parent open.  Each hop reports its span's
    ``name``/``start``/``end``/``duration`` plus ``self``, the tail time
    after the chosen child finished (attributable to the span itself).
    """
    hops: List[Dict[str, Any]] = []
    current = node
    while True:
        record = current["record"]
        children = current["children"]
        nxt = (
            max(children, key=lambda c: (c["record"]["end"], c["record"]["seq"]))
            if children
            else None
        )
        tail_from = nxt["record"]["end"] if nxt is not None else record["start"]
        hops.append(
            {
                "name": record["name"],
                "id": record["id"],
                "start": record["start"],
                "end": record["end"],
                "duration": record["end"] - record["start"],
                "self": max(0.0, record["end"] - tail_from),
                "attrs": record.get("attrs", {}),
            }
        )
        if nxt is None:
            return hops
        current = nxt


def cross_shard_critical_path(
    records: Iterable[Dict[str, Any]], gid: Optional[int] = None
) -> List[Dict[str, Any]]:
    """The critical path of one global (cross-shard) commit, phase by phase.

    :func:`critical_path` alone descends into the *latest finisher* at
    every level, which for a 2PC commit is the reply leg back to the
    client — correct, but it skips the interesting part.  This variant
    pins the descent to the two-phase structure: the client request hop,
    then the ``2pc.prepare`` fan-out chased into its slowest participant
    leg (``net.msg`` → ``server.handle`` on that shard), then the
    ``2pc.decide`` fan-out chased the same way.  The request hop's
    ``self`` is the tail after the decide fan-out finished — the reply
    delivery the plain critical path would have followed.

    ``gid`` selects the global transaction; default is the first prepared
    one in the trace.  Returns ``[]`` when the trace has no 2PC spans.
    """
    records = list(records)
    nodes: Dict[Any, Dict[str, Any]] = {}

    def index(node: Dict[str, Any]) -> None:
        rid = node["record"].get("id")
        if rid is not None:
            nodes[rid] = node
        for child in node["children"]:
            index(child)

    for root in span_tree(records):
        index(root)
    prepares = [
        n
        for n in nodes.values()
        if n["record"]["name"] == "2pc.prepare"
        and (gid is None or n["record"].get("attrs", {}).get("tid") == gid)
    ]
    if not prepares:
        return []
    prepare = min(prepares, key=lambda n: n["record"]["seq"])
    gid = prepare["record"].get("attrs", {}).get("tid")
    decide = next(
        (
            n
            for n in sorted(nodes.values(), key=lambda n: n["record"]["seq"])
            if n["record"]["name"] == "2pc.decide"
            and n["record"].get("attrs", {}).get("tid") == gid
        ),
        None,
    )
    hops: List[Dict[str, Any]] = []
    parent = nodes.get(prepare["record"].get("parent"))
    if parent is not None:
        record = parent["record"]
        fanout_end = (
            decide["record"]["end"] if decide is not None
            else prepare["record"]["end"]
        )
        hops.append(
            {
                "name": record["name"],
                "id": record["id"],
                "start": record["start"],
                "end": record["end"],
                "duration": record["end"] - record["start"],
                "self": max(0.0, record["end"] - fanout_end),
                "attrs": record.get("attrs", {}),
            }
        )
    hops += critical_path(prepare)
    if decide is not None:
        hops += critical_path(decide)
    return hops


# ---------------------------------------------------------------------------
# waterfall rendering
# ---------------------------------------------------------------------------

_LABEL_KEYS = ("verb", "fate", "outcome", "trace_id")


def _span_label(record: Dict[str, Any]) -> str:
    attrs = record.get("attrs", {})
    bits = [record["name"]]
    for key in _LABEL_KEYS:
        value = attrs.get(key)
        if value is not None and value is not False:
            bits.append(f"{key}={value}")
            break
    return " ".join(bits)


def waterfall(
    records: Iterable[Dict[str, Any]],
    *,
    width: int = 64,
    label_width: int = 34,
    max_lines: int = 200,
) -> str:
    """ASCII Gantt of a trace: one line per span, indented by tree depth,
    bar positioned on the shared time axis, events marked with ``*``.

    Feed it the records of one trace (e.g. filtered to one ``trace_id``)
    or a whole run; ``max_lines`` truncates runaway traces with a note.
    """
    roots = span_tree(records)
    if not roots:
        return "(no closed spans)"
    spans = [
        r for r in (n["record"] for n in _walk(roots)) if r.get("id") is not None
    ]
    t0 = min(r["start"] for r in spans)
    t1 = max(r["end"] for r in spans)
    scale = (width - 1) / (t1 - t0) if t1 > t0 else 0.0

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) * scale)))

    lines = [
        f"{'span':{label_width}} |{'t=' + _fmt(t0):<{width // 2}}"
        f"{_fmt(t1) + '=t':>{width - width // 2}}|"
    ]
    count = 0
    truncated = 0
    for node, depth in _walk_depth(roots):
        record = node["record"]
        if record.get("id") is None and record.get("name") != "orphans":
            continue
        if count >= max_lines:
            truncated += 1
            continue
        count += 1
        bar = ["."] * width
        a, b = col(record["start"]), col(record["end"])
        for i in range(a, b + 1):
            bar[i] = "="
        for event in node["events"]:
            bar[col(event["time"])] = "*"
        label = ("  " * depth + _span_label(record))[:label_width]
        lines.append(
            f"{label:{label_width}} |{''.join(bar)}| "
            f"{_fmt(record['start'])}-{_fmt(record['end'])} "
            f"({_fmt(record['end'] - record['start'])})"
        )
    if truncated:
        lines.append(f"... {truncated} more spans (max_lines={max_lines})")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else f"{value:g}"


def _walk(roots: List[Dict[str, Any]]) -> Iterable[Dict[str, Any]]:
    for node, _depth in _walk_depth(roots):
        yield node


def _walk_depth(roots: List[Dict[str, Any]], depth: int = 0):
    for node in roots:
        yield node, depth
        yield from _walk_depth(node["children"], depth + 1)


# ---------------------------------------------------------------------------
# contention
# ---------------------------------------------------------------------------


def contention_summary(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Which object keys accrue contention, sorted hottest first.

    Per object: ``busy_replies`` (server ``server.handle`` spans answered
    busy), ``lock_blocks`` (lock-manager ``lock.blocked`` events plus
    engine ``blocked`` events naming the object), and ``wait_ticks`` —
    total duration of client request spans that saw at least one busy
    reply, i.e. the client-observed time attributable to waiting for that
    key (network round trips and backoff included).
    """
    stats: Dict[str, Dict[str, float]] = {}

    def bucket(obj: Any) -> Dict[str, float]:
        return stats.setdefault(
            str(obj), {"busy_replies": 0, "lock_blocks": 0, "wait_ticks": 0.0}
        )

    records = list(records)
    busy_request_spans: Dict[int, bool] = {}
    for r in records:
        attrs = r.get("attrs", {})
        if r["kind"] == "event":
            if r["name"] == "lock.blocked" and attrs.get("obj") is not None:
                bucket(attrs["obj"])["lock_blocks"] += 1
            elif r["name"] == "blocked" and attrs.get("resource"):
                obj = _obj_of_resource(str(attrs["resource"]))
                if obj is not None:
                    bucket(obj)["lock_blocks"] += 1
            elif r["name"] == "busy" and r.get("span") is not None:
                busy_request_spans[r["span"]] = True
        elif r["kind"] == "span" and r["name"] == "server.handle":
            if attrs.get("outcome") == "busy" and attrs.get("obj") is not None:
                bucket(attrs["obj"])["busy_replies"] += 1
    for r in records:
        if (
            r["kind"] == "span"
            and r["name"] == "client.request"
            and busy_request_spans.get(r["id"])
        ):
            obj = r.get("attrs", {}).get("obj")
            if obj is not None:
                bucket(obj)["wait_ticks"] += r["end"] - r["start"]
    return [
        {"obj": obj, **{k: v for k, v in s.items()}}
        for obj, s in sorted(
            stats.items(),
            key=lambda kv: (-kv[1]["wait_ticks"], -kv[1]["busy_replies"], kv[0]),
        )
    ]


def _obj_of_resource(resource: str) -> Optional[str]:
    """Extract the quoted object from a ``WouldBlock`` resource string
    (``"write lock on 'k3'"``)."""
    if "'" in resource:
        try:
            return resource.split("'")[1]
        except IndexError:  # pragma: no cover - malformed resource
            return None
    return None


def contention_table(
    records: Iterable[Dict[str, Any]], *, top: int = 10
) -> str:
    """:func:`contention_summary` rendered as an aligned text table."""
    rows = contention_summary(records)[:top]
    lines = [
        f"{'object':10} {'busy':>6} {'blocks':>7} {'wait ticks':>11}"
    ]
    for row in rows:
        lines.append(
            f"{row['obj']:10} {int(row['busy_replies']):6d} "
            f"{int(row['lock_blocks']):7d} {row['wait_ticks']:11g}"
        )
    if not rows:
        lines.append("(no contention observed)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

#: Logical ticks are exported as milliseconds (1 tick -> 1000 µs) so the
#: Perfetto timeline has a sensible scale.
_TICK_US = 1000.0


def to_chrome_trace(
    records: Iterable[Dict[str, Any]], *, cluster_tracks: bool = False
) -> Dict[str, Any]:
    """Convert trace records to Chrome trace-event JSON (Perfetto-loadable).

    Spans become ``ph: "X"`` complete events, point events become
    ``ph: "i"`` instants; each trace id gets its own named lane (thread).
    The original record fields ride along under ``args._repro`` so
    :func:`from_chrome_trace` round-trips exactly.

    With ``cluster_tracks=True`` the lanes reorganize for cluster traces:
    every shard becomes its own Perfetto *process* (records carrying a
    ``shard`` attribute — ``server.handle`` on that shard, its
    ``repl.ship``/``repl.apply`` batches), with one ``primary`` thread
    and one thread per replica ordinal; everything shard-less (clients,
    coordinator 2PC spans, the run span) stays in the ``cluster`` process
    on per-trace threads.  The ``args._repro`` stash is identical in both
    layouts, so :func:`from_chrome_trace` round-trips either.
    """
    lanes: Dict[Any, int] = {}
    processes: Dict[str, int] = {}

    def flat_lane(attrs: Dict[str, Any]) -> tuple:
        label = str(attrs.get("trace_id") or attrs.get("scheduler") or "run")
        if label not in lanes:
            lanes[label] = len(lanes) + 1
        return 1, lanes[label]

    def cluster_lane(attrs: Dict[str, Any]) -> tuple:
        shard = attrs.get("shard")
        if isinstance(shard, int):
            group = f"shard {shard}"
            replica = attrs.get("replica")
            thread = (
                f"replica {replica}" if isinstance(replica, int) else "primary"
            )
        else:
            group = "cluster"
            thread = str(
                attrs.get("trace_id") or attrs.get("scheduler") or "run"
            )
        if group not in processes:
            processes[group] = len(processes) + 1
        key = (group, thread)
        if key not in lanes:
            lanes[key] = len(lanes) + 1
        return processes[group], lanes[key]

    lane = cluster_lane if cluster_tracks else flat_lane
    events: List[Dict[str, Any]] = []
    for r in sorted(records, key=lambda r: r["seq"]):
        attrs = r.get("attrs", {})
        args = dict(attrs)
        pid, tid = lane(attrs)
        if r["kind"] == "span":
            args["_repro"] = {
                "kind": "span",
                "id": r["id"],
                "parent": r.get("parent"),
                "seq": r["seq"],
                "start": r["start"],
                "end": r["end"],
            }
            events.append(
                {
                    "name": r["name"],
                    "cat": "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": r["start"] * _TICK_US,
                    "dur": (r["end"] - r["start"]) * _TICK_US,
                    "args": args,
                }
            )
        else:
            args["_repro"] = {
                "kind": "event",
                "id": r["id"],
                "span": r.get("span"),
                "seq": r["seq"],
                "time": r["time"],
            }
            events.append(
                {
                    "name": r["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": r["time"] * _TICK_US,
                    "args": args,
                }
            )
    if cluster_tracks:
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": group},
            }
            for group, pid in processes.items()
        ] + [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": processes[group],
                "tid": tid,
                "args": {"name": thread},
            }
            for (group, thread), tid in lanes.items()
        ]
    else:
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
            for label, tid in lanes.items()
        ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Iterable[Dict[str, Any]], path: str, **kwargs: Any
) -> Dict[str, Any]:
    """Write :func:`to_chrome_trace` output to ``path``; returns the dict."""
    data = to_chrome_trace(records, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, sort_keys=True)
        handle.write("\n")
    return data


def from_chrome_trace(data: Dict[str, Any]) -> TraceRecords:
    """Reconstruct trace records from a :func:`to_chrome_trace` export.

    Only events carrying the ``args._repro`` stash (i.e. written by this
    module) are reconstructed; foreign Chrome-trace events are counted in
    ``.skipped`` like undecodable JSONL lines.
    """
    records = TraceRecords()
    for event in data.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        args = event.get("args") or {}
        stash = args.get("_repro")
        if not isinstance(stash, dict):
            records.skipped += 1
            continue
        attrs = {k: v for k, v in args.items() if k != "_repro"}
        if stash.get("kind") == "span":
            records.append(
                {
                    "kind": "span",
                    "id": stash["id"],
                    "parent": stash.get("parent"),
                    "name": event["name"],
                    "start": stash["start"],
                    "end": stash["end"],
                    "attrs": attrs,
                    "seq": stash["seq"],
                }
            )
        else:
            records.append(
                {
                    "kind": "event",
                    "id": stash["id"],
                    "span": stash.get("span"),
                    "name": event["name"],
                    "time": stash["time"],
                    "attrs": attrs,
                    "seq": stash["seq"],
                }
            )
    records.sort(key=lambda r: r["seq"])
    return records


# ---------------------------------------------------------------------------
# cluster analytics
# ---------------------------------------------------------------------------


def replication_lag_timeline(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Replication lag over time, per ``"shard:replica"`` stream.

    Every ``repl.ship`` span is one sample: at ``time`` (the ship tick) the
    replica was ``lag`` entries behind its primary and a batch of ``count``
    entries left from log offset ``offset``.  Samples come back in ship
    order, so plotting ``time`` against ``lag`` is the replication-lag
    timeline the Perfetto tracks show.
    """
    timeline: Dict[str, List[Dict[str, Any]]] = {}
    for r in sorted(records, key=lambda r: r["seq"]):
        if r.get("kind") != "span" or r.get("name") != "repl.ship":
            continue
        attrs = r.get("attrs", {})
        key = f"{attrs.get('shard')}:{attrs.get('replica')}"
        timeline.setdefault(key, []).append(
            {
                "time": r["start"],
                "lag": attrs.get("lag", 0),
                "offset": attrs.get("offset"),
                "count": attrs.get("count"),
                "fate": attrs.get("fate"),
            }
        )
    return {key: timeline[key] for key in sorted(timeline)}


def twopc_summary(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Cross-shard 2PC outcomes and in-doubt durations from the trace.

    Pairs each global transaction's ``2pc.prepare`` span (first attempt)
    with its ``2pc.decide`` span; the **in-doubt duration** is prepare
    start to decide end — the window in which a coordinator crash would
    leave participants blocked on the outcome.  Returns outcome counts,
    duration percentiles and the per-transaction table (decide-less
    transactions report ``in_doubt=None``: still pending at trace end).
    """
    prepares: Dict[Any, Dict[str, Any]] = {}
    decides: Dict[Any, Dict[str, Any]] = {}
    for r in sorted(records, key=lambda r: r["seq"]):
        if r.get("kind") != "span":
            continue
        tid = r.get("attrs", {}).get("tid")
        if r["name"] == "2pc.prepare":
            prepares.setdefault(tid, r)
        elif r["name"] == "2pc.decide":
            decides.setdefault(tid, r)
    transactions: List[Dict[str, Any]] = []
    durations: List[float] = []
    outcomes: Dict[str, int] = {}
    for tid in sorted(prepares):
        prepare = prepares[tid]
        decide = decides.get(tid)
        outcome = (
            decide["attrs"].get("outcome") if decide is not None else None
        )
        in_doubt = (
            decide["end"] - prepare["start"] if decide is not None else None
        )
        if in_doubt is not None:
            durations.append(in_doubt)
        outcomes[str(outcome)] = outcomes.get(str(outcome), 0) + 1
        transactions.append(
            {
                "tid": tid,
                "outcome": outcome,
                "prepared_at": prepare["start"],
                "decided_at": decide["end"] if decide is not None else None,
                "in_doubt": in_doubt,
                "participants": prepare["attrs"].get("participants"),
            }
        )
    summary: Dict[str, Any] = {
        "transactions": len(transactions),
        "outcomes": outcomes,
        "per_txn": transactions,
    }
    if durations:
        summary["in_doubt_ticks"] = {
            "count": len(durations),
            "p50": percentile(durations, 50),
            "p95": percentile(durations, 95),
            "max": max(durations),
        }
    return summary


def cluster_summary(
    records: Iterable[Dict[str, Any]],
    *,
    result: Optional[object] = None,
) -> Optional[Dict[str, Any]]:
    """The :class:`RunReport` "Cluster" section: per-shard request latency
    and outcomes, replication-lag percentiles per replica stream,
    cross-shard 2PC in-doubt durations, and the session-guarantee
    violation tally.  ``None`` when the trace carries no cluster signal
    (no shard-attributed spans and no cluster on the result)."""
    records = list(records)
    shards: Dict[int, Dict[str, Any]] = {}
    for r in records:
        if r.get("kind") != "span" or r.get("name") != "server.handle":
            continue
        attrs = r.get("attrs", {})
        shard = attrs.get("shard")
        if not isinstance(shard, int):
            continue
        row = shards.setdefault(
            shard, {"requests": 0, "busy": 0, "durations": []}
        )
        row["requests"] += 1
        if attrs.get("outcome") == "busy":
            row["busy"] += 1
        row["durations"].append(r["end"] - r["start"])
    shard_rows: List[Dict[str, Any]] = []
    for shard in sorted(shards):
        row = shards[shard]
        durations = row.pop("durations")
        shard_rows.append(
            {
                "shard": shard,
                **row,
                "p50": percentile(durations, 50) if durations else None,
                "p95": percentile(durations, 95) if durations else None,
            }
        )
    cluster = getattr(result, "cluster", None) if result is not None else None
    if cluster is not None:
        by_index = {row["shard"]: row for row in shard_rows}
        for shard in cluster.shards:
            row = by_index.get(shard.index)
            if row is None:
                row = {"shard": shard.index}
                shard_rows.append(row)
            row["commits"] = shard.commit_count
            row["certification_lag"] = shard.certification_lag
            row["up"] = shard.up
        shard_rows.sort(key=lambda row: row["shard"])
    lag_rows: List[Dict[str, Any]] = []
    for key, samples in replication_lag_timeline(records).items():
        lags = [s["lag"] for s in samples]
        lag_rows.append(
            {
                "stream": key,
                "batches": len(samples),
                "p50": percentile(lags, 50),
                "p95": percentile(lags, 95),
                "max": max(lags),
                "final_offset": samples[-1]["offset"],
            }
        )
    two_pc = twopc_summary(records)
    violations: Dict[str, int] = {}
    witnessed = (
        getattr(result, "session_violations", ()) if result is not None else ()
    ) or [
        r.get("attrs", {})
        for r in records
        if r.get("kind") == "event" and r.get("name") == "session.violation"
    ]
    for violation in witnessed:
        kind = str(violation.get("kind"))
        violations[kind] = violations.get(kind, 0) + 1
    if not (shard_rows or lag_rows or two_pc["transactions"] or violations):
        return None
    return {
        "shards": shard_rows,
        "replication": lag_rows,
        "two_pc": two_pc,
        "session_violations": violations,
    }


# ---------------------------------------------------------------------------
# unified run report
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """One run, one document: config, outcome, latencies, contention,
    phenomena with provenance, metrics.  Built by :func:`build_run_report`;
    render with :meth:`to_markdown` or :meth:`to_json`.  Equal inputs give
    byte-equal renderings."""

    title: str
    config: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    contention: List[Dict[str, Any]] = field(default_factory=list)
    phenomena: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None
    trace_stats: Dict[str, Any] = field(default_factory=dict)
    #: Capacity-sweep section (see :func:`repro.service.capacity.
    #: build_capacity_report`): offered-load ladder, knee, SLO verdicts
    #: and the contention heatmap.
    capacity: Optional[Dict[str, Any]] = None
    #: Cluster section (see :func:`cluster_summary`): per-shard latency
    #: and outcomes, replication-lag percentiles, 2PC in-doubt durations
    #: and session-guarantee violations.  ``None`` for single-server runs.
    cluster: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "config": self.config,
            "summary": self.summary,
            "latencies": self.latencies,
            "contention": self.contention,
            "phenomena": self.phenomena,
            "metrics": self.metrics,
            "trace_stats": self.trace_stats,
            "capacity": self.capacity,
            "cluster": self.cluster,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        lines: List[str] = [f"# Run report — {self.title}", ""]
        if self.config:
            lines += ["## Fault schedule and configuration", ""]
            lines += _kv_table(_flatten(self.config))
            lines.append("")
        if self.summary:
            lines += ["## Outcome", ""]
            lines += _kv_table(self.summary)
            lines.append("")
        if self.capacity:
            lines += _capacity_markdown(self.capacity)
        if self.cluster:
            lines += _cluster_markdown(self.cluster)
        lines += ["## Logical latency by verb (ticks)", ""]
        if self.latencies:
            lines.append(
                "| verb | count | p50 | p95 | p99 | mean | max |"
            )
            lines.append("|---|---|---|---|---|---|---|")
            for verb, s in self.latencies.items():
                lines.append(
                    f"| {verb} | {s['count']} | {_fmt(s['p50'])} "
                    f"| {_fmt(s['p95'])} | {_fmt(s['p99'])} "
                    f"| {s['mean']:.1f} | {_fmt(s['max'])} |"
                )
        else:
            lines.append("no request spans in the trace.")
        lines.append("")
        lines += ["## Top contended objects", ""]
        if self.contention:
            lines.append("| object | busy replies | lock blocks | wait ticks |")
            lines.append("|---|---|---|---|")
            for row in self.contention[:10]:
                lines.append(
                    f"| {row['obj']} | {int(row['busy_replies'])} "
                    f"| {int(row['lock_blocks'])} | {_fmt(row['wait_ticks'])} |"
                )
        else:
            lines.append("no contention observed.")
        lines.append("")
        lines += ["## Phenomena", ""]
        if self.phenomena:
            for p in self.phenomena:
                name = p.get("phenomenon", "?")
                lines.append(
                    f"### {name} (latched at event {p.get('at_event', '?')})"
                )
                lines.append("")
                for edge in p.get("cycle", []):
                    lines.append(f"- {edge.get('describe', edge)}")
                for witness in p.get("witnesses", []):
                    lines.append(
                        f"- {witness.get('phenomenon')}: "
                        f"{witness.get('description')}"
                    )
                events = p.get("events")
                if events:
                    lines.append(
                        "- witness events: "
                        + ", ".join(
                            f"`{e['event']}` (#{e['index']})" for e in events
                        )
                    )
                lines.append("")
        else:
            lines += ["none latched.", ""]
        if self.metrics:
            lines += ["## Metrics", ""]
            lines.append("| metric | labels | value |")
            lines.append("|---|---|---|")
            for name in sorted(self.metrics):
                inst = self.metrics[name]
                for series in inst.get("series", []):
                    labels = ", ".join(
                        f"{k}={v}" for k, v in sorted(series["labels"].items())
                    )
                    if "value" in series:
                        value = _fmt(series["value"])
                    else:
                        value = (
                            f"count={series['count']} sum={_fmt(series['sum'])}"
                        )
                    lines.append(f"| {name} | {labels} | {value} |")
            lines.append("")
        if self.trace_stats:
            lines += ["## Trace", ""]
            lines += _kv_table(self.trace_stats)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def _cluster_markdown(cluster: Dict[str, Any]) -> List[str]:
    """Render the Cluster section: per-shard table, replication lag,
    2PC in-doubt durations, session-guarantee violations."""
    lines: List[str] = ["## Cluster", ""]
    shard_rows = cluster.get("shards") or []
    if shard_rows:
        lines.append(
            "| shard | requests | p50 | p95 | busy | commits "
            "| certification lag | up |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for row in shard_rows:
            lines.append(
                f"| {row['shard']} | {row.get('requests', 0)} "
                f"| {_fmt_opt(row.get('p50'))} | {_fmt_opt(row.get('p95'))} "
                f"| {row.get('busy', 0)} | {_fmt_opt(row.get('commits'))} "
                f"| {_fmt_opt(row.get('certification_lag'))} "
                f"| {row.get('up', '-')} |"
            )
        lines.append("")
    lag_rows = cluster.get("replication") or []
    if lag_rows:
        lines += ["### Replication lag (entries behind primary, per batch)", ""]
        lines.append("| stream | batches | p50 | p95 | max | final offset |")
        lines.append("|---|---|---|---|---|---|")
        for row in lag_rows:
            lines.append(
                f"| {row['stream']} | {row['batches']} | {_fmt(row['p50'])} "
                f"| {_fmt(row['p95'])} | {_fmt(row['max'])} "
                f"| {_fmt_opt(row['final_offset'])} |"
            )
        lines.append("")
    two_pc = cluster.get("two_pc") or {}
    if two_pc.get("transactions"):
        lines += ["### Cross-shard 2PC", ""]
        outcomes = ", ".join(
            f"{k}={v}" for k, v in sorted(two_pc["outcomes"].items())
        )
        lines.append(
            f"{two_pc['transactions']} global transactions ({outcomes})."
        )
        in_doubt = two_pc.get("in_doubt_ticks")
        if in_doubt:
            lines.append(
                f"In-doubt duration (prepare start to decide end, ticks): "
                f"p50 {_fmt(in_doubt['p50'])}, p95 {_fmt(in_doubt['p95'])}, "
                f"max {_fmt(in_doubt['max'])}."
            )
        lines.append("")
        longest = sorted(
            (t for t in two_pc.get("per_txn", []) if t["in_doubt"] is not None),
            key=lambda t: (-t["in_doubt"], t["tid"]),
        )[:10]
        pending = [
            t for t in two_pc.get("per_txn", []) if t["in_doubt"] is None
        ]
        if longest:
            lines.append("| gid | outcome | prepared at | in-doubt ticks |")
            lines.append("|---|---|---|---|")
            for txn in longest:
                lines.append(
                    f"| {txn['tid']} | {txn['outcome']} "
                    f"| {_fmt(txn['prepared_at'])} "
                    f"| {_fmt(txn['in_doubt'])} |"
                )
            lines.append("")
        if pending:
            lines.append(
                "Still in doubt at trace end: "
                + ", ".join(str(t["tid"]) for t in pending)
                + "."
            )
            lines.append("")
    violations = cluster.get("session_violations") or {}
    lines += ["### Session-guarantee violations", ""]
    if violations:
        lines.append("| kind | count |")
        lines.append("|---|---|")
        for kind in sorted(violations):
            lines.append(f"| {kind} | {violations[kind]} |")
    else:
        lines.append("none witnessed.")
    lines.append("")
    return lines


def _capacity_markdown(capacity: Dict[str, Any]) -> List[str]:
    """Render the capacity section: knee, p99-vs-load ladder, SLO verdicts
    and the object × rate contention heatmap."""
    lines: List[str] = ["## Capacity", ""]
    knee = capacity.get("knee")
    if knee is not None:
        lines.append(
            f"Saturation knee at offered rate **{knee['rate']:g}/tick** "
            f"({knee['throughput_per_kilotick']:g} commits/ktick, "
            f"completion {knee['completion_ratio']:.0%}); rungs above it "
            f"are past saturation."
        )
    else:
        lines.append(
            "No saturation knee: even the lowest offered rate overloads "
            "the server."
        )
    lines.append("")
    ladder = capacity.get("ladder", [])
    if ladder:
        lines.append(
            "| offered rate | offered | committed | completion | "
            "commits/ktick | p50 | p99 | shed | aborts | max queue | SLOs |"
        )
        lines.append("|---|---|---|---|---|---|---|---|---|---|---|")
        for rung in ladder:
            lines.append(
                f"| {rung['rate']:g} | {rung['offered']} "
                f"| {rung['committed']} | {rung['completion_ratio']:.0%} "
                f"| {rung['throughput_per_kilotick']:g} "
                f"| {_fmt_opt(rung['p50'])} | {_fmt_opt(rung['p99'])} "
                f"| {rung['shed']} | {rung['aborted']} "
                f"| {rung['max_queue_depth']} "
                f"| {'ok' if rung['slos_ok'] else 'VIOLATED'} |"
            )
        lines.append("")
    slo_names = [s["name"] for s in (ladder[0]["slos"] if ladder else [])]
    if slo_names:
        lines += ["### SLO verdicts", ""]
        header = "| offered rate | " + " | ".join(slo_names) + " |"
        lines.append(header)
        lines.append("|---" * (len(slo_names) + 1) + "|")
        for rung in ladder:
            cells = []
            for status in rung["slos"]:
                if status["ok"]:
                    cells.append("ok")
                else:
                    cells.append(f"violated@t={status['violated_at']}")
            lines.append(
                f"| {rung['rate']:g} | " + " | ".join(cells) + " |"
            )
        lines.append("")
    heatmap = capacity.get("heatmap") or {}
    if heatmap.get("objects"):
        lines += ["### Contention heatmap (wait ticks by object × rate)", ""]
        rates = heatmap["rates"]
        lines.append(
            "| object | " + " | ".join(f"{r:g}" for r in rates) + " |"
        )
        lines.append("|---" * (len(rates) + 1) + "|")
        for obj, row in zip(heatmap["objects"], heatmap["wait_ticks"]):
            lines.append(
                f"| {obj} | " + " | ".join(_fmt(v) for v in row) + " |"
            )
        lines.append("")
    return lines


def _fmt_opt(value: Optional[float]) -> str:
    return "-" if value is None else _fmt(value)


def _flatten(mapping: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in mapping.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        else:
            flat[name] = value
    return flat


def _kv_table(mapping: Dict[str, Any]) -> List[str]:
    lines = ["| key | value |", "|---|---|"]
    for key in mapping:
        lines.append(f"| {key} | {mapping[key]} |")
    return lines


def build_run_report(
    records: Optional[Iterable[Dict[str, Any]]] = None,
    *,
    result: Optional[object] = None,
    metrics: Optional[object] = None,
    config: Optional[Dict[str, Any]] = None,
    title: str = "stress run",
    capacity: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a trace and/or a stress result.

    ``records`` are trace records (live or read back from JSONL);
    ``result`` is a :class:`~repro.service.StressResult` (contributes the
    outcome summary, config and metrics when not given explicitly);
    ``metrics`` is a :class:`~repro.observability.MetricsRegistry` or an
    already-snapshotted dict.
    """
    if records is None and result is not None:
        tracer = getattr(result, "tracer", None)
        records = getattr(tracer, "records", None)
    skipped = getattr(records, "skipped", 0) if records is not None else 0
    records = list(records) if records is not None else []
    if config is None and result is not None:
        config = getattr(result, "config", None)
    summary: Dict[str, Any] = {}
    if result is not None:
        certification = getattr(result, "certification", {})
        summary = {
            "committed transactions": result.committed,
            "client-visible aborts": result.client_aborts,
            "logical ticks": result.ticks,
            "messages sent/dropped/duplicated": (
                f"{result.network_counters['sent']}"
                f"/{result.network_counters['dropped']}"
                f"/{result.network_counters['duplicated']}"
            ),
            "server crashes/restarts": f"{result.crashes}/{result.restarts}",
            "deadlock victims": result.deadlock_victims,
            "busy replies": result.server_counters["busy"],
            "dedup cache hits": result.server_counters["dedup_hits"],
            "client retries/timeouts": (
                f"{result.client_stats['retries']}"
                f"/{result.client_stats['timeouts']}"
            ),
            "strongest level (live)": str(result.strongest_level() or "none"),
            "certification": (
                f"all {len(certification)} commits certified"
                if result.all_certified
                else "FAILED for tids "
                + ", ".join(
                    str(t) for t, (_l, ok) in certification.items() if not ok
                )
            ),
        }
    if metrics is None and result is not None:
        metrics = getattr(result, "metrics", None)
    snapshot = (
        metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    )
    phenomena = [
        dict(r.get("attrs", {}))
        for r in records
        if r.get("kind") == "event" and r.get("name") == "phenomenon"
    ]
    trace_stats: Dict[str, Any] = {}
    if records:
        spans = sum(1 for r in records if r.get("kind") == "span")
        trace_ids = {
            r["attrs"]["trace_id"]
            for r in records
            if r.get("kind") == "span"
            and r.get("attrs", {}).get("trace_id") is not None
        }
        trace_stats = {
            "records": len(records),
            "spans": spans,
            "events": len(records) - spans,
            "traces": len(trace_ids),
        }
        if skipped:
            trace_stats["skipped lines"] = skipped
    return RunReport(
        title=title,
        config=dict(config or {}),
        summary=summary,
        latencies=verb_latencies(records),
        contention=contention_summary(records),
        phenomena=phenomena,
        metrics=snapshot,
        trace_stats=trace_stats,
        capacity=capacity,
        cluster=cluster_summary(records, result=result),
    )
