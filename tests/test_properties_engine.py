"""Property-based tests (hypothesis) over the engine: every scheduler's
emitted histories provide exactly the guarantees the theory predicts, for
arbitrary seeded workloads."""

from hypothesis import given, settings, strategies as st

from repro.baseline.preventative import PreventativeAnalysis, preventative_satisfies
from repro.core.levels import ANSI_CHAIN, IsolationLevel as L, satisfies
from repro.core.msg import mixing_correct
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import WorkloadConfig, random_programs

workload_params = st.fixed_dictionaries(
    {
        "n_programs": st.integers(min_value=2, max_value=6),
        "steps_per_program": st.integers(min_value=1, max_value=4),
        "n_keys": st.integers(min_value=2, max_value=6),
        "hot_fraction": st.floats(min_value=0.0, max_value=1.0),
        "write_fraction": st.floats(min_value=0.0, max_value=1.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

predicate_workload_params = st.fixed_dictionaries(
    {
        "n_programs": st.integers(min_value=2, max_value=5),
        "steps_per_program": st.integers(min_value=1, max_value=3),
        "n_keys": st.integers(min_value=2, max_value=5),
        "predicate_fraction": st.floats(min_value=0.2, max_value=0.8),
        "insert_fraction": st.floats(min_value=0.0, max_value=0.3),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def run_workload(scheduler, params):
    seed = params.pop("seed")
    cfg = WorkloadConfig(**params)
    db = Database(scheduler)
    db.load(cfg.initial_state())
    Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
    return db.history()


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_serializable_locking_emits_pl3(params):
    h = run_workload(LockingScheduler("serializable"), params)
    assert satisfies(h, L.PL_3).ok


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_read_committed_locking_emits_pl2(params):
    h = run_workload(LockingScheduler("read-committed"), params)
    assert satisfies(h, L.PL_2).ok


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_read_uncommitted_locking_emits_pl1(params):
    h = run_workload(LockingScheduler("read-uncommitted"), params)
    assert satisfies(h, L.PL_1).ok


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_occ_emits_pl3(params):
    h = run_workload(OptimisticScheduler(), params)
    assert satisfies(h, L.PL_3).ok


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_si_emits_pl_si(params):
    h = run_workload(SnapshotIsolationScheduler(), params)
    assert satisfies(h, L.PL_SI).ok


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_mvrc_emits_pl2(params):
    h = run_workload(ReadCommittedMVScheduler(), params)
    assert satisfies(h, L.PL_2).ok


@given(predicate_workload_params)
@settings(max_examples=15, deadline=None)
def test_serializable_locking_handles_predicates(params):
    h = run_workload(LockingScheduler("serializable"), params)
    assert satisfies(h, L.PL_3).ok


@given(predicate_workload_params)
@settings(max_examples=15, deadline=None)
def test_repeatable_read_locking_emits_pl299(params):
    h = run_workload(LockingScheduler("repeatable-read"), params)
    assert satisfies(h, L.PL_2_99).ok


@given(predicate_workload_params)
@settings(max_examples=15, deadline=None)
def test_si_handles_predicates(params):
    h = run_workload(SnapshotIsolationScheduler(), params)
    assert satisfies(h, L.PL_SI).ok


@given(workload_params)
@settings(max_examples=20, deadline=None)
def test_preventative_containment_on_engine_histories(params):
    """Realizable histories never break the containment theorem."""
    for scheduler in (
        LockingScheduler("read-uncommitted"),
        OptimisticScheduler(),
        ReadCommittedMVScheduler(),
    ):
        h = run_workload(scheduler, dict(params))
        prev = PreventativeAnalysis(h)
        for level in ANSI_CHAIN:
            if preventative_satisfies(h, level, analysis=prev):
                assert satisfies(h, level).ok


@given(workload_params, st.lists(st.sampled_from(list(ANSI_CHAIN)), min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_mixed_locking_is_always_mixing_correct(params, level_cycle):
    seed = params.pop("seed")
    cfg = WorkloadConfig(**params)
    programs = random_programs(cfg, seed=seed)
    for i, program in enumerate(programs):
        program.level = level_cycle[i % len(level_cycle)]
    db = Database(LockingScheduler("serializable"))
    db.load(cfg.initial_state())
    Simulator(db, programs, seed=seed).run()
    assert mixing_correct(db.history()).ok
