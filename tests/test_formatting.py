"""Round-trip tests for the notation formatter (repro.core.formatting)."""

import pytest

from repro.core import format_history, parse_history
from repro.core.canonical import ALL_CANONICAL


def assert_round_trip(history):
    text = format_history(history)
    reparsed = parse_history(text, auto_complete=True)
    assert reparsed.events == history.events
    assert reparsed.version_order == history.version_order


class TestRoundTrip:
    def test_simple(self):
        assert_round_trip(parse_history("w1(x1, 5) r2(x1, 5) c1 c2"))

    def test_multi_write_uses_explicit_seq(self):
        h = parse_history("w1(x1) w1(x1) c1")
        text = format_history(h)
        assert "x1.1" in text and "x1.2" in text
        assert_round_trip(h)

    def test_dead_version(self):
        assert_round_trip(parse_history("w1(x1) c1 w2(x2, dead) c2"))

    def test_predicate_read_with_matches(self):
        assert_round_trip(
            parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1*, y2) c3")
        )

    def test_stray_match_declaration_emitted_as_block(self):
        h = parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1) c3 [P matches: y2]")
        text = format_history(h)
        assert "[P matches: y2]" in text
        assert_round_trip(h)

    def test_explicit_version_order(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x2 << x1]")
        assert "x2 << x1" in format_history(h)
        assert_round_trip(h)

    def test_begin_with_level(self):
        assert_round_trip(parse_history("b1@PL-2 w1(x1) c1"))

    def test_cursor_read(self):
        h = parse_history("w1(x1) c1 rc2(x1) c2")
        assert "rc2(x1)" in format_history(h)
        assert_round_trip(h)

    def test_setup_versions_survive(self):
        assert_round_trip(parse_history("r1(x0, 5) w1(x1, 6) c1"))


@pytest.mark.parametrize("canon", ALL_CANONICAL, ids=lambda c: c.name)
def test_every_canonical_history_round_trips(canon):
    assert_round_trip(canon.history)


def test_str_of_history_is_its_notation():
    h = parse_history("w1(x1) c1")
    assert str(h).startswith("w1(x1) c1")


class TestEngineHistoryRoundTrips:
    """Engine histories use namespaced objects and field predicates; the
    textual form must preserve verdicts (predicates become extensional with
    inferred relations)."""

    def engine_history(self):
        from repro.core.predicates import FieldPredicate
        from repro.engine import Database, SnapshotIsolationScheduler

        db = Database(SnapshotIsolationScheduler())
        db.load({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin()
        t1.count(pred)
        t2 = db.begin()
        t2.insert("emp", {"dept": "Sales", "sal": 2})
        t2.commit()
        t1.write("x", 0)
        t1.commit()
        return db.history()

    def test_braced_objects_round_trip(self):
        h = self.engine_history()
        text = format_history(h)
        assert "{emp:1}" in text
        reparsed = parse_history(text, auto_complete=True)
        assert [type(e).__name__ for e in reparsed.events] == [
            type(e).__name__ for e in h.events
        ]

    def test_predicate_relations_inferred(self):
        h = self.engine_history()
        reparsed = parse_history(format_history(h), auto_complete=True)
        _i, pread = reparsed.predicate_reads[0]
        assert pread.predicate.covers("emp:1")
        assert not pread.predicate.covers("x")

    def test_verdicts_survive_text_round_trip(self):
        import repro
        from repro.core.levels import ANSI_CHAIN

        h = self.engine_history()
        reparsed = parse_history(format_history(h), auto_complete=True)
        for level in ANSI_CHAIN:
            assert (
                repro.satisfies(h, level).ok
                == repro.satisfies(reparsed, level).ok
            )
