"""Transaction programs: the step DSL executed by the simulator.

A :class:`Program` is a named list of :class:`Step` objects plus an optional
isolation level.  Steps are *retry-safe primitives*: each step either
completes (emitting its events) or raises
:class:`~repro.exceptions.WouldBlock` before emitting anything, so the
simulator can re-run the same step after the blocker releases.  Composite
operations expand into further primitive steps at run time (``Select`` is a
predicate read that expands into one ``Read`` per matched tuple).

Step values may be constants or callables over the program's register file
(a plain dict threaded through the run), so programs can compute with what
they read::

    transfer = Program("transfer", [
        Read("x", into="x"),
        Read("y", into="y"),
        Write("x", lambda regs: regs["x"] - 10),
        Write("y", lambda regs: regs["y"] + 10),
    ])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.levels import IsolationLevel
from ..core.predicates import Predicate
from .database import TransactionHandle

__all__ = [
    "Step",
    "Read",
    "Write",
    "Increment",
    "Insert",
    "Delete",
    "PredicateReadStep",
    "Select",
    "Count",
    "UpdateWhere",
    "DeleteWhere",
    "Compute",
    "Conditional",
    "Program",
]

Value = Union[Any, Callable[[Dict[str, Any]], Any]]


def _resolve(value: Value, regs: Dict[str, Any]) -> Any:
    return value(regs) if callable(value) else value


class Step:
    """One retry-safe primitive operation of a program."""

    def run(
        self, txn: TransactionHandle, regs: Dict[str, Any]
    ) -> Optional[List["Step"]]:
        """Execute; optionally return extra steps to run immediately after."""
        raise NotImplementedError


@dataclass(frozen=True)
class Read(Step):
    """Item read, optionally storing the value into a register; ``cursor``
    marks it a cursor read (PL-CS experiments); ``for_update`` is the SQL
    ``SELECT ... FOR UPDATE`` hint for read-modify-write sequences."""

    obj: str
    into: Optional[str] = None
    cursor: bool = False
    for_update: bool = False

    def run(self, txn, regs):
        value = txn.read(self.obj, cursor=self.cursor, for_update=self.for_update)
        if self.into is not None:
            regs[self.into] = value
        return None


@dataclass(frozen=True)
class Write(Step):
    obj: str
    value: Value

    def run(self, txn, regs):
        txn.write(self.obj, _resolve(self.value, regs))
        return None


def Increment(obj: str, delta: Value = 1, *, reg: Optional[str] = None) -> List[Step]:
    """Read-modify-write expansion (two primitive steps).  Returns the step
    list to splice into a program."""
    tmp = reg or f"_inc_{obj}"
    return [
        Read(obj, into=tmp, for_update=True),
        Write(obj, lambda regs, _t=tmp, _d=delta: (regs[_t] or 0) + _resolve(_d, regs)),
    ]


@dataclass(frozen=True)
class Insert(Step):
    """Insert a fresh tuple into ``relation``; the new object id is stored
    into ``into`` if given."""

    relation: str
    value: Value
    into: Optional[str] = None

    def run(self, txn, regs):
        obj = txn.insert(self.relation, _resolve(self.value, regs))
        if self.into is not None:
            regs[self.into] = obj
        return None


@dataclass(frozen=True)
class Delete(Step):
    obj: str

    def run(self, txn, regs):
        txn.delete(self.obj)
        return None


@dataclass(frozen=True)
class PredicateReadStep(Step):
    """Raw predicate read; stores ``{obj: value}`` of the matches into
    ``into`` without item reads (COUNT-style)."""

    predicate: Predicate
    into: Optional[str] = None

    def run(self, txn, regs):
        result = txn.predicate_read(self.predicate)
        if self.into is not None:
            regs[self.into] = result.values()
        return None


@dataclass(frozen=True)
class Count(Step):
    predicate: Predicate
    into: str

    def run(self, txn, regs):
        regs[self.into] = len(txn.predicate_read(self.predicate))
        return None


@dataclass(frozen=True)
class Select(Step):
    """Predicate read, then item reads of every matched tuple.  The read
    values accumulate into ``regs[into]`` (a dict)."""

    predicate: Predicate
    into: str = "selected"

    def run(self, txn, regs):
        result = txn.predicate_read(self.predicate)
        regs[self.into] = {}
        return [_CapturedRead(obj, self.into) for obj, _v in result.matched]


@dataclass(frozen=True)
class _CapturedRead(Step):
    """Item read that records its value into a dict register (Select
    expansion)."""

    obj: str
    bucket: str

    def run(self, txn, regs):
        regs.setdefault(self.bucket, {})[self.obj] = txn.read(self.obj)
        return None


@dataclass(frozen=True)
class UpdateWhere(Step):
    """Predicate-based modification: predicate read, then one write per
    matched tuple with ``fn(old_value)`` (Section 4.3.2)."""

    predicate: Predicate
    fn: Callable[[Any], Any]

    def run(self, txn, regs):
        result = txn.predicate_read(self.predicate)
        fn = self.fn
        return [
            Write(obj, lambda regs, _old=value: fn(_old))
            for obj, value in result.matched
        ]


@dataclass(frozen=True)
class DeleteWhere(Step):
    predicate: Predicate

    def run(self, txn, regs):
        result = txn.predicate_read(self.predicate)
        return [Delete(obj) for obj, _v in result.matched]


@dataclass(frozen=True)
class Conditional(Step):
    """Run ``step`` only when ``condition(regs)`` holds — the DSL's `IF`.

    The condition is evaluated when the step is reached, so it can depend on
    anything earlier steps put in the registers (e.g. "insert the order only
    if the item read back as active")."""

    condition: Callable[[Dict[str, Any]], bool]
    step: "Step"

    def run(self, txn, regs):
        if self.condition(regs):
            return self.step.run(txn, regs)
        return None


@dataclass(frozen=True)
class Compute(Step):
    """Pure register computation (no database operation)."""

    fn: Callable[[Dict[str, Any]], None]

    def run(self, txn, regs):
        self.fn(regs)
        return None


@dataclass
class Program:
    """A named transaction program."""

    name: str
    steps: Sequence[Step]
    level: Optional[IsolationLevel] = None

    def __post_init__(self) -> None:
        flattened: List[Step] = []
        for step in self.steps:
            if isinstance(step, list):
                flattened.extend(step)  # Increment() returns a step list
            else:
                flattened.append(step)
        self.steps = tuple(flattened)

    def __len__(self) -> int:
        return len(self.steps)
