"""A sharded cluster of deterministic servers with global certification.

The cluster splits the keyspace by hash over N :class:`ShardServer`
instances (each a full :class:`~repro.service.server.Server`: at-most-once
sessions, WAL recovery, live certification) on one seeded
:class:`~repro.service.network.SimulatedNetwork`, adds a
:class:`~repro.service.coordinator.Coordinator` endpoint for cross-shard
two-phase commit, and certifies isolation levels *globally*: every shard's
durable history feeds one merged :class:`~repro.core.incremental.
IncrementalAnalysis`, so the paper's client-centric isolation tests run
over the whole cluster's execution, not per shard.

Key design points:

* **Routing** is client-side against a versioned in-process
  :class:`~repro.service.shardmap.ShardMap` (the config service).  Objects
  route by relation (``"emp:3"`` routes by ``"emp"``; bare keys by
  themselves), so a relation and everything inserted into it colocate.
  A shard answers ``moved`` for keys it no longer owns; clients re-consult
  the map and resend the same idempotency token.
* **Global transaction ids** come from one shared allocator, and commits
  get **global commit stamps** from one shared sequencer (cross-shard
  transactions are stamped by the coordinator at the commit decision,
  single-shard commits at apply), so per-shard histories merge into one
  totally-ordered execution.
* **Lazy joins**: a transaction begins at its session's home shard; the
  first operation routed to another shard joins it there under the same
  global tid (reads at secondary shards therefore see per-shard views —
  the global certifier is exactly the machinery that catches any anomaly
  this distribution-level weakening admits).
* **2PC with WAL-backed prepares**: ``prepare`` snapshots a transaction's
  final writes into durable per-shard prepared state; a shard crash
  between prepare and commit recovers by *redoing* the prepared writes
  when the (retransmitted) decision arrives.  Objects touched by a
  prepared-but-in-doubt transaction are fenced with ``busy`` replies
  until the decision lands.
* **Determinism**: every decision — routing, rids, stamps, fault
  injection points, reconfiguration — is a pure function of configs and
  seeds, so cluster runs replay byte for byte; a ``shards=1`` cluster is
  *byte-identical* (histories, journals, certification verdicts) to the
  plain single-:class:`Server` stack.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.events import Abort, Begin, Commit, PredicateRead, Read, Write
from ..core.history import History
from ..core.levels import IsolationLevel
from ..engine.factory import SchedulerConfig
from ..engine.simulator import _find_cycle
from ..engine.transaction import TxnState
from .client import Client
from .config import (
    AdmissionConfig,
    ClusterConfig,
    NetworkConfig,
    SessionGuarantees,
)
from .coordinator import Coordinator
from .errors import ServiceUnavailable
from .network import SimulatedNetwork
from .replication import ReplicaServer, SessionVector, route_key as _route_key
from .server import Server
from .shardmap import ShardMap

__all__ = ["Cluster", "ClusterClient", "ShardServer", "connect_cluster"]


class _TxnMeta:
    """Cluster-wide registry entry for one transaction."""

    __slots__ = ("session", "level", "declared", "home", "participants")

    def __init__(
        self,
        session: str,
        level: Optional[object],
        declared: Optional[IsolationLevel],
        home: int,
    ) -> None:
        self.session = session
        #: Resolved level to re-declare on lazy joins.
        self.level = level
        #: Declared :class:`IsolationLevel` for certification.
        self.declared = declared
        self.home = home
        #: Shard indices the transaction runs at (home + lazy joins).
        self.participants: Set[int] = {home}


class _ClusterState:
    """Shared cluster state: the global tid allocator, the commit-stamp
    sequencer, and the transaction registry.  In-process and message-free,
    so a single-shard cluster draws nothing extra from any RNG."""

    def __init__(self, shards: int) -> None:
        self.next_tid = 1
        self.next_stamp = 1
        #: Global commit order: gid -> stamp (loader transaction 0 first).
        self.stamps: Dict[int, int] = {0: 0}
        self.committed: Set[int] = {0}
        self.aborted: Set[int] = set()
        #: Transactions known dead (any shard aborted them) — joins refuse.
        self.dead: Set[int] = set()
        self.meta: Dict[int, _TxnMeta] = {}
        #: First gid each session ever began — global deadlock seniority.
        self.session_first_gid: Dict[str, int] = {}
        #: Latest gid each session began (orphan reaping on re-begin).
        self.session_current: Dict[str, int] = {}
        #: Loader participants (shard indices that loaded initial data).
        self.loader_participants: Tuple[int, ...] = tuple(range(shards))

    def allocate_tid(self) -> int:
        tid = self.next_tid
        self.next_tid += 1
        return tid

    def stamp(self, gid: int) -> int:
        existing = self.stamps.get(gid)
        if existing is not None:
            return existing
        stamp = self.next_stamp
        self.next_stamp += 1
        self.stamps[gid] = stamp
        return stamp


class _ShardFeed:
    """Monitor-protocol adapter attached to one shard's recorder; forwards
    every recorded event into the cluster's :class:`GlobalCertifier`."""

    __slots__ = ("certifier", "index")

    def __init__(self, certifier: "GlobalCertifier", index: int) -> None:
        self.certifier = certifier
        self.index = index

    def add(self, event, *, finals=None, positions=None) -> None:
        self.certifier.feed(self.index, event, finals, positions)


class GlobalCertifier:
    """Merges the per-shard event streams into one online analysis.

    Reads, writes and predicate reads forward immediately (objects are
    partitioned, so streams never contend on an object).  Begins dedup to
    the first shard's copy; aborts likewise.  A cross-shard commit emits
    one Commit event per participant recorder — the certifier buffers the
    parts and forwards a *single* merged commit (union finals/positions)
    once every participant has applied, so the analysis sees each
    transaction commit exactly once, atomically.  Single-participant
    commits pass straight through, which is what makes a ``shards=1``
    cluster feed the analysis the byte-identical stream a single server
    would.
    """

    def __init__(self, cluster: "Cluster", analysis) -> None:
        self.cluster = cluster
        self.analysis = analysis
        self._begun: Set[int] = set()
        self._aborted: Set[int] = set()
        #: gid -> [parts seen, merged finals, merged positions]
        self._parts: Dict[int, list] = {}

    def attach(self, shard: "ShardServer") -> None:
        shard.recorder.attach_monitor(_ShardFeed(self, shard.index))

    def feed(self, index: int, event, finals, positions) -> None:
        a = self.analysis
        if isinstance(event, Begin):
            if event.tid in self._begun:
                return
            self._begun.add(event.tid)
            a.add(event)
            return
        if isinstance(event, Abort):
            if event.tid in self._aborted:
                return
            self._aborted.add(event.tid)
            a.add(event)
            return
        if isinstance(event, Commit):
            gid = event.tid
            participants = self.cluster.participants_of(gid)
            if len(participants) <= 1:
                a.add(event, finals=finals, positions=positions)
                return
            acc = self._parts.setdefault(gid, [0, {}, {}])
            acc[0] += 1
            if finals:
                acc[1].update(finals)
            if positions:
                acc[2].update(positions)
            if acc[0] >= len(participants):
                del self._parts[gid]
                a.add(event, finals=acc[1], positions=acc[2])
            return
        if (
            isinstance(event, (Read, Write, PredicateRead))
            and event.tid in self._aborted
        ):
            # A straggler operation at one shard after another shard already
            # aborted the transaction (e.g. a home-shard crash): the online
            # analysis has sealed the transaction, so drop it — it can never
            # commit, and the merged batch history still carries the event.
            return
        a.add(event)


class ShardServer(Server):
    """One shard: a full :class:`Server` plus cluster mechanics — ownership
    checks (``moved``), lazy cross-shard joins, the 2PC participant verbs
    (``prepare``/``decide``) with WAL-backed prepared state, and fencing of
    in-doubt objects after a crash."""

    #: 2PC verbs re-execute even when their rid was outrun by later traffic
    #: on the coordinator's multiplexed session (both are idempotent).
    _replayable_kinds = frozenset({"prepare", "decide"})

    def __init__(
        self,
        cluster: "Cluster",
        index: int,
        network: SimulatedNetwork,
        config,
        *,
        name: str,
        initial: Optional[Dict[str, Any]] = None,
        recover_from: Optional[object] = None,
    ) -> None:
        self._cluster = cluster
        self.index = index
        #: Durable (WAL-backed) prepared state, shared with any replacement
        #: endpoint recovered from the same log: gid -> redo snapshot.
        self._prepared = cluster._prepared_by_shard[index]
        #: Prepared engine transactions whose session moved on (the client
        #: gave up mid-2PC and began a fresh transaction): gid -> handle.
        #: Their fate belongs to the coordinator — the decide commits or
        #: aborts them through here, releasing their locks properly.
        self._detached: Dict[int, Any] = {}
        #: First-time prepares executed (the fault schedule's trigger).
        self.prepare_count = 0
        #: Network tick of every recorded event, parallel to
        #: ``recorder.events`` (shared with replacements; the merged
        #: history sorts by these).
        self.event_ticks = cluster._event_ticks[index]
        super().__init__(
            network,
            config,
            name=name,
            initial=initial,
            monitor=None,  # the global certifier attaches to the recorder
            metrics=cluster.metrics,
            tracer=cluster.tracer,
            admission=cluster.admission,
            tid_allocator=cluster.state.allocate_tid,
            recover_from=recover_from,
        )
        self._note_event_ticks()

    # ------------------------------------------------------------------
    # event-tick bookkeeping (merged-history ordering)
    # ------------------------------------------------------------------

    def _note_event_ticks(self) -> None:
        ticks, n = self.event_ticks, len(self.recorder.events)
        while len(ticks) < n:
            ticks.append(self.network.now)

    def handle(self, request, src):
        kind = request.get("kind")
        if kind in ("repl-pump", "repl-ack"):
            if self.up:
                self._handle_replication(kind, request)
            return None
        reply = super().handle(request, src)
        self._note_event_ticks()
        return reply

    # ------------------------------------------------------------------
    # primary-side replication (log shipping)
    # ------------------------------------------------------------------

    def _handle_replication(self, kind, request) -> None:
        cluster = self._cluster
        if kind == "repl-ack":
            acked = cluster._repl_acked[self.index]
            j = request["replica"]
            acked[j] = max(acked[j], request["applied"])
            self._note_repl_lag(j, acked[j])
            return
        # "repl-pump": ship the unacknowledged WAL suffix to each backup
        # with a seeded lag draw, then re-arm the pump.  Timer-based and
        # fault-free, so replication never perturbs the client traffic's
        # fault schedule; the periodic re-ship doubles as retransmission
        # for batches lost to a backup crash or a partition.
        cfg = cluster.config
        log = self.recorder.repl_log or []
        rng = cluster._repl_rngs[self.index]
        lag_min, lag_max = cfg.replication_lag
        for j in range(cfg.replicas):
            replica = cluster.replica_of(self.index, j)
            if replica is None:
                continue
            acked = cluster._repl_acked[self.index][j]
            if acked >= len(log):
                continue
            lag = rng.randint(lag_min, lag_max)
            entries = log[acked:]
            span = None
            if self.tracer is not None:
                span = self.tracer.span(
                    "repl.ship",
                    stack=False,
                    shard=self.index,
                    replica=j,
                    src=self.name,
                    dst=replica.name,
                    offset=acked,
                    count=len(entries),
                    lag=lag,
                    tids=sorted({entry[0].tid for entry in entries}),
                )
            self._note_repl_lag(j, acked)
            self.network.timer(
                replica.name,
                {
                    "kind": "repl",
                    "primary": self.name,
                    "from": acked,
                    "entries": entries,
                },
                delay=lag,
                src=self.name,
                span=span,
            )
        self.network.timer(
            self.name, {"kind": "repl-pump"}, delay=cfg.replication_every
        )

    def _note_repl_lag(self, ordinal: int, acked: int) -> None:
        """Keep the per-(shard, replica) replication-lag gauge on the
        backup's acknowledged distance behind this primary's durable log
        (observation only)."""
        if self.metrics is None:
            return
        log = self.recorder.repl_log or ()
        self.metrics.gauge(
            "service_replication_lag",
            "log entries a backup trails its primary by (acked)",
        ).set(max(len(log) - acked, 0), shard=self.index, replica=ordinal)

    def restart(self) -> None:
        if self.up:
            return
        super().restart()
        # The pump timer chain died with the crash (self-timers are
        # flushed); re-arm it so the backups keep catching up.
        self._cluster._arm_replication(self)

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------

    def _execute(self, kind, request, sess, span=None):
        cluster = self._cluster
        if kind == "prepare":
            return self._do_prepare(request, span)
        if kind == "decide":
            return self._do_decide(request, span)
        if kind in ("read", "write", "delete", "insert"):
            key = request["relation"] if kind == "insert" else request["obj"]
            owner = cluster.shard_map.owner(_route_key(key))
            if owner != self.name:
                self.counters["moved"] = self.counters.get("moved", 0) + 1
                return {
                    "error": "moved",
                    "owner": owner,
                    "map_version": cluster.shard_map.version,
                }
            if kind != "insert":
                fenced = self._prepared_fence(kind, request["obj"], request["session"])
                if fenced is not None:
                    return fenced
            gid = request.get("tid")
            if gid is not None and (
                sess.txn is None
                or sess.txn.tid != gid
                or sess.txn.state is not TxnState.ACTIVE
            ):
                self._join(gid, request["session"], sess)
        txn_before = sess.txn
        reply = super()._execute(kind, request, sess, span)
        if (
            kind == "commit"
            and txn_before is not None
            and reply.get("ok")
            and not reply.get("recovered")
        ):
            cluster._note_commit(txn_before.tid)
        if cluster.config.replicas and reply.get("ok"):
            # Watermark provenance for session guarantees: reads carry the
            # primary's current offset (the freshest possible state of this
            # shard), commits the post-commit offset every participant's
            # durable log reached.
            offset = len(self.recorder.events)
            if kind == "read":
                reply["shard"] = self.index
                reply["offset"] = offset
            elif kind == "commit":
                reply["offsets"] = {self.index: offset}
        return reply

    def _do_begin(self, request, sess):
        cluster = self._cluster
        session = request["session"]
        # Reap the session's previous transaction cluster-wide before
        # opening a new one: a transaction the client gave up on may still
        # hold locks at shards the session never revisits.
        prev = cluster.state.session_current.get(session)
        if prev is not None:
            cluster._reap_orphan(prev, skip=self)
        if (
            sess.txn is not None
            and sess.txn.state is TxnState.ACTIVE
            and sess.txn.tid in self._prepared
        ):
            # The session's previous transaction is prepared: only the
            # coordinator may finish it.  Detach it so the base begin does
            # not abort it as an orphan.
            self._detached[sess.txn.tid] = sess.txn
            sess.txn = None
        reply = super()._do_begin(request, sess)
        gid = sess.txn.tid
        meta = _TxnMeta(
            session, sess.txn.level, self.declared.get(gid), self.index
        )
        cluster.state.meta[gid] = meta
        cluster.state.session_first_gid.setdefault(session, gid)
        cluster.state.session_current[session] = gid
        return reply

    def _join(self, gid: int, session: str, sess) -> bool:
        """Lazily join a cross-shard transaction: begin under the same
        global tid here, provided the transaction is still live at its home
        shard.  Refusals fall through to the base handler's ``aborted``
        reply."""
        cluster = self._cluster
        meta = cluster.state.meta.get(gid)
        if (
            meta is None
            or meta.session != session
            or gid in cluster.state.dead
            or gid in cluster.state.committed
            or cluster.state.session_current.get(session) != gid
            or not cluster._active_at_home(gid)
        ):
            return False
        if sess.txn is not None and sess.txn.state is TxnState.ACTIVE:
            if sess.txn.tid in self._prepared:
                # Prepared: the coordinator finishes it (see _do_begin).
                self._detached[sess.txn.tid] = sess.txn
            else:
                sess.txn.abort()  # stale orphan from an earlier transaction
        sess.pending_abort = None
        sess.txn = self.db.begin(meta.level, tid=gid)
        if sess.first_tid is None:
            sess.first_tid = gid
        self.declared[gid] = meta.declared
        self._tid_session[gid] = session
        meta.participants.add(self.index)
        return True

    # ------------------------------------------------------------------
    # 2PC participant verbs
    # ------------------------------------------------------------------

    def _do_prepare(self, request, span=None):
        gid = request["tid"]
        if gid in self._committed_tids or gid in self._prepared:
            return {"ok": True, "prepared": True}
        meta = self._cluster.state.meta.get(gid)
        sess = self._sessions.get(meta.session) if meta is not None else None
        txn = sess.txn if sess is not None else None
        if txn is None or txn.tid != gid or txn.state is not TxnState.ACTIVE:
            return {
                "ok": True,
                "prepared": False,
                "reason": "transaction not active at participant",
            }
        t = txn._txn
        # The WAL-backed redo record: everything a crashed shard needs to
        # finish the commit after restart, plus the footprint to fence.
        self._prepared[gid] = {
            "session": meta.session,
            "finals": t.finals(),
            "values": t.final_values(),
            "positions": dict(t.final_write_index),
            "write_objs": frozenset(t.finals()),
            "read_objs": frozenset(t.read_set),
        }
        self.prepare_count += 1
        if span is not None:
            span.set(tid=gid, prepared=True)
        return {"ok": True, "prepared": True}

    def _do_decide(self, request, span=None):
        gid = request["tid"]
        outcome = request["outcome"]
        cluster = self._cluster
        meta = cluster.state.meta.get(gid)
        sess = self._sessions.get(meta.session) if meta is not None else None
        txn = sess.txn if sess is not None else None
        if txn is None or txn.tid != gid:
            txn = self._detached.get(gid)
        live = (
            txn is not None
            and txn.tid == gid
            and txn.state is TxnState.ACTIVE
        )
        if span is not None:
            span.set(tid=gid, outcome=outcome)
        if outcome == "commit":
            if gid in self._committed_tids:
                reply = {"ok": True}
                if cluster.config.replicas:
                    reply["offset"] = len(self.recorder.events)
                return reply
            snap = self._prepared.get(gid)
            if snap is None:
                return {
                    "error": "bad-request",
                    "reason": "decide-commit without a prepared transaction",
                }
            if live:
                txn.commit()
                recovered = False
            else:
                # Crash between prepare and commit: the engine transaction
                # is gone, but the prepared record survived — redo its
                # writes into the store and log the commit, exactly what a
                # WAL redo pass does.
                self.db.scheduler.redo(snap["values"])
                self.recorder.commit(
                    gid, snap["finals"], positions=snap["positions"]
                )
                recovered = True
            del self._prepared[gid]
            self._detached.pop(gid, None)
            if live and sess is not None and sess.txn is txn:
                sess.txn = None
            self.commit_count += 1
            self._committed_tids.add(gid)
            cluster._note_commit(gid)
            reply = {"ok": True}
            if recovered:
                reply["recovered"] = True
            if cluster.config.replicas:
                reply["offset"] = len(self.recorder.events)
            return reply
        # outcome == "abort"
        snap = self._prepared.pop(gid, None)
        self._detached.pop(gid, None)
        if live:
            txn.abort()
            if sess is not None and sess.txn is txn:
                sess.txn = None
        elif snap is not None:
            self.recorder.abort(gid)  # recovery undo for the in-doubt txn
        cluster.state.dead.add(gid)
        return {"ok": True}

    def _prepared_fence(self, kind, obj, session_id):
        """Fence operations on objects belonging to an in-doubt prepared
        transaction whose engine state died with a crash (while the engine
        transaction lives, its own locks do this job).  Readers block on
        the prepared write set; writers on its whole footprint."""
        for gid, snap in self._prepared.items():
            sess = self._sessions.get(snap["session"])
            if (
                sess is not None
                and sess.txn is not None
                and sess.txn.tid == gid
                and sess.txn.state is TxnState.ACTIVE
            ):
                continue
            if kind == "read":
                conflict = obj in snap["write_objs"]
            else:
                conflict = obj in snap["write_objs"] or obj in snap["read_objs"]
            if conflict:
                self.counters["busy"] += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "service_busy_total",
                        "requests answered busy (lock waits)",
                    ).inc()
                self._waits[session_id] = frozenset({gid})
                return {"error": "busy", "holders": [gid], "in_doubt": True}
        return None

    # ------------------------------------------------------------------
    # crash / deadlocks
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Like :meth:`Server.crash`, but *prepared* transactions do not get
        recovery-undo aborts: their fate belongs to the coordinator, and
        their redo records survive in the durable prepared state."""
        if not self.up:
            return
        self.crashes += 1
        if self.tracer is not None:
            self.tracer.event(
                "server.crash",
                active=[
                    s.txn.tid
                    for s in self._sessions.values()
                    if s.txn is not None and s.txn.state is TxnState.ACTIVE
                ],
            )
        for sess in self._sessions.values():
            if (
                sess.txn is not None
                and sess.txn.state is TxnState.ACTIVE
                and sess.txn.tid not in self._prepared
            ):
                self._cluster.state.dead.add(sess.txn.tid)
                sess.txn.abort()
        self._sessions.clear()
        self._waits.clear()
        self._detached.clear()  # engine txns die with the db; snapshots stay
        self.db = None
        self.up = False
        self.network.down(self.name)
        self.network.flush(self.name)
        if self.metrics is not None:
            self.metrics.counter(
                "service_server_crashes_total", "injected server crashes"
            ).inc()
        self._note_event_ticks()

    def _resolve_deadlock(self) -> None:
        self._cluster.resolve_deadlock(self)


class ClusterClient(Client):
    """A client session routed against the cluster's shard map.

    Routing: ``begin`` goes to the session's *home shard* (hash of the
    session name); keyed operations to the owner of their routing key;
    ``commit``/``abort`` directly to the single shard the transaction
    touched, or to the 2PC coordinator when it spans several.  Every retry
    re-resolves its destination against the *current* map and shard
    endpoints, so a request never chases a retired shard.

    With ``read_preference`` other than ``"primary"`` (and a replicated
    cluster), plain reads go to backups — ``"nearest"`` sticks each session
    to one hashed endpoint, ``"replica"`` spreads reads round the group —
    and the session tracks Bayou-style watermark vectors of ``(shard,
    applied-offset)``: commits raise the *write* vector, reads the *read*
    vector, both the *causal* one.  When ``guarantees`` enforces a session
    level, replica reads carry the vector floor (``min_offset``) and a
    lagging backup either redirects the read to the primary or makes it
    wait for catch-up (:attr:`SessionGuarantees.on_lag`); when nothing is
    enforced the session reads stale by choice and every guarantee the
    stale read *would* have violated is recorded in :attr:`violations`
    with a witness."""

    def __init__(
        self,
        cluster: "Cluster",
        *,
        read_preference: str = "primary",
        guarantees: Optional[SessionGuarantees] = None,
        **kwargs,
    ) -> None:
        if read_preference not in ("primary", "replica", "nearest"):
            raise ValueError(
                "read_preference must be primary, replica or nearest, "
                f"not {read_preference!r}"
            )
        self._cluster = cluster
        self._txn_shards: Set[int] = set()
        self.read_preference = read_preference
        self.guarantees = guarantees
        #: Session watermarks: offsets this session's writes reached,
        #: offsets its reads observed, and the union (causal).
        self._write_vec = SessionVector()
        self._read_vec = SessionVector()
        self._causal_vec = SessionVector()
        #: Witnessed session-guarantee violations (stale-by-choice reads).
        self.violations: List[Dict[str, Any]] = []
        #: Objects written by the current transaction — their reads must go
        #: to the primary (backups never see uncommitted writes).
        self._txn_writes: Set[str] = set()
        #: Attempt count of the retry being re-routed (rotates replicas).
        self._route_attempt = 0
        super().__init__(cluster.network, server="", **kwargs)

    @property
    def home_shard(self) -> int:
        return self._cluster.home_shard(self.name)

    # -- watermarks ----------------------------------------------------

    def session_vector(self) -> SessionVector:
        """The session's causal watermark (a copy)."""
        return self._causal_vec.copy()

    def _floor_for(self, idx: int) -> int:
        """The applied-offset floor the enforced guarantees impose on a
        replica read at shard ``idx``."""
        g = self.guarantees
        if g is None:
            return 0
        floor = 0
        if g.read_your_writes:
            floor = max(floor, self._write_vec.get(idx))
        if g.monotonic_reads:
            floor = max(floor, self._read_vec.get(idx))
        if g.causal:
            floor = max(floor, self._causal_vec.get(idx))
        return floor

    # -- routing -------------------------------------------------------

    def _pick_replica(self, idx: int) -> str:
        """Deterministic replica choice for a plain read at shard ``idx``:
        ``nearest`` hashes the session to one sticky endpoint (primary
        included as a slot), ``replica`` rotates by rid; retries rotate
        onward and eventually fall back to the primary, so one crashed
        backup never wedges a session."""
        cluster = self._cluster
        k = cluster.config.replicas
        h = zlib.crc32(self.name.encode("utf-8"))
        attempt = self._route_attempt
        if self.read_preference == "nearest":
            slot = h % (k + 1) if attempt < 2 else k
        else:  # "replica"
            slot = (h + self._rid + attempt) % (k + 1) if attempt else (
                (h + self._rid) % k
            )
        if slot < k:
            replica = cluster.replica_of(idx, slot)
            if replica is not None:
                return replica.name
        return cluster.endpoint(idx)

    def _route(self, kind: str, payload: Dict[str, Any]) -> str:
        cluster = self._cluster
        if kind in ("begin", "ping"):
            home = self.home_shard
            if kind == "begin":
                self._txn_shards = {home}
                self._txn_writes = set()
            return cluster.endpoint(home)
        if kind in ("commit", "abort"):
            if len(self._txn_shards) == 1:
                return cluster.endpoint(next(iter(self._txn_shards)))
            return cluster.coordinator.name
        key = payload.get("obj") or payload.get("relation")
        if key is None:
            return cluster.endpoint(self.home_shard)
        if kind in ("write", "delete"):
            self._txn_writes.add(payload["obj"])
        idx = cluster.owner_index(_route_key(key))
        pinned = payload.get("_pin")
        if pinned is not None:
            return pinned  # waiting out a lagging replica: same endpoint
        if (
            kind == "read"
            and cluster.config.replicas
            and self.read_preference != "primary"
            and not payload.get("for_update")
            and payload.get("_route") != "primary"
            and payload.get("obj") not in self._txn_writes
        ):
            dest = self._pick_replica(idx)
            if dest != cluster.endpoint(idx):
                floor = self._floor_for(idx)
                if floor:
                    payload["min_offset"] = floor
                else:
                    payload.pop("min_offset", None)
                return dest
        payload.pop("min_offset", None)
        self._txn_shards.add(idx)
        return cluster.endpoint(idx)

    def _refresh_destination(self, pending) -> None:
        # The stale-shard fix: retries re-resolve against the live map and
        # the shards' *current* endpoints (a replaced shard keeps its index
        # but changes its name), instead of hammering the retired endpoint.
        # Replica-served reads additionally rotate their backup choice with
        # the attempt count.
        self._route_attempt = pending.attempts
        pending.dest = self._route(pending.kind, pending.payload)
        self._route_attempt = 0

    def _on_lagging(self, pending, reply: Dict[str, Any]) -> None:
        """Session-guarantee policy for a behind-the-watermark replica:
        redirect the read to the primary (default, and always when the
        replica has never seen the object), or pin the destination and
        wait for catch-up (``on_lag="wait"``)."""
        g = self.guarantees
        mode = g.on_lag if g is not None and g.enforced else "redirect"
        if mode == "redirect" or reply.get("missing"):
            if pending.attempts >= self.policy.max_attempts:
                pending.error = ServiceUnavailable(
                    f"{pending.kind} rid={pending.rid}: replica lagging "
                    f"after {pending.attempts} attempts"
                )
                return
            pending.payload["_route"] = "primary"
            pending.payload.pop("min_offset", None)
            pending.dest = self._route(pending.kind, pending.payload)
            pending._send()
            return
        pending.payload["_pin"] = pending.dest
        pending._backoff_or_fail(
            ServiceUnavailable(
                f"{pending.kind} rid={pending.rid}: replica still lagging "
                f"after {pending.attempts} attempts"
            )
        )

    # -- watermark maintenance & violation witnessing --------------------

    def _finish(self, pending) -> Dict[str, Any]:
        reply = super()._finish(pending)
        if pending.kind == "read" and "offset" in reply:
            shard = reply["shard"]
            offset = reply["offset"]
            tick = self.network.now
            checks = (
                ("read-your-writes", self._write_vec),
                ("monotonic-reads", self._read_vec),
                ("causal", self._causal_vec),
            )
            for kind, vec in checks:
                required = vec.get(shard)
                if offset < required:
                    self.violations.append({
                        "kind": kind,
                        "session": self.name,
                        "shard": shard,
                        "obj": pending.payload.get("obj"),
                        "tid": pending.payload.get("tid"),
                        "required": required,
                        "got": offset,
                        "tick": tick,
                    })
                    if self.metrics is not None:
                        self.metrics.counter(
                            "service_session_violations",
                            "witnessed session-guarantee violations",
                        ).inc(kind=kind, shard=shard)
                    if self.tracer is not None:
                        self.tracer.event(
                            "session.violation",
                            kind=kind,
                            session=self.name,
                            shard=shard,
                            obj=pending.payload.get("obj"),
                            tid=pending.payload.get("tid"),
                            required=required,
                            got=offset,
                        )
            self._read_vec.observe(shard, offset)
            self._causal_vec.observe(shard, offset)
        elif pending.kind == "commit" and reply.get("offsets"):
            for shard, offset in reply["offsets"].items():
                self._write_vec.observe(shard, offset)
                self._causal_vec.observe(shard, offset)
        elif pending.kind == "insert" and "obj" in reply:
            self._txn_writes.add(reply["obj"])
        return reply


class Cluster:
    """N hash-sharded servers + coordinator behind one facade.

    The facade mirrors the single-:class:`Server` surface the stress driver
    and observability stack consume (``commit_count``, ``counters``,
    ``declared``, ``certified``, ``history()``, ``flush_certification()``),
    aggregated across shards; :meth:`tick` advances the deterministic fault
    and reconfiguration schedule."""

    def __init__(
        self,
        network: SimulatedNetwork,
        scheduler: SchedulerConfig | str = "locking",
        *,
        config: Optional[ClusterConfig] = None,
        initial: Optional[Dict[str, Any]] = None,
        monitor: Optional[object] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        self.network = network
        self.config = config or ClusterConfig()
        self.scheduler_config = (
            scheduler
            if isinstance(scheduler, SchedulerConfig)
            else SchedulerConfig(scheduler=scheduler)
        )
        if self.config.shards > 1 and self.scheduler_config.scheduler != "locking":
            raise ValueError(
                "cross-shard two-phase commit needs the locking scheduler "
                "family (optimistic engines validate at commit, after the "
                "coordinator's decision is already final); run shards=1 or "
                "scheduler='locking'"
            )
        self.metrics = metrics
        self.tracer = tracer
        self.admission = admission
        self.analysis = monitor
        n = self.config.shards
        self.state = _ClusterState(n)
        names = self.config.shard_names()
        self.shard_map = ShardMap(names, slots=self.config.slots)
        self._event_ticks: List[List[int]] = [[] for _ in range(n)]
        self._prepared_by_shard: List[Dict[int, dict]] = [{} for _ in range(n)]
        split: List[Dict[str, Any]] = [{} for _ in range(n)]
        by_name = {name: i for i, name in enumerate(names)}
        for obj, value in (initial or {}).items():
            split[by_name[self.shard_map.owner(_route_key(obj))]][obj] = value
        self.state.loader_participants = tuple(
            i for i in range(n) if split[i]
        )
        self.shards: List[ShardServer] = [
            ShardServer(
                self, i, network, self.scheduler_config,
                name=names[i], initial=split[i] or None,
            )
            for i in range(n)
        ]
        self.certifier: Optional[GlobalCertifier] = None
        if monitor is not None:
            self.certifier = GlobalCertifier(self, monitor)
            for shard in self.shards:
                self.certifier.attach(shard)
                shard.monitor = monitor  # base _certify consults it
        # -- replication (primary/backup log shipping) -------------------
        k = self.config.replicas
        #: Backups by (shard, ordinal); a slot goes None on promotion.
        self.replicas: List[List[Optional[ReplicaServer]]] = [
            [
                ReplicaServer(
                    self, i, j, network,
                    name=self.config.replica_names(i)[j],
                )
                for j in range(k)
            ]
            for i in range(n)
        ]
        #: Every backup ever created (promoted ones included) — the merged
        #: history walks this for replica-served reads.
        self._all_replicas: List[ReplicaServer] = [
            r for group in self.replicas for r in group
        ]
        #: Per-shard highest offset each backup acknowledged.
        self._repl_acked: List[List[int]] = [[0] * k for _ in range(n)]
        #: Per-shard replication-lag RNGs, seeded off the network seed —
        #: independent of the fault RNG, so replicated and unreplicated
        #: runs share the client traffic's exact fault schedule.
        self._repl_rngs: List[random.Random] = [
            random.Random(
                zlib.crc32(f"repl:{i}:{network.config.seed}".encode())
            )
            for i in range(n)
        ]
        #: Per-shard shared read-reply caches (at-most-once across the
        #: whole replica group: a retry landing on a different backup —
        #: or the new primary after a promote — still dedups).
        self._replica_replies: List[Dict[str, dict]] = [{} for _ in range(n)]
        self._replica_restart_at: Dict[Tuple[int, int], int] = {}
        self._replica_crash_fired = False
        self._primary_partition_fired = False
        if k:
            for shard in self.shards:
                self._arm_replication(shard)
            if self.certifier is not None:
                for replica in self._all_replicas:
                    # Direct assignment, not attach_monitor: the recorder is
                    # empty here and replays would double-feed after restore.
                    replica.reads.monitor = _ShardFeed(
                        self.certifier, replica.shard_index
                    )
        self.coordinator = Coordinator(self, name=self.config.coordinator)
        #: Cross-shard certification verdicts (coordinator-path commits).
        self._certified: Dict[int, bool] = {}
        self._retired: List[ShardServer] = []
        self._replacements = 0
        # deterministic fault / reconfiguration schedule state
        self._map_changes = list(self.config.map_changes)
        self._restart_at: Dict[int, int] = {}
        self._heal_at: Optional[int] = None
        self._crash_fired = False
        self._partition_fired = False
        self._stress_crash: Optional[Tuple[int, int]] = None
        self._stress_crash_fired = False

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def endpoint(self, index: int) -> str:
        """The shard's *current* endpoint name (changes on replacement)."""
        return self.shards[index].name

    def owner_index(self, route_key: str) -> int:
        return self._index_of(self.shard_map.owner(route_key))

    def _index_of(self, endpoint: str) -> int:
        for shard in self.shards:
            if shard.name == endpoint:
                return shard.index
        raise KeyError(f"unknown shard endpoint {endpoint!r}")

    def home_shard(self, session: str) -> int:
        """The shard a session's transactions begin at (stable hash)."""
        return zlib.crc32(session.encode("utf-8")) % len(self.shards)

    def participants_of(self, gid: int) -> Tuple[int, ...]:
        if gid == 0:
            return self.state.loader_participants
        meta = self.state.meta.get(gid)
        return tuple(meta.participants) if meta is not None else ()

    def client(
        self,
        name: str,
        *,
        policy=None,
        read_preference: str = "primary",
        guarantees: Optional[SessionGuarantees] = None,
    ) -> ClusterClient:
        return ClusterClient(
            self, name=name, policy=policy,
            metrics=self.metrics, tracer=self.tracer,
            read_preference=read_preference, guarantees=guarantees,
        )

    # ------------------------------------------------------------------
    # replication management
    # ------------------------------------------------------------------

    def _arm_replication(self, shard: ShardServer) -> None:
        """Start (or re-start, after a primary crash) the shard's pump
        timer chain; idempotent per arm-point because each pump re-arms
        exactly one successor."""
        if not self.config.replicas:
            return
        shard.recorder.enable_replication()
        self.network.timer(
            shard.name, {"kind": "repl-pump"},
            delay=self.config.replication_every,
        )

    def replica_of(self, index: int, ordinal: int) -> Optional[ReplicaServer]:
        """The backup at (shard, ordinal), or None once promoted away."""
        group = self.replicas[index]
        return group[ordinal] if ordinal < len(group) else None

    def _note_replica_apply(self, replica: ReplicaServer) -> None:
        """Fault-schedule hook: fire the configured backup crash once the
        designated replica has applied its nth entry (crash mid-catch-up:
        the rest of the shipped batch is lost with the process)."""
        trigger = self.config.crash_replica_after_applies
        if trigger is None or self._replica_crash_fired:
            return
        shard, ordinal, count = trigger
        if (
            replica.shard_index == shard
            and replica.ordinal == ordinal
            and replica.counters["applied"] >= count
        ):
            self._replica_crash_fired = True
            replica.crash()
            if self.tracer is not None:
                self.tracer.event(
                    "replica.crash", shard=shard, replica=ordinal,
                    applied=replica.applied,
                )
            self._replica_restart_at[(shard, ordinal)] = (
                self.network.now + self.config.replica_restart_delay
            )

    # ------------------------------------------------------------------
    # commit bookkeeping / certification
    # ------------------------------------------------------------------

    def _note_commit(self, gid: int) -> None:
        self.state.stamp(gid)
        self.state.committed.add(gid)

    def certify(self, gid: int) -> Optional[bool]:
        """Global live certification for a cross-shard commit (the
        coordinator calls this after every participant applied)."""
        if self.analysis is None:
            return None
        meta = self.state.meta.get(gid)
        level = meta.declared if meta is not None else None
        if level is None:
            return None
        ok = self.analysis.provides(level)
        self._certified[gid] = ok
        if self.metrics is not None:
            self.metrics.counter(
                "service_commits_certified_total",
                "commits live-certified at their declared level",
            ).inc(ok=str(ok).lower())
        if self.tracer is not None:
            self.tracer.event(
                "commit.certified", tid=gid, level=str(level), ok=ok
            )
            if not ok:
                self.tracer.event(
                    "certification.failure", tid=gid, level=str(level)
                )
        return ok

    def _active_at_home(self, gid: int) -> bool:
        meta = self.state.meta.get(gid)
        if meta is None:
            return False
        home = self.shards[meta.home]
        if not home.up:
            return False
        sess = home._sessions.get(meta.session)
        return (
            sess is not None
            and sess.txn is not None
            and sess.txn.tid == gid
            and sess.txn.state is TxnState.ACTIVE
        )

    def _reap_orphan(self, gid: int, *, skip: Optional[ShardServer]) -> None:
        """Abort a given-up-on transaction everywhere it still holds locks
        (prepared shards excluded — those belong to the coordinator)."""
        meta = self.state.meta.get(gid)
        if meta is None or gid in self.state.committed:
            return
        for idx in sorted(meta.participants):
            shard = self.shards[idx]
            if shard is skip or not shard.up:
                continue
            if gid in shard._prepared:
                continue
            sess = shard._sessions.get(meta.session)
            if (
                sess is not None
                and sess.txn is not None
                and sess.txn.tid == gid
                and sess.txn.state is TxnState.ACTIVE
            ):
                sess.txn.abort()
                sess.txn = None
                shard._waits.pop(meta.session, None)
                shard._note_event_ticks()
                self.state.dead.add(gid)

    # ------------------------------------------------------------------
    # global deadlock resolution
    # ------------------------------------------------------------------

    def resolve_deadlock(self, origin: ShardServer) -> None:
        """Union every shard's waits-for edges (tids are global, so edges
        compose) and abort the cycle transaction whose *session* is
        globally youngest — the same aging rule as the single server,
        applied cluster-wide."""
        by_tid: Dict[int, List[Tuple[ShardServer, str]]] = {}
        for shard in self.shards:
            if not shard.up:
                continue
            for sid, s in shard._sessions.items():
                if s.txn is not None and s.txn.state is TxnState.ACTIVE:
                    by_tid.setdefault(s.txn.tid, []).append((shard, sid))
        waits: Dict[int, FrozenSet[int]] = {}
        for shard in self.shards:
            if not shard.up:
                continue
            for sid, holders in shard._waits.items():
                s = shard._sessions.get(sid)
                if s is None or s.txn is None or s.txn.state is not TxnState.ACTIVE:
                    continue
                live = frozenset(h for h in holders if h in by_tid)
                if live:
                    waits[s.txn.tid] = waits.get(s.txn.tid, frozenset()) | live
        cycle = _find_cycle(waits)
        if not cycle:
            return
        candidates = [tid for tid in cycle if tid in by_tid]
        if not candidates:
            return

        def seniority(tid: int) -> int:
            # The single server's aging rule, cluster-wide: a session's
            # seniority is its oldest live first_tid across shards (with one
            # shard this is exactly the base server's session first_tid,
            # crash resets included).
            return min(
                shard._sessions[sid].first_tid or 0
                for shard, sid in by_tid[tid]
            )

        victim = max(candidates, key=seniority)
        origin.deadlock_victims += 1
        if origin.metrics is not None:
            origin.metrics.counter(
                "service_deadlock_victims_total",
                "transactions aborted to break service-level deadlocks",
            ).inc()
        if origin.tracer is not None:
            origin.tracer.event(
                "service.deadlock", cycle=list(cycle), victim=victim
            )
        for shard, sid in by_tid[victim]:
            sess = shard._sessions[sid]
            sess.txn.abort()
            sess.pending_abort = "deadlock"
            shard._waits.pop(sid, None)
            if shard is not origin:
                shard._note_event_ticks()
        self.state.dead.add(victim)

    # ------------------------------------------------------------------
    # deterministic fault & reconfiguration schedule
    # ------------------------------------------------------------------

    def schedule_crash(self, after_commits: int, restart_delay: int) -> None:
        """Arm the stress-level crash: shard 0 crashes once the cluster-wide
        commit count reaches ``after_commits`` (mirrors the single-server
        driver's ``crash_after_commits``)."""
        self._stress_crash = (after_commits, restart_delay)

    def tick(self) -> None:
        """Advance the fault/reconfiguration schedule one driver step:
        restart due shards, heal due partitions, fire due crash/partition
        triggers, apply due (and quiescent) map changes.  Every decision is
        a pure function of deterministic counters and the tick clock."""
        now = self.network.now
        for idx in [i for i, at in self._restart_at.items() if now >= at]:
            del self._restart_at[idx]
            self.shards[idx].restart()
        for key in [
            k for k, at in self._replica_restart_at.items() if now >= at
        ]:
            del self._replica_restart_at[key]
            replica = self.replica_of(*key)
            if replica is not None:
                replica.restart()
        if self._heal_at is not None and now >= self._heal_at:
            self._heal_at = None
            self.network.heal()
        if (
            self.config.partition_primary_after_commits is not None
            and not self._primary_partition_fired
        ):
            shard_idx, commits = self.config.partition_primary_after_commits
            if self.commit_count >= commits:
                # Isolate the primary alone: its backups keep serving reads
                # at whatever offset they reached — the stale-replica case.
                self._primary_partition_fired = True
                self.network.set_partition((self.shards[shard_idx].name,))
                self._heal_at = now + self.config.heal_after
        if self._stress_crash is not None and not self._stress_crash_fired:
            after, delay = self._stress_crash
            if self.commit_count >= after and self.shards[0].up:
                self._stress_crash_fired = True
                self.shards[0].crash()
                self._restart_at[0] = now + delay
        cfg = self.config
        if cfg.crash_shard_after_prepares is not None and not self._crash_fired:
            idx, count = cfg.crash_shard_after_prepares
            if self.shards[idx].prepare_count >= count and self.shards[idx].up:
                self._crash_fired = True
                self.shards[idx].crash()
                self._restart_at[idx] = now + cfg.shard_restart_delay
        if (
            cfg.partition_coordinator_after_prepares is not None
            and not self._partition_fired
            and self.coordinator.prepares_sent
            >= cfg.partition_coordinator_after_prepares
        ):
            self._partition_fired = True
            self.network.set_partition((self.coordinator.name,))
            self._heal_at = now + cfg.heal_after
        while (
            self._map_changes
            and self.commit_count >= self._map_changes[0].after_commits
        ):
            if not self._apply_map_change(self._map_changes[0]):
                break  # affected shard not quiescent yet; retry next tick
            self._map_changes.pop(0)

    @property
    def next_wake(self) -> Optional[int]:
        """The next tick the fault schedule needs attention at (drivers use
        this for idle jumps)."""
        due = list(self._restart_at.values())
        if self._heal_at is not None:
            due.append(self._heal_at)
        return min(due) if due else None

    def settle(self) -> None:
        """End-of-run: bring back any shard still waiting out its restart
        delay, heal any scheduled partition (mirrors the single-server
        driver's final restart), then run the network until every in-flight
        two-phase commit resolves — a prepared transaction left in doubt
        would leave the merged history non-atomic (committed on one shard,
        unfinished on another)."""
        for idx in sorted(self._restart_at):
            self.shards[idx].restart()
        self._restart_at.clear()
        for key in sorted(self._replica_restart_at):
            replica = self.replica_of(*key)
            if replica is not None:
                replica.restart()
        self._replica_restart_at.clear()
        if self._heal_at is not None:
            self._heal_at = None
            self.network.heal()
        start = self.network.now
        while self.coordinator.pending:
            if self.network.now - start > 100_000:
                raise RuntimeError(
                    f"{self.coordinator.pending} two-phase commits failed "
                    "to settle after the run (coordinator stuck?)"
                )
            if not self.network.drain_due():
                self.network.advance(1)

    # -- reconfiguration ------------------------------------------------

    def _quiescent(self, shard: ShardServer, *, allow_prepared: bool) -> bool:
        if not shard.up:
            return False
        for sess in shard._sessions.values():
            if sess.txn is None or sess.txn.state is not TxnState.ACTIVE:
                continue
            if allow_prepared and sess.txn.tid in shard._prepared:
                continue
            return False
        if shard._prepared and not allow_prepared:
            return False
        return True

    def _apply_map_change(self, change) -> bool:
        if change.kind == "migrate":
            return self._migrate_slot(change.slot, change.to_shard)
        if change.kind == "promote":
            return self._promote(change.shard, change.replica)
        return self._replace_shard(change.shard)

    def _migrate_slot(self, slot: int, to_shard: int) -> bool:
        src = self.shards[self._index_of(self.shard_map.assignment[slot])]
        dest = self.shards[to_shard]
        if src is dest:
            self.shard_map.migrate(slot, dest.name)
            return True
        # Only move a slot between quiescent endpoints: no transaction is
        # mid-flight over the keys being rehomed (in-doubt prepared state
        # included), so the copied committed state is a consistent cut.
        if not (
            self._quiescent(src, allow_prepared=False) and dest.up
        ):
            return False
        store = src.db.scheduler.store
        writes = []
        for obj in store.objects():
            if self.shard_map.slot_of(_route_key(obj)) != slot:
                continue
            stored = store.latest(obj)
            if stored is not None:
                writes.append((stored.version, stored.value, stored.dead))
        if writes:
            # Install the existing Version objects verbatim (scheduler.redo)
            # — no new history events, so the merged history is untouched by
            # where the data physically lives.
            dest.db.scheduler.redo(writes)
            for version, _value, _dead in writes:
                dest.db._note_existing(version.obj)
        for rel, count in src.db._obj_counters.items():
            if self.shard_map.slot_of(rel) == slot:
                dest.db._obj_counters[rel] = max(
                    dest.db._obj_counters.get(rel, 0), count
                )
        # Future install keys at the destination must sort after every key
        # the source ever issued for these objects.
        dest.recorder.position_base = max(
            dest.recorder.position_base,
            src.recorder.position_base + len(src.recorder.events),
        )
        version = self.shard_map.migrate(slot, dest.name)
        if self.tracer is not None:
            self.tracer.event(
                "cluster.migrate",
                slot=slot,
                src=src.name,
                dest=dest.name,
                objects=len(writes),
                map_version=version,
            )
        return True

    def _replace_shard(self, index: int) -> bool:
        old = self.shards[index]
        # Prepared (in-doubt) transactions may ride through a replacement:
        # their redo records are durable and shared with the new endpoint.
        if not self._quiescent(old, allow_prepared=True):
            return False
        self.network.down(old.name)
        self.network.flush(old.name)
        old.up = False
        self._retired.append(old)
        self._replacements += 1
        new_name = f"shard{index}r{self._replacements}"
        new = ShardServer(
            self, index, self.network, self.scheduler_config,
            name=new_name, initial=None, recover_from=old.recorder,
        )
        new.monitor = self.analysis
        self.shards[index] = new
        version = self.shard_map.replace(old.name, new_name)
        if self.tracer is not None:
            self.tracer.event(
                "cluster.replace",
                shard=index,
                old=old.name,
                new=new_name,
                map_version=version,
            )
        return True

    def _promote(self, index: int, ordinal: int) -> bool:
        """Promote a backup to primary: drain the old primary's remaining
        log suffix into the backup in-process (a controlled failover hands
        over, it does not lose the tail), retire the old endpoint, and
        stand up a fresh :class:`ShardServer` *on the backup's durable WAL
        copy* under the backup's name — clients re-route via the map, the
        surviving backups keep catching up from the new primary."""
        old = self.shards[index]
        backup = self.replica_of(index, ordinal)
        if (
            backup is None
            or not backup.up
            or not self._quiescent(old, allow_prepared=True)
        ):
            return False
        for entry in (old.recorder.repl_log or [])[backup.applied:]:
            backup.apply(entry)
        self.network.down(old.name)
        self.network.flush(old.name)
        old.up = False
        self._retired.append(old)
        self._replacements += 1
        # Future install keys from the promoted log must sort after every
        # key the retired primary ever issued.
        backup.wal.rebase(
            old.recorder._install_counter, old.recorder.position_base
        )
        backup.retire()
        self.replicas[index][ordinal] = None
        new = ShardServer(
            self, index, self.network, self.scheduler_config,
            name=backup.name, initial=None, recover_from=backup.wal,
        )
        new.monitor = self.analysis
        if self.certifier is not None:
            # Direct assignment, NOT attach_monitor: the primary's copies of
            # these events already fed the certifier — a replay would feed
            # every event twice.
            backup.wal.monitor = _ShardFeed(self.certifier, index)
        self.shards[index] = new
        version = self.shard_map.replace(old.name, backup.name)
        self._arm_replication(new)
        if self.tracer is not None:
            self.tracer.event(
                "cluster.promote",
                shard=index,
                replica=ordinal,
                old=old.name,
                new=backup.name,
                map_version=version,
            )
        return True

    # ------------------------------------------------------------------
    # aggregated facade (the single-Server surface, cluster-wide)
    # ------------------------------------------------------------------

    @property
    def up(self) -> bool:
        return all(shard.up for shard in self.shards)

    @property
    def commit_count(self) -> int:
        """Committed application transactions cluster-wide (loader
        excluded), counted once each regardless of participant count."""
        return len(self.state.committed) - 1

    @property
    def crashes(self) -> int:
        return sum(s.crashes for s in self.shards) + sum(
            s.crashes for s in self._retired
        )

    @property
    def restarts(self) -> int:
        return sum(s.restarts for s in self.shards) + sum(
            s.restarts for s in self._retired
        )

    @property
    def deadlock_victims(self) -> int:
        return sum(s.deadlock_victims for s in self.shards) + sum(
            s.deadlock_victims for s in self._retired
        )

    @property
    def counters(self) -> Dict[str, int]:
        out = {"requests": 0, "dedup_hits": 0, "busy": 0, "shed": 0}
        for shard in list(self._retired) + list(self.shards):
            for key, value in shard.counters.items():
                out[key] = out.get(key, 0) + value
        if self.config.replicas:
            for key in ("serves", "lagging", "applied", "dedup_hits"):
                out[f"replica_{key}"] = sum(
                    r.counters[key] for r in self._all_replicas
                )
        return out

    @property
    def declared(self) -> Dict[int, Optional[IsolationLevel]]:
        return {gid: meta.declared for gid, meta in self.state.meta.items()}

    @property
    def certified(self) -> Dict[int, bool]:
        merged: Dict[int, bool] = {}
        for shard in self.shards:
            merged.update(shard.certified)
        merged.update(self._certified)
        return merged

    @property
    def certification_lag(self) -> int:
        return sum(s.certification_lag for s in self.shards)

    # -- observability snapshots (read-only; never touch cluster state) --

    def shard_certification_lags(self) -> Dict[int, int]:
        """Per-shard batched-certification backlog (shard index → lag)."""
        return {s.index: s.certification_lag for s in self.shards}

    def shard_queue_depths(self) -> Dict[int, int]:
        """Per-shard count of queued network messages addressed to the
        shard's current endpoint (in-flight load, not yet delivered)."""
        by_name = {s.name: s.index for s in self.shards}
        depths = {s.index: 0 for s in self.shards}
        for message in self.network._queue:
            idx = by_name.get(message[3])
            if idx is not None:
                depths[idx] += 1
        return depths

    def replica_lags(self) -> Dict[Tuple[int, int], int]:
        """(shard, replica ordinal) → log entries the backup trails its
        primary by, measured against live applied offsets (promoted-away
        slots are omitted)."""
        lags: Dict[Tuple[int, int], int] = {}
        for shard in self.shards:
            log_len = len(shard.recorder.repl_log or ())
            for j in range(self.config.replicas):
                replica = self.replica_of(shard.index, j)
                if replica is not None:
                    lags[(shard.index, j)] = max(log_len - replica.applied, 0)
        return lags

    @property
    def in_doubt(self) -> int:
        """Cross-shard transactions whose 2PC is still in flight."""
        return self.coordinator.pending

    def flush_certification(self) -> Dict[int, Optional[bool]]:
        verdicts: Dict[int, Optional[bool]] = {}
        for shard in self.shards:
            verdicts.update(shard.flush_certification())
        return verdicts

    @property
    def repair_suggestions(self) -> List[Dict[str, Any]]:
        return [s for shard in self.shards for s in shard.repair_suggestions]

    @property
    def downgrades(self) -> List[Dict[str, Any]]:
        return [d for shard in self.shards for d in shard.downgrades]

    @property
    def monitor(self):
        return self.analysis

    # ------------------------------------------------------------------
    # the merged global history
    # ------------------------------------------------------------------

    def history(self, *, validate: bool = True) -> History:
        """The cluster's execution as *one* Adya history.

        Per-shard durable logs merge on the network tick each event was
        recorded at (ties broken by shard index, then log position).
        Begins dedup to the first copy; a cross-shard transaction's final
        event keeps its *last* copy (the commit/abort is globally complete
        only once every participant applied).  Version orders concatenate
        per object — install keys are globally monotone per object (see
        ``HistoryRecorder.position_base``), so a plain sort reconstructs
        the true install order even across migrations.  With one shard
        this is exactly the shard's own history, byte for byte.
        """
        replica_reads = [
            (r.read_ticks[li], len(self.shards) + fi, li, ev)
            for fi, r in enumerate(self._all_replicas)
            for li, ev in enumerate(r.reads.events)
        ]
        if len(self.shards) == 1 and not replica_reads:
            return self.shards[0].recorder.history(validate=validate)
        entries = []
        for shard in self.shards:
            ticks = self._event_ticks[shard.index]
            for li, ev in enumerate(shard.recorder.events):
                tick = ticks[li] if li < len(ticks) else self.network.now
                entries.append((tick, shard.index, li, ev))
        # Replica-served reads merge with their true version provenance at
        # the tick they were served — the lagging-snapshot observations the
        # global analysis certifies PL-SI / session levels over.
        entries.extend(replica_reads)
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        final_kind: Dict[int, type] = {}
        final_key: Dict[int, Tuple[int, int, int]] = {}
        for tick, si, li, ev in entries:
            if isinstance(ev, (Commit, Abort)):
                kind = type(ev)
                seen = final_kind.get(ev.tid)
                if seen is not None and seen is not kind:
                    raise ValueError(
                        f"T{ev.tid} both committed and aborted across shards "
                        "(2PC atomicity violation)"
                    )
                final_kind[ev.tid] = kind
                final_key[ev.tid] = (tick, si, li)
        events = []
        begun: Set[int] = set()
        for tick, si, li, ev in entries:
            if isinstance(ev, Begin):
                if ev.tid in begun:
                    continue
                begun.add(ev.tid)
            elif isinstance(ev, (Commit, Abort)):
                if (tick, si, li) != final_key[ev.tid]:
                    continue
            events.append(ev)
        chains: Dict[str, List[tuple]] = {}
        for shard in self.shards:
            for obj, ents in shard.recorder._install.items():
                chains.setdefault(obj, []).extend(ents)
        order = {
            obj: [v for _k, v in sorted(ents, key=lambda e: e[0])]
            for obj, ents in chains.items()
        }
        return History(
            events, order, auto_complete=True, validate=validate
        )

    def __repr__(self) -> str:
        return (
            f"<Cluster shards={len(self.shards)} map=v{self.shard_map.version} "
            f"commits={self.commit_count} pending_2pc={self.coordinator.pending}>"
        )


def connect_cluster(
    scheduler: SchedulerConfig | str = "locking",
    *,
    cluster: Optional[ClusterConfig] = None,
    network: Optional[NetworkConfig | SimulatedNetwork] = None,
    initial: Optional[Dict[str, Any]] = None,
    monitor: Optional[object] = None,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
    admission: Optional[AdmissionConfig] = None,
) -> Cluster:
    """Open a sharded cluster (the cluster-shaped :func:`repro.connect`).

    ``scheduler`` names the engine under every shard; ``cluster`` shapes
    the topology and fault schedule (:class:`ClusterConfig`); ``network``
    is either a :class:`~repro.service.config.NetworkConfig` (a fresh
    simulated network is built) or an existing
    :class:`~repro.service.network.SimulatedNetwork` to share.  Returns a
    :class:`Cluster`; open sessions with :meth:`Cluster.client`.
    """
    net = (
        network
        if isinstance(network, SimulatedNetwork)
        else SimulatedNetwork(network, metrics=metrics, tracer=tracer)
    )
    return Cluster(
        net,
        scheduler,
        config=cluster,
        initial=initial,
        monitor=monitor,
        metrics=metrics,
        tracer=tracer,
        admission=admission,
    )
