"""The paper's formalism: histories, conflicts, DSGs, phenomena and levels.

Import the commonly used names directly from :mod:`repro.core`::

    from repro.core import parse_history, Analysis, IsolationLevel, classify
"""

from .conflicts import (
    DepKind,
    Edge,
    PredicateDepMode,
    all_dependencies,
    anti_dependencies,
    read_dependencies,
    write_dependencies,
)
from .dsg import DSG, Cycle
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .formatting import format_event, format_history
from .history import History
from .incremental import IncrementalAnalysis
from .levels import ANSI_CHAIN, IsolationLevel, LevelVerdict, classify, satisfies
from .msg import MSG, MixingReport, mixing_correct
from .objects import DEFAULT_RELATION, INIT_TID, Version, VersionKind, relation_of
from .parser import parse_events, parse_history, parse_version
from .phenomena import Analysis, Phenomenon, PhenomenonReport, Witness
from .predicates import (
    FieldPredicate,
    FunctionPredicate,
    MembershipPredicate,
    Predicate,
    VersionSet,
)
from .runtime import could_commit_at, running_satisfies, virtual_commit
from .serialize import dumps, history_from_dict, history_to_dict, loads
from .ssg import SSG, start_dependencies
from .timeline import timeline
from .validation import validate_history

__all__ = [
    "DepKind",
    "Edge",
    "PredicateDepMode",
    "all_dependencies",
    "anti_dependencies",
    "read_dependencies",
    "write_dependencies",
    "DSG",
    "Cycle",
    "Abort",
    "Begin",
    "Commit",
    "Event",
    "PredicateRead",
    "Read",
    "Write",
    "format_event",
    "format_history",
    "History",
    "IncrementalAnalysis",
    "ANSI_CHAIN",
    "IsolationLevel",
    "LevelVerdict",
    "classify",
    "satisfies",
    "MSG",
    "MixingReport",
    "mixing_correct",
    "DEFAULT_RELATION",
    "INIT_TID",
    "Version",
    "VersionKind",
    "relation_of",
    "parse_events",
    "parse_history",
    "parse_version",
    "Analysis",
    "Phenomenon",
    "PhenomenonReport",
    "Witness",
    "FieldPredicate",
    "FunctionPredicate",
    "MembershipPredicate",
    "Predicate",
    "VersionSet",
    "could_commit_at",
    "running_satisfies",
    "virtual_commit",
    "dumps",
    "history_from_dict",
    "history_to_dict",
    "loads",
    "SSG",
    "start_dependencies",
    "timeline",
    "validate_history",
]
