"""Lock manager: item locks plus relation-granularity predicate locks.

Implements the lock vocabulary of Figure 1:

* **item locks** on single objects, in READ or WRITE mode.  READ is shared;
  WRITE is exclusive (and conflicts with READ).  Upgrades (READ→WRITE by the
  same holder) are granted when no other transaction holds the lock.
* **predicate (phantom) locks**, modelled at relation granularity — the
  "granular locks" variant the paper cites from Gray & Reuter.  A predicate
  read takes a shared relation lock; it conflicts with *item WRITE locks held
  by other transactions on objects of that relation*, and, conversely, an
  item WRITE acquisition conflicts with other transactions' relation locks.
  This is coarser than precision locking (it may block writers that would
  not change the predicate's matches) but is sound, which is all Figure 1
  needs.

Lock *durations* (``LONG`` = held to commit, ``SHORT`` = released after the
operation, ``NONE`` = not acquired) are the scheduler's business; the manager
only tracks ownership.  Conflicts raise :class:`~repro.exceptions.WouldBlock`
carrying the holders, from which the simulator builds its waits-for graph.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Set, Tuple

from ..core.objects import relation_of
from ..exceptions import WouldBlock

__all__ = ["LockMode", "LockDuration", "LockManager"]


class LockMode(Enum):
    READ = "read"
    WRITE = "write"


class LockDuration(Enum):
    NONE = "none"
    SHORT = "short"
    LONG = "long"


class LockManager:
    """Ownership tables for item and relation locks."""

    def __init__(self) -> None:
        #: obj -> {tid -> mode}
        self._items: Dict[str, Dict[int, LockMode]] = {}
        #: relation -> set of tids holding the shared predicate lock
        self._relations: Dict[str, Set[int]] = {}
        #: relation -> objs with any WRITE lock (for predicate conflicts)
        self._write_locked: Dict[str, Set[str]] = {}
        # Observability (instrument()): grant/block counters and hold
        # durations in logical steps read off the registry clock.
        self._metrics = None
        self._tracer = None
        self._scheduler = ""
        #: (scope, tid, resource) -> registry clock at first grant
        self._acquired_at: Dict[tuple, int] = {}

    def instrument(self, *, metrics=None, tracer=None, scheduler: str = "") -> None:
        """Attach a metrics registry and/or tracer: counts grants/blocks
        (``lock_grants_total``/``lock_blocks_total{scope,mode}``) and
        observes hold durations (``lock_hold_steps{scope}``) in logical
        steps of the registry clock (ticked by the simulator); with a
        tracer, every refused acquisition emits a ``lock.blocked`` event
        (nesting under the innermost open span — e.g. a server's
        ``server.handle``)."""
        self._metrics = metrics
        self._tracer = tracer
        self._scheduler = scheduler

    def _note_grant(self, scope: str, mode: str, tid: int, resource: str) -> None:
        m = self._metrics
        m.counter("lock_grants_total", "lock acquisitions granted").inc(
            scope=scope, mode=mode, scheduler=self._scheduler
        )
        self._acquired_at.setdefault((scope, tid, resource), m.clock)

    def _note_block(
        self, scope: str, mode: str, tid: int, resource: str, holders
    ) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "lock_blocks_total", "lock acquisitions that had to wait"
            ).inc(scope=scope, mode=mode, scheduler=self._scheduler)
        if self._tracer is not None:
            self._tracer.event(
                "lock.blocked",
                scope=scope,
                mode=mode,
                obj=resource,
                holders=sorted(holders),
                tid=tid,
                scheduler=self._scheduler,
            )

    def _note_release(self, scope: str, tid: int, resource: str) -> None:
        m = self._metrics
        held_since = self._acquired_at.pop((scope, tid, resource), None)
        if held_since is not None:
            m.histogram(
                "lock_hold_steps", "lock hold durations in logical steps"
            ).observe(m.clock - held_since, scope=scope, scheduler=self._scheduler)

    # ------------------------------------------------------------------
    # item locks
    # ------------------------------------------------------------------

    def acquire_item(self, tid: int, obj: str, mode: LockMode) -> None:
        """Grant or raise :class:`WouldBlock` with the conflicting holders."""
        holders = self._items.setdefault(obj, {})
        if mode is LockMode.READ:
            blockers = {
                t for t, m in holders.items() if t != tid and m is LockMode.WRITE
            }
        else:
            blockers = {t for t in holders if t != tid}
            # WRITE also conflicts with other transactions' predicate locks
            # on the object's relation (phantom protection).
            blockers |= {
                t
                for t in self._relations.get(relation_of(obj), ())
                if t != tid
            }
        if blockers:
            if self._metrics is not None or self._tracer is not None:
                self._note_block("item", mode.value, tid, obj, blockers)
            raise WouldBlock(tid, f"{mode.value} lock on {obj!r}", blockers)
        current = holders.get(tid)
        if current is None or (current is LockMode.READ and mode is LockMode.WRITE):
            holders[tid] = mode
        if holders[tid] is LockMode.WRITE:
            self._write_locked.setdefault(relation_of(obj), set()).add(obj)
        if self._metrics is not None:
            self._note_grant("item", mode.value, tid, obj)

    def release_item(self, tid: int, obj: str) -> None:
        holders = self._items.get(obj)
        if not holders:
            return
        if tid in holders and self._metrics is not None:
            self._note_release("item", tid, obj)
        holders.pop(tid, None)
        if not any(m is LockMode.WRITE for m in holders.values()):
            self._write_locked.get(relation_of(obj), set()).discard(obj)

    def downgrade_or_release_read(self, tid: int, obj: str) -> None:
        """Release a short read lock, preserving a WRITE lock the
        transaction may also hold (reads after own writes)."""
        holders = self._items.get(obj)
        if holders and holders.get(tid) is LockMode.READ:
            if self._metrics is not None:
                self._note_release("item", tid, obj)
            holders.pop(tid)

    # ------------------------------------------------------------------
    # predicate (relation) locks
    # ------------------------------------------------------------------

    def acquire_relation(self, tid: int, relation: str) -> None:
        blockers = set()
        for obj in self._write_locked.get(relation, ()):
            blockers |= {
                t
                for t, m in self._items.get(obj, {}).items()
                if t != tid and m is LockMode.WRITE
            }
        if blockers:
            if self._metrics is not None or self._tracer is not None:
                self._note_block("predicate", "read", tid, relation, blockers)
            raise WouldBlock(
                tid, f"predicate lock on relation {relation!r}", blockers
            )
        self._relations.setdefault(relation, set()).add(tid)
        if self._metrics is not None:
            self._note_grant("predicate", "read", tid, relation)

    def release_relation(self, tid: int, relation: str) -> None:
        if self._metrics is not None and tid in self._relations.get(relation, ()):
            self._note_release("predicate", tid, relation)
        self._relations.get(relation, set()).discard(tid)

    # ------------------------------------------------------------------
    # bulk release and introspection
    # ------------------------------------------------------------------

    def release_all(self, tid: int) -> None:
        """Drop every lock the transaction holds (commit/abort)."""
        for obj, holders in list(self._items.items()):
            if tid in holders:
                self.release_item(tid, obj)
        for rel, holders in self._relations.items():
            if self._metrics is not None and tid in holders:
                self._note_release("predicate", tid, rel)
            holders.discard(tid)

    def holders_of(self, obj: str) -> Dict[int, LockMode]:
        return dict(self._items.get(obj, {}))

    def held_by(self, tid: int) -> Tuple[str, ...]:
        """Objects on which the transaction holds any item lock."""
        return tuple(
            obj for obj, holders in self._items.items() if tid in holders
        )
