"""Acceptance tests for the fault-injected service layer: seeded stress
runs must commit through drops/duplicates/crashes with every commit
live-certified, and must replay byte-for-byte under equal seeds."""

import pytest

from repro.checker import check
from repro.core.levels import IsolationLevel
from repro.core.parser import parse_history
from repro.service import (
    Client,
    NetworkConfig,
    RetryPolicy,
    Server,
    SimulatedNetwork,
    run_stress,
)

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)


class TestAcceptance:
    """The ISSUE's acceptance run: >= 100 transactions under drops +
    duplicates + one crash/restart, all certified, reproducible."""

    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(
            clients=4,
            txns_per_client=25,
            seed=7,
            network=FAULTY,
            crash_after_commits=30,
        )
        return run_stress(**kwargs), run_stress(**kwargs)

    def test_completes_with_faults_and_crash(self, runs):
        result, _ = runs
        assert result.committed >= 100
        assert result.crashes == 1 and result.restarts == 1
        assert result.network_counters["dropped"] > 0
        assert result.network_counters["duplicated"] > 0

    def test_every_commit_certified_at_declared_level(self, runs):
        result, _ = runs
        assert result.certification  # non-empty
        assert result.all_certified
        for tid, (level, ok) in result.certification.items():
            if tid == 0:
                continue
            assert level is IsolationLevel.PL_3
            assert ok, f"tid {tid} violated its declared level"

    def test_same_seed_identical_history_bytes(self, runs):
        first, second = runs
        assert first.history_text == second.history_text
        assert first.journals == second.journals
        assert first.network_counters == second.network_counters
        assert first.certification == second.certification

    def test_batch_checker_agrees_with_live_monitor(self, runs):
        result, _ = runs
        report = check(parse_history(result.history_text))
        assert report.ok(IsolationLevel.PL_3)
        assert report.strongest_level == result.strongest_level()

    def test_different_seed_differs(self, runs):
        first, _ = runs
        other = run_stress(
            clients=4,
            txns_per_client=25,
            seed=8,
            network=FAULTY,
            crash_after_commits=30,
        )
        assert other.history_text != first.history_text


SCHEDULES = {
    "drop-heavy": NetworkConfig(drop=0.15, min_delay=1, max_delay=3),
    "duplicate-heavy": NetworkConfig(duplicate=0.2, min_delay=1, max_delay=3),
    "reorder-only": NetworkConfig(min_delay=1, max_delay=8),
    "drops+dups": FAULTY,
}


class TestDeterminismAcrossSchedules:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_identical_seed_identical_run(self, name):
        kwargs = dict(
            clients=3,
            txns_per_client=6,
            seed=13,
            network=SCHEDULES[name],
            crash_after_commits=8,
        )
        a, b = run_stress(**kwargs), run_stress(**kwargs)
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        # identical CheckReport, not just identical bytes
        ra = check(parse_history(a.history_text))
        rb = check(parse_history(b.history_text))
        assert ra.explain() == rb.explain()
        assert a.all_certified and b.all_certified

    def test_partition_schedule_is_deterministic(self):
        def run():
            net = SimulatedNetwork(NetworkConfig(seed=21, min_delay=1, max_delay=3))
            server = Server(net, "locking", initial={"x": 0})
            client = Client(
                net, policy=RetryPolicy(timeout=6, max_attempts=12)
            )
            outcomes = []
            for i in range(6):
                if i == 2:
                    net.set_partition(("client",), ("server",))
                if i == 4:
                    net.heal()
                try:
                    client.begin()
                    client.write("x", i)
                    client.commit()
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
                    client.tid = None
            return outcomes, tuple(client.journal), repr(server.history())

        first, second = run(), run()
        assert first == second
        outcomes = first[0]
        assert "ok" in outcomes  # commits before and after the partition
        assert any(o != "ok" for o in outcomes)  # partition really bit


class TestSchedulerFamilies:
    @pytest.mark.parametrize(
        "family,floor",
        [
            ("locking", IsolationLevel.PL_3),
            ("optimistic", IsolationLevel.PL_3),
            ("mixed-optimistic", IsolationLevel.PL_3),
            ("snapshot-isolation", IsolationLevel.PL_2),
            ("mv-read-committed", IsolationLevel.PL_2),
        ],
    )
    def test_stress_certifies_each_family(self, family, floor):
        result = run_stress(
            scheduler=family,
            clients=3,
            txns_per_client=6,
            seed=3,
            network=NetworkConfig(
                drop=0.03, duplicate=0.03, min_delay=1, max_delay=3
            ),
            crash_after_commits=8,
        )
        assert result.committed == 18
        assert result.all_certified
        strongest = result.strongest_level()
        assert strongest is not None and strongest.implies(floor)

    def test_declared_level_override(self):
        result = run_stress(
            scheduler="locking",
            level="PL-1",
            clients=2,
            txns_per_client=4,
            seed=5,
            network=NetworkConfig(min_delay=1, max_delay=2),
        )
        assert result.all_certified
        levels = {lvl for _t, (lvl, _ok) in result.certification.items() if lvl}
        assert levels == {IsolationLevel.PL_1}


# ----------------------------------------------------------------------
# end-to-end causal tracing through the service stack
# ----------------------------------------------------------------------

TRACED_FAULTY = NetworkConfig(
    drop=0.08, duplicate=0.12, min_delay=1, max_delay=5
)


def _traced_stress(seed=7, **overrides):
    from repro.observability import Tracer

    kwargs = dict(
        scheduler="locking",
        clients=4,
        txns_per_client=8,
        keys=4,
        seed=seed,
        network=TRACED_FAULTY,
        crash_after_commits=12,
        restart_delay=30,
        tracer=Tracer(),
    )
    kwargs.update(overrides)
    return run_stress(**kwargs)


def _records_by_trace(records):
    """Group records by trace id: spans via their ``trace_id`` attr,
    attr-less spans/events via their parent span."""
    by_trace, span_trace = {}, {}
    for rec in records:
        trace_id = rec.get("attrs", {}).get("trace_id")
        if trace_id is not None:
            by_trace.setdefault(trace_id, []).append(rec)
            if rec["kind"] == "span":
                span_trace[rec["id"]] = trace_id
    for rec in records:
        if rec.get("attrs", {}).get("trace_id") is None:
            parent = rec.get("span") if rec["kind"] == "event" else rec.get("parent")
            trace_id = span_trace.get(parent)
            if trace_id is not None:
                by_trace.setdefault(trace_id, []).append(rec)
                if rec["kind"] == "span":
                    span_trace[rec["id"]] = trace_id
    return by_trace


class TestEndToEndTracing:
    """ISSUE acceptance: one client request's retries, duplicate delivery,
    server-side scheduler wait, and commit certification under a single
    trace id — deterministically."""

    @pytest.fixture(scope="class")
    def traced(self):
        return _traced_stress()

    def test_one_trace_id_carries_whole_transaction_story(self, traced):
        by_trace = _records_by_trace(traced.tracer.records)
        full_story = []
        for trace_id, recs in by_trace.items():
            retried = any(
                r["kind"] == "span"
                and r["name"] == "client.request"
                and r["attrs"].get("attempts", 1) > 1
                for r in recs
            )
            duplicated = any(
                r["kind"] == "span"
                and r["name"] == "net.msg"
                and r["attrs"].get("duplicate")
                for r in recs
            )
            waited = any(
                r["name"] in ("busy", "blocked", "lock.blocked") for r in recs
            )
            certified = any(
                r["kind"] == "event" and r["name"] == "commit.certified"
                for r in recs
            )
            if retried and duplicated and waited and certified:
                full_story.append(trace_id)
        assert full_story, (
            "no single trace id exhibits retry + duplicate + wait + "
            "certification"
        )

    def test_single_root_and_no_orphans(self, traced):
        from repro.observability import span_tree

        roots = span_tree(traced.tracer.records)
        assert [n["record"]["name"] for n in roots] == ["stress.run"]

    def test_span_vocabulary_complete(self, traced):
        names = {r["name"] for r in traced.tracer.records}
        assert {
            "stress.run",
            "client.txn",
            "client.request",
            "net.msg",
            "server.handle",
            "send",
            "commit.certified",
        } <= names
        # the faulty schedule really produced the interesting events
        assert {"backoff", "busy", "blocked", "lock.blocked"} <= names
        assert {"server.crash", "server.restart"} <= names

    def test_net_msg_fates_partition_counters(self, traced):
        fates = {}
        for r in traced.tracer.records:
            if r["kind"] == "span" and r["name"] == "net.msg":
                fates[r["attrs"]["fate"]] = fates.get(r["attrs"]["fate"], 0) + 1
        assert fates.get("delivered", 0) == traced.network_counters["delivered"]
        lost = (
            fates.get("lost-down", 0)
            + fates.get("lost-partition", 0)
            + fates.get("lost-crash", 0)
        )
        assert lost == (
            traced.network_counters["lost_down"]
            + traced.network_counters["lost_partition"]
        )

    def test_identical_seeds_byte_identical_traces(self):
        import json

        first = _traced_stress(seed=11)
        second = _traced_stress(seed=11)
        a = "\n".join(
            json.dumps(r, sort_keys=True) for r in first.tracer.records
        )
        b = "\n".join(
            json.dumps(r, sort_keys=True) for r in second.tracer.records
        )
        assert a == b

    def test_traceview_renders_waterfall_and_critical_path(self, traced):
        from repro.observability import span_tree
        from repro.observability.traceview import critical_path, waterfall

        art = waterfall(traced.tracer.records, max_lines=50)
        assert "stress.run" in art and "=" in art
        hops = critical_path(span_tree(traced.tracer.records)[0])
        assert hops[0]["name"] == "stress.run" and len(hops) > 1

    def test_run_span_carries_config_and_outcome(self, traced):
        run = [
            r
            for r in traced.tracer.records
            if r["kind"] == "span" and r["name"] == "stress.run"
        ]
        assert len(run) == 1
        attrs = run[0]["attrs"]
        assert attrs["scheduler"] == "locking"
        assert attrs["network"]["duplicate"] == TRACED_FAULTY.duplicate
        assert attrs["committed"] == traced.committed
        assert attrs["crashes"] == 1 and attrs["restarts"] == 1

    def test_dedup_hits_traced_under_original_request(self, traced):
        """Duplicate deliveries answered from the reply cache still parent
        under the (single) client request span covering every attempt."""
        client_request_ids = {
            r["id"]
            for r in traced.tracer.records
            if r["kind"] == "span" and r["name"] == "client.request"
        }
        dedup = [
            r
            for r in traced.tracer.records
            if r["kind"] == "span"
            and r["name"] == "server.handle"
            and r["attrs"].get("outcome") == "dedup-hit"
        ]
        assert dedup, "duplicate-heavy schedule must produce dedup hits"
        assert all(r["parent"] in client_request_ids for r in dedup)


class TestProvenanceUnderFaults:
    """Witness-cycle provenance must survive duplicate delivery and
    crash/restart, and replay byte-identically."""

    @pytest.fixture(scope="class")
    def weak(self):
        return _traced_stress(
            scheduler="mv-read-committed",
            clients=4,
            txns_per_client=6,
            keys=3,
            seed=0,
            network=NetworkConfig(duplicate=0.15, min_delay=1, max_delay=4),
            crash_after_commits=8,
        )

    def test_phenomenon_provenance_in_service_trace(self, weak):
        phen = weak.tracer.events("phenomenon")
        assert phen, "MV read committed under RMW contention must latch"
        for event in phen:
            attrs = event["attrs"]
            assert attrs["phenomenon"]
            assert attrs.get("cycle") or attrs.get("witnesses")

    def test_witness_cycle_survives_crash_restart(self, weak):
        assert weak.crashes == 1 and weak.restarts == 1
        phen = weak.tracer.events("phenomenon")
        crash_seq = weak.tracer.events("server.crash")[0]["seq"]
        restart_seq = weak.tracer.events("server.restart")[0]["seq"]
        latched_before = [e for e in phen if e["seq"] < crash_seq]
        assert latched_before, "phenomena latched before the crash"
        assert restart_seq > crash_seq
        # the provenance record is still intact after recovery: the cycle
        # edges name real transactions of the final history
        tids = {
            int(t)
            for e in latched_before
            for edge in e["attrs"].get("cycle", [])
            for t in (edge["src"], edge["dst"])
        }
        assert tids <= set(weak.history.tids)

    def test_provenance_replays_byte_identically(self, weak):
        import json

        again = _traced_stress(
            scheduler="mv-read-committed",
            clients=4,
            txns_per_client=6,
            keys=3,
            seed=0,
            network=NetworkConfig(duplicate=0.15, min_delay=1, max_delay=4),
            crash_after_commits=8,
        )
        a = [json.dumps(e, sort_keys=True) for e in weak.tracer.events("phenomenon")]
        b = [json.dumps(e, sort_keys=True) for e in again.tracer.events("phenomenon")]
        assert a == b and a

    def test_duplicate_delivery_does_not_duplicate_provenance(self, weak):
        import json

        assert weak.network_counters["duplicated"] > 0
        phen = weak.tracer.events("phenomenon")
        seen = [
            (e["attrs"]["phenomenon"], json.dumps(e["attrs"].get("cycle"), sort_keys=True))
            for e in phen
        ]
        assert len(seen) == len(set(seen)), "phenomena latch exactly once"
