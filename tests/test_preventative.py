"""Tests for the preventative P0–P3 baseline (repro.baseline.preventative)."""

import pytest

from repro.baseline.preventative import (
    PreventativeAnalysis,
    PreventativePhenomenon as P,
    preventative_classify,
    preventative_proscribed,
    preventative_satisfies,
)
from repro.core import parse_history
from repro.core.canonical import H1, H2, H1_PRIME, H2_PRIME
from repro.core.levels import IsolationLevel as L


def analysis(text, **kw):
    return PreventativeAnalysis(parse_history(text, **kw))


class TestP0:
    def test_write_write_interleaving(self):
        a = analysis("w1(x1) w2(x2) c1 c2 [x1 << x2]")
        assert a.exhibits(P.P0)

    def test_sequential_writes_clean(self):
        a = analysis("w1(x1) c1 w2(x2) c2")
        assert not a.exhibits(P.P0)

    def test_different_objects_clean(self):
        a = analysis("w1(x1) w2(y2) c1 c2")
        assert not a.exhibits(P.P0)


class TestP1:
    def test_dirty_read_even_if_writer_commits(self):
        # P1 condemns the interleaving regardless of outcome.
        a = analysis("w1(x1) r2(x1) c1 c2")
        assert a.exhibits(P.P1)

    def test_read_after_commit_clean(self):
        a = analysis("w1(x1) c1 r2(x1) c2")
        assert not a.exhibits(P.P1)

    def test_own_read_clean(self):
        a = analysis("w1(x1) r1(x1) c1")
        assert not a.exhibits(P.P1)


class TestP2:
    def test_overwrite_of_live_read(self):
        a = analysis("r1(x0) w2(x2) c2 c1")
        assert a.exhibits(P.P2)

    def test_overwrite_after_reader_finishes_clean(self):
        a = analysis("r1(x0) c1 w2(x2) c2")
        assert not a.exhibits(P.P2)


class TestP3:
    def test_matching_insert_during_predicate_read(self):
        a = analysis("r1(P: x0*) w2(y2) c2 c1 [P matches: y2]")
        assert a.exhibits(P.P3)

    def test_nonmatching_write_clean(self):
        a = analysis("r1(P: x0*) w2(y2) c2 c1")
        assert not a.exhibits(P.P3)

    def test_delete_of_matching_row(self):
        a = analysis("r1(P: x0*) w2(x2, dead) c2 c1")
        assert a.exhibits(P.P3)

    def test_write_after_reader_finished_clean(self):
        a = analysis("r1(P: x0*) c1 w2(y2) c2 [P matches: y2]")
        assert not a.exhibits(P.P3)


class TestLevelsMapping:
    def test_figure1_prefixes(self):
        assert preventative_proscribed(L.PL_1) == (P.P0,)
        assert preventative_proscribed(L.PL_2) == (P.P0, P.P1)
        assert preventative_proscribed(L.PL_2_99) == (P.P0, P.P1, P.P2)
        assert preventative_proscribed(L.PL_3) == (P.P0, P.P1, P.P2, P.P3)

    def test_extension_levels_have_no_analogue(self):
        with pytest.raises(KeyError):
            preventative_proscribed(L.PL_SI)


class TestPaperSection3Claims:
    def test_h1_ruled_out_by_p1(self):
        a = PreventativeAnalysis(H1.history)
        assert a.exhibits(P.P1)

    def test_h2_ruled_out_by_p2(self):
        a = PreventativeAnalysis(H2.history)
        assert a.exhibits(P.P2)

    def test_h1_prime_legal_but_rejected_by_p1(self):
        """The paper's core complaint: H1' is serializable yet P1 kills it."""
        import repro

        assert repro.classify(H1_PRIME.history) is L.PL_3
        assert not preventative_satisfies(H1_PRIME.history, L.PL_3)
        assert PreventativeAnalysis(H1_PRIME.history).exhibits(P.P1)

    def test_h2_prime_legal_but_rejected_by_p2(self):
        import repro

        assert repro.classify(H2_PRIME.history) is L.PL_3
        assert not preventative_satisfies(H2_PRIME.history, L.PL_3)
        assert PreventativeAnalysis(H2_PRIME.history).exhibits(P.P2)


class TestContainment:
    """Preventative acceptance implies generalized acceptance, per level."""

    @pytest.mark.parametrize("level", [L.PL_1, L.PL_2, L.PL_2_99, L.PL_3])
    def test_on_canonical_corpus(self, level, canonical_history):
        from repro.core.levels import satisfies

        h = canonical_history.history
        if preventative_satisfies(h, level):
            assert satisfies(h, level).ok

    @pytest.mark.parametrize("level", [L.PL_1, L.PL_2, L.PL_2_99, L.PL_3])
    def test_on_anomaly_corpus(self, level, anomaly_history):
        from repro.core.levels import satisfies

        h = anomaly_history.history
        if preventative_satisfies(h, level):
            assert satisfies(h, level).ok


class TestClassify:
    def test_strict_serial_is_degree3(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        assert preventative_classify(h) is L.PL_3

    def test_p0_means_none(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x1 << x2]")
        assert preventative_classify(h) is None

    def test_report_describe(self):
        a = analysis("w1(x1) r2(x1) c1 c2")
        assert "P1" in a.report(P.P1).describe()
