"""Scheduler interface: the concurrency-control seam of the engine.

A scheduler decides the semantics of the five primitive operations —
``read``, ``write`` (update/insert/delete), ``predicate_read``, ``commit``
and ``abort`` — against the shared :class:`MultiVersionStore`, narrating
everything it does through the :class:`HistoryRecorder`.

Three families are provided, mirroring the implementation space the paper
insists its definitions must admit (Sections 1, 3):

* :class:`~repro.engine.locking.LockingScheduler` — single-version strict
  locking, parameterized by the Figure 1 lock profiles;
* :class:`~repro.engine.optimistic.OptimisticScheduler` — backward-validation
  OCC in the style the paper's authors built in Thor;
* :class:`~repro.engine.mvcc.SnapshotIsolationScheduler` and
  :class:`~repro.engine.mvcc.ReadCommittedMVScheduler` — multi-version
  schemes in the style of Oracle.

Operations raise :class:`~repro.exceptions.WouldBlock` when a lock must be
waited for and :class:`~repro.exceptions.TransactionAborted` (subclasses)
when the scheduler kills the transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from ..core.predicates import Predicate
from .recorder import HistoryRecorder
from .storage import MultiVersionStore
from .transaction import Transaction

__all__ = ["PredicateResult", "Scheduler"]


@dataclass(frozen=True)
class PredicateResult:
    """Outcome of a predicate read: the matched objects and their values,
    in deterministic (sorted) object order."""

    matched: Tuple[Tuple[str, Any], ...]

    def objects(self) -> Tuple[str, ...]:
        return tuple(obj for obj, _v in self.matched)

    def values(self) -> Dict[str, Any]:
        return dict(self.matched)

    def __len__(self) -> int:
        return len(self.matched)


class Scheduler:
    """Base class wiring store and recorder; subclasses implement the
    operations."""

    #: Human-readable scheme name (reports, benchmarks).
    name: str = "abstract"

    def __init__(self) -> None:
        self.store = MultiVersionStore()
        self.recorder = HistoryRecorder()
        #: Observability sinks; ``None`` (the default) disables
        #: instrumentation entirely — see :meth:`instrument`.
        self.metrics = None
        self.tracer = None
        #: The :class:`~repro.engine.factory.SchedulerConfig` this scheduler
        #: was built from (``None`` when constructed directly).
        self.config = None

    # -- observability ---------------------------------------------------

    def instrument(self, *, metrics=None, tracer=None) -> "Scheduler":
        """Attach a :class:`~repro.observability.MetricsRegistry` and/or
        :class:`~repro.observability.Tracer`, threading them into the
        recorder, the lock manager (locking schedulers) and the store.
        The simulator calls this when constructed with ``metrics=`` /
        ``tracer=``; standalone scheduler users call it directly.  Every
        instrumented site is guarded by an ``is not None`` check, so an
        un-instrumented scheduler pays nothing."""
        self.metrics = metrics
        self.tracer = tracer
        self.recorder.instrument(metrics=metrics, scheduler=self.name)
        self.store.instrument(metrics=metrics, scheduler=self.name)
        locks = getattr(self, "locks", None)
        if locks is not None:
            locks.instrument(
                metrics=metrics, tracer=tracer, scheduler=self.name
            )
        return self

    def _abort_metric(self, reason: str) -> None:
        """Count one scheduler-initiated abort by machine-readable reason
        (``validation-failure``, ``first-committer-wins``, ``wounded``;
        the simulator adds ``deadlock`` for its victims)."""
        if self.metrics is not None:
            self.metrics.counter(
                "txn_aborts_total", "transaction aborts by reason"
            ).inc(scheduler=self.name, reason=reason)

    # -- lifecycle -----------------------------------------------------

    def on_begin(self, txn: Transaction) -> None:
        """Hook: called by the database right after a transaction starts."""

    def read(
        self,
        txn: Transaction,
        obj: str,
        *,
        cursor: bool = False,
        for_update: bool = False,
    ) -> Any:
        """Read ``obj``; returns the value and records the read event.

        ``for_update`` is the SQL ``SELECT ... FOR UPDATE`` hint: locking
        schedulers take the write lock immediately (avoiding upgrade
        deadlocks on read-modify-write); other schedulers ignore it."""
        raise NotImplementedError

    def write(
        self, txn: Transaction, obj: str, value: Any, *, dead: bool = False
    ) -> None:
        """Write (or, with ``dead=True``, delete) ``obj``."""
        raise NotImplementedError

    def predicate_read(
        self, txn: Transaction, predicate: Predicate
    ) -> PredicateResult:
        """Evaluate ``predicate`` over the transaction's view, recording the
        version set; item reads of matched tuples are the caller's choice
        (``select`` issues them, ``count``/``update_where`` do not)."""
        raise NotImplementedError

    def commit(self, txn: Transaction) -> None:
        """Validate (scheme-specific) and install; may raise
        :class:`~repro.exceptions.TransactionAborted`."""
        raise NotImplementedError

    def abort(self, txn: Transaction) -> None:
        """Undo and release; always succeeds."""
        raise NotImplementedError

    # -- recovery --------------------------------------------------------

    def restore(self, state: Dict[str, Tuple[Any, Any, bool]]) -> None:
        """Crash-recovery redo: seed a *fresh* scheduler's volatile store
        with the committed state replayed from a durable recorder log.

        ``state`` maps each object to its latest committed
        ``(version, value, dead)``.  The versions already exist in the log,
        so nothing is re-recorded — this rebuilds the store the way a real
        system rebuilds its caches from the WAL.  Must be called before any
        transaction begins on the restarted scheduler.
        """
        self.store.install(
            (version, value, dead)
            for _obj, (version, value, dead) in sorted(state.items())
        )

    def redo(self, writes: Iterable[Tuple[Any, Any, bool]]) -> None:
        """Crash-recovery redo of one *prepared* transaction's writes.

        The two-phase-commit service layer snapshots a participant's write
        set at prepare time; when the commit decision arrives after a crash
        has destroyed the live transaction, the saved ``(version, value,
        dead)`` triples are re-installed here (the events are already in the
        recorder log — the caller records the Commit itself)."""
        self.store.install(writes)

    # -- introspection ---------------------------------------------------

    def waits_of(self, txn: Transaction):
        """Transactions ``txn`` is currently waiting for (locking only)."""
        return frozenset()
