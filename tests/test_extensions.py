"""Tests for the extension-level phenomena (repro.core.extensions)."""


from repro.core import Analysis, parse_history
from repro.core.phenomena import Phenomenon as G


def analysis(text, **kw):
    return Analysis(parse_history(text, **kw))


class TestGSingle:
    def test_read_skew(self):
        a = analysis("r1(x0, 5) w2(x2, 4) w2(y2, 6) c2 r1(y2, 6) c1 [x0 << x2]")
        assert a.exhibits(G.G_SINGLE)

    def test_lost_update(self):
        a = analysis(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert a.exhibits(G.G_SINGLE)

    def test_write_skew_not_g_single(self):
        a = analysis(
            "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) w2(y2) c1 c2 "
            "[x0 << x1, y0 << y2]"
        )
        assert not a.exhibits(G.G_SINGLE)
        assert a.exhibits(G.G2)

    def test_serial_history_clean(self):
        assert not analysis("w1(x1) c1 r2(x1) c2").exhibits(G.G_SINGLE)


class TestGSIa:
    def test_read_without_start_order(self):
        # T1 reads T2's write but began before T2 committed: interference.
        a = analysis("r1(x0, 5) w2(x2, 4) w2(y2, 6) c2 r1(y2, 6) c1 [x0 << x2]")
        assert a.exhibits(G.G_SIA)

    def test_start_ordered_read_is_clean(self):
        # T2 begins after T1's commit: the wr edge has its start edge.
        a = analysis("w1(x1) c1 b2 r2(x1) c2")
        assert not a.exhibits(G.G_SIA)

    def test_implicit_start_at_first_event(self):
        # No begin events: T2's first event is after c1, so start-ordered.
        a = analysis("w1(x1) c1 r2(x1) c2")
        assert not a.exhibits(G.G_SIA)

    def test_begin_event_pins_early_start(self):
        # The begin event places T2's start before T1's commit even though
        # its first operation comes later: interference.
        a = analysis("b2 w1(x1) c1 r2(x1) c2")
        assert a.exhibits(G.G_SIA)


class TestGSIb:
    def test_lost_update_is_missed_effects(self):
        a = analysis(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert a.exhibits(G.G_SIB)

    def test_write_skew_is_not_g_si(self):
        a = analysis(
            "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) w2(y2) c1 c2 "
            "[x0 << x1, y0 << y2]"
        )
        assert not a.exhibits(G.G_SIB)
        assert not a.exhibits(G.G_SI)

    def test_serial_clean(self):
        assert not analysis("w1(x1) c1 r2(x1) w2(x2) c2").exhibits(G.G_SIB)


class TestGSIComposite:
    def test_either_part_triggers(self):
        read_skew = analysis(
            "r1(x0, 5) w2(x2, 4) w2(y2, 6) c2 r1(y2, 6) c1 [x0 << x2]"
        )
        assert read_skew.exhibits(G.G_SI)


class TestGCursor:
    def test_cursor_lost_update(self):
        a = analysis(
            "rc1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert a.exhibits(G.G_CURSOR)

    def test_plain_lost_update_not_cursor(self):
        a = analysis(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert not a.exhibits(G.G_CURSOR)

    def test_cursor_read_without_cycle_clean(self):
        a = analysis("w1(x1) c1 rc2(x1) c2")
        assert not a.exhibits(G.G_CURSOR)

    def test_witness_names_the_object(self):
        a = analysis(
            "rc1(x0) r2(x0) w2(x2) c2 w1(x1) c1 [x0 << x2 << x1]"
        )
        assert "'x'" in a.report(G.G_CURSOR).witnesses[0].description
