"""Tests for repro.observability: metrics, tracing, provenance, and the
engine/checker instrumentation built on them."""

import json

import pytest

import repro
from repro.core.incremental import IncrementalAnalysis
from repro.core.phenomena import Phenomenon
from repro.engine.database import Database
from repro.engine.locking import LockingScheduler
from repro.engine.mvcc import SnapshotIsolationScheduler
from repro.engine.optimistic import OptimisticScheduler
from repro.engine.programs import Increment, Program, Read, Write
from repro.engine.simulator import Simulator
from repro.observability import (
    JsonlSink,
    MetricsRegistry,
    Tracer,
    provenance_record,
    read_trace,
    span_tree,
    watching_analysis,
    witness_cycle,
)

WRITE_SKEW = "r1(x0) r1(y0) r2(x0) r2(y0) w1(x1) c1 w2(y2) c2"


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations")
        c.inc(kind="read")
        c.inc(2, kind="read")
        c.inc(kind="write")
        assert c.value(kind="read") == 3
        assert c.value(kind="write") == 1
        assert c.value(kind="never") == 0
        assert c.total == 4

    def test_bound_counter_is_same_series(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        bound = c.labels(kind="read")
        bound.inc()
        bound.inc(4)
        c.inc(kind="read")
        assert c.value(kind="read") == 6

    def test_registration_is_memoized_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("steps", buckets=(1, 10, 100))
        for v in (1, 5, 50, 500):
            h.observe(v)
        assert h.count() == 4
        assert h.sum_of() == 556
        assert h.mean() == 139
        series = h.series()[()]
        assert series.min == 1 and series.max == 500
        assert series.bucket_counts == [1, 1, 1, 1]  # <=1, <=10, <=100, +Inf

    def test_clock_ticks(self):
        reg = MetricsRegistry()
        assert reg.clock == 0
        assert reg.tick() == 1
        assert reg.tick(5) == 6

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text").inc(scheduler="occ")
        reg.histogram("h").observe(3, kind="x")
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["series"][0] == {
            "labels": {"scheduler": "occ"},
            "value": 1,
        }
        hist = snap["h"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == 3

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(kind="read")
        text = reg.render_text()
        assert "c (counter)" in text
        assert "{kind=read}: 1" in text

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops help").inc(kind="read")
        reg.histogram("lat", buckets=(1, 2)).observe(1.5)
        text = reg.render_prometheus()
        assert "# HELP ops_total ops help" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{kind="read"} 1' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_stacked_nesting(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                tr.event("hello", n=1)
        inner = tr.spans("inner")[0]
        outer = tr.spans("outer")[0]
        event = tr.events("hello")[0]
        assert inner["parent"] == outer["id"]
        assert event["span"] == inner["id"]
        assert outer["parent"] is None

    def test_explicit_parent_interleaved(self):
        tr = Tracer()
        root = tr.span("run", stack=False)
        a = tr.span("txn", parent=root, stack=False, tid=1)
        b = tr.span("txn", parent=root, stack=False, tid=2)
        a.event("op", step="read")
        b.end(outcome="committed")
        a.end(outcome="aborted")
        root.end()
        txns = tr.spans("txn")
        assert [s["attrs"]["tid"] for s in txns] == [2, 1]  # close order
        assert all(s["parent"] == root.id for s in txns)
        assert tr.events("op")[0]["span"] == a.id

    def test_seq_is_monotone_total_order(self):
        tr = Tracer()
        with tr.span("s"):
            tr.event("e1")
            tr.event("e2")
        seqs = [r["seq"] for r in tr.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_span_attrs_and_error_capture(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("s", a=1) as span:
                span.set(b=2)
                raise RuntimeError("boom")
        record = tr.spans("s")[0]
        assert record["attrs"]["a"] == 1 and record["attrs"]["b"] == 2
        assert "boom" in record["attrs"]["error"]

    def test_attrs_are_sanitised_to_json(self):
        tr = Tracer()
        tr.event("e", versions=frozenset({2, 1}), obj=object())
        attrs = tr.events("e")[0]["attrs"]
        json.dumps(attrs)  # must not raise
        assert attrs["versions"] == [1, 2]
        assert isinstance(attrs["obj"], str)

    def test_double_end_is_idempotent(self):
        tr = Tracer()
        span = tr.span("s")
        span.end()
        span.end()
        assert len(tr.spans("s")) == 1


class TestJsonlRoundTrip:
    def test_sink_read_trace_span_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            tr = Tracer(sink)
            with tr.span("root", kind="demo"):
                with tr.span("child"):
                    tr.event("leaf", n=7)
        records = read_trace(path)
        assert records == tr.records
        roots = span_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert root["record"]["name"] == "root"
        assert root["children"][0]["record"]["name"] == "child"
        assert root["children"][0]["events"][0]["attrs"] == {"n": 7}

    def test_every_line_is_valid_json_with_schema(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            tr = Tracer(sink)
            with tr.span("s"):
                tr.event("e")
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert record["kind"] in ("span", "event")
                if record["kind"] == "span":
                    assert {"id", "parent", "name", "start", "end", "seq"} <= set(record)
                else:
                    assert {"id", "span", "name", "time", "seq"} <= set(record)


# ----------------------------------------------------------------------
# engine instrumentation
# ----------------------------------------------------------------------


def _locked_increments(seed, *, metrics=None, tracer=None):
    db = Database(LockingScheduler("serializable"))
    db.load({"x": 0})
    programs = [
        Program("p1", [Read("x", into="a"), Increment("x")]),
        Program("p2", [Read("x", into="b"), Increment("x")]),
    ]
    sim = Simulator(db, programs, seed=seed, metrics=metrics, tracer=tracer)
    return sim.run()


class TestSimulatorMetrics:
    def test_event_counters_match_history(self):
        reg = MetricsRegistry()
        result = _locked_increments(0, metrics=reg)
        counter = reg.counter("history_events_total")
        sched = "locking/serializable"
        by_type = {
            t: counter.value(type=t, scheduler=sched)
            for t in ("begin", "read", "write", "commit", "abort")
        }
        events = [type(e).__name__.lower() for e in result.history.events]
        # The recorder emits exactly the history's events (minus the setup
        # transaction, which is loaded before instrumentation is attached).
        for kind in ("commit", "abort"):
            assert by_type[kind] == sum(
                1 for e in events if e == kind
            ) - (1 if kind == "commit" else 0)  # setup commit uncounted
        assert by_type["begin"] == sum(len(o.tids) for o in result.outcomes)

    def test_sim_steps_and_result_metrics(self):
        reg = MetricsRegistry()
        result = _locked_increments(1, metrics=reg)
        assert result.metrics is reg
        assert (
            reg.counter("sim_steps_total").total == result.steps_executed
        )
        assert reg.clock == result.steps_executed

    def test_disabled_by_default(self):
        result = _locked_increments(0)
        assert result.metrics is None
        scheduler = LockingScheduler("serializable")
        assert scheduler.metrics is None and scheduler.tracer is None

    def test_txn_spans_cover_every_attempt(self):
        tr = Tracer()
        result = _locked_increments(6, tracer=tr)
        attempts = sum(len(o.tids) for o in result.outcomes)
        txn_spans = tr.spans("txn")
        assert len(txn_spans) == attempts
        run_span = tr.spans("simulation.run")[0]
        assert all(s["parent"] == run_span["id"] for s in txn_spans)
        outcomes = [s["attrs"]["outcome"] for s in txn_spans]
        assert outcomes.count("committed") == result.committed_count

    def test_occ_validation_metrics(self):
        reg = MetricsRegistry()
        db = Database(OptimisticScheduler())
        db.load({"x": 0, "y": 0})
        programs = [
            Program("p1", [Read("x", into="a"), Write("y", 1)]),
            Program("p2", [Read("y", into="b"), Write("x", 2)]),
        ]
        total_failed = 0
        for seed in range(10):
            db = Database(OptimisticScheduler())
            db.load({"x": 0, "y": 0})
            Simulator(db, programs, seed=seed, metrics=reg).run()
        occ = reg.counter("occ_validations_total")
        total_failed = occ.value(scheduler="optimistic", outcome="failed")
        aborts = reg.counter("txn_aborts_total").value(
            scheduler="optimistic", reason="validation-failure"
        )
        assert occ.value(scheduler="optimistic", outcome="ok") > 0
        assert aborts == total_failed

    def test_si_first_committer_wins_metrics(self):
        reg = MetricsRegistry()
        programs = [
            Program("p1", [Read("x", into="a"), Increment("x")]),
            Program("p2", [Read("x", into="b"), Increment("x")]),
        ]
        losses = 0
        for seed in range(10):
            db = Database(SnapshotIsolationScheduler())
            db.load({"x": 0})
            Simulator(db, programs, seed=seed, metrics=reg).run()
        losses = reg.counter("txn_aborts_total").value(
            scheduler="snapshot-isolation", reason="first-committer-wins"
        )
        assert losses > 0  # concurrent increments must conflict sometimes


class TestDeadlockProvenance:
    """Satellite: a known two-transaction upgrade deadlock produces exactly
    one victim event carrying the correct waits-for cycle."""

    SEED = 6  # both programs read-lock x before either upgrades

    def test_single_victim_event_with_cycle(self):
        reg = MetricsRegistry()
        tr = Tracer()
        result = _locked_increments(self.SEED, metrics=reg, tracer=tr)
        assert result.deadlocks == 1
        events = tr.events("deadlock")
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert sorted(attrs["cycle"]) == [1, 2]
        assert attrs["waits"] == {"1": [2], "2": [1]}
        # The originally-youngest transaction (T2, program p2) is chosen.
        assert attrs["victim"] == 2
        assert attrs["victim_program"] == "p2"

    def test_deadlock_metrics(self):
        reg = MetricsRegistry()
        result = _locked_increments(self.SEED, metrics=reg)
        assert result.deadlocks == 1
        assert reg.counter("deadlock_victims_total").total == 1
        cycle_len = reg.histogram("waits_for_cycle_len")
        assert cycle_len.count(scheduler="locking/serializable") == 1
        assert cycle_len.sum_of(scheduler="locking/serializable") == 2
        assert (
            reg.counter("txn_aborts_total").value(
                scheduler="locking/serializable", reason="deadlock"
            )
            == 1
        )
        assert (
            reg.counter("txn_restarts_total").value(
                scheduler="locking/serializable", reason="deadlock"
            )
            == 1
        )
        # Both programs still commit after the restart.
        assert result.committed_count == 2

    def test_lock_wait_durations_in_logical_steps(self):
        reg = MetricsRegistry()
        _locked_increments(self.SEED, metrics=reg)
        holds = reg.histogram("lock_hold_steps")
        assert holds.count(scope="item", scheduler="locking/serializable") > 0
        grants = reg.counter("lock_grants_total")
        assert grants.value(
            scope="item", mode="write", scheduler="locking/serializable"
        ) > 0


# ----------------------------------------------------------------------
# checker instrumentation
# ----------------------------------------------------------------------


class TestCheckerTimings:
    def test_report_timings_populated(self):
        report = repro.check(WRITE_SKEW)
        assert "extract" in report.timings
        assert "total" in report.timings
        assert str(Phenomenon.G2) in report.timings
        assert all(v >= 0 for v in report.timings.values())

    def test_describe_timings(self):
        report = repro.check(WRITE_SKEW)
        text = report.describe_timings()
        assert "extract" in text and "us" in text

    def test_check_with_metrics(self):
        reg = MetricsRegistry()
        repro.check(WRITE_SKEW, metrics=reg)
        assert reg.counter("checker_checks_total").total == 1
        assert reg.counter("checker_edges_total").total > 0
        assert reg.histogram("checker_extract_seconds").count() == 1
        per_ph = reg.histogram("checker_phenomenon_seconds")
        assert per_ph.count(phenomenon="G2") == 1

    def test_check_with_tracer_builds_span_tree(self):
        tr = Tracer()
        repro.check(WRITE_SKEW, tracer=tr)
        roots = span_tree(tr.records)
        assert [r["record"]["name"] for r in roots] == ["checker.check"]
        names = {c["record"]["name"] for c in roots[0]["children"]}
        assert "checker.extract" in names or any(
            c["record"]["name"] == "checker.extract"
            for r in roots
            for c in _walk(r)
        )

    def test_check_many_serial_threads_metrics(self):
        reg = MetricsRegistry()
        repro.check_many([WRITE_SKEW, "w1(x1) c1"], processes=1, metrics=reg)
        assert reg.counter("checker_checks_total").total == 2


def _walk(node):
    yield node
    for child in node["children"]:
        yield from _walk(child)


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------


class TestProvenance:
    def _latched(self, text):
        tr = Tracer()
        analysis = watching_analysis(tr)
        history = repro.parse_history(text)
        for event in history.events:
            analysis.add(event)
        analysis.finish()
        return tr, analysis

    def test_write_skew_names_witness_edges(self):
        tr, analysis = self._latched(WRITE_SKEW)
        g2 = [
            e
            for e in tr.events("phenomenon")
            if e["attrs"]["phenomenon"] == "G2"
        ]
        assert len(g2) == 1
        attrs = g2[0]["attrs"]
        assert sorted(attrs["cycle_tids"]) == [1, 2]
        kinds = [edge["kind"] for edge in attrs["cycle"]]
        assert kinds == ["rw", "rw"]
        objs = {edge["obj"] for edge in attrs["cycle"]}
        assert objs == {"x", "y"}
        # Supporting events point back at real history positions.
        for ev in attrs["events"]:
            assert ev["tid"] in (1, 2)
            assert 0 <= ev["index"] < len(analysis.events)

    def test_each_phenomenon_fires_once(self):
        tr, _ = self._latched(WRITE_SKEW)
        names = [e["attrs"]["phenomenon"] for e in tr.events("phenomenon")]
        assert sorted(names) == ["G2", "G2-item"]

    def test_g1a_witnesses(self):
        tr, _ = self._latched("w1(x1) r2(x1) c2 a1")
        g1a = [
            e
            for e in tr.events("phenomenon")
            if e["attrs"]["phenomenon"] == "G1a"
        ]
        assert len(g1a) == 1
        witnesses = g1a[0]["attrs"]["witnesses"]
        assert witnesses and witnesses[0]["tid"] == 2

    def test_witness_cycle_absent(self):
        analysis = IncrementalAnalysis()
        history = repro.parse_history("w1(x1) c1 r2(x1) c2")
        for event in history.events:
            analysis.add(event)
        assert witness_cycle(analysis, Phenomenon.G2) is None
        record = provenance_record(analysis, Phenomenon.G2)
        assert "cycle" not in record

    def test_g0_cycle_witness(self):
        tr, _ = self._latched(
            "w1(x1) w2(x2) w2(y2) w1(y1) c1 c2 [x1 << x2, y1 << y2]"
        )
        g0 = [
            e
            for e in tr.events("phenomenon")
            if e["attrs"]["phenomenon"] == "G0"
        ]
        assert len(g0) == 1
        assert all(edge["kind"] == "ww" for edge in g0[0]["attrs"]["cycle"])

    def test_incremental_counters(self):
        reg = MetricsRegistry()
        analysis = IncrementalAnalysis(metrics=reg)
        history = repro.parse_history(WRITE_SKEW)
        for event in history.events:
            analysis.add(event)
        assert (
            reg.counter("incremental_events_total").total
            == analysis.events_consumed
            == len(history.events)
        )
        assert (
            reg.counter("incremental_edges_total").total
            == analysis.edges_inserted
        )


# ----------------------------------------------------------------------
# truncated traces and orphan events (crash-during-trace resilience)
# ----------------------------------------------------------------------


class TestTruncatedTrace:
    def _trace_lines(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                tr.event("leaf", n=1)
        return [json.dumps(r, sort_keys=True) for r in tr.records]

    def test_truncated_final_line_is_skipped_with_count(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        lines = self._trace_lines()
        # A crash mid-write leaves a partial final line.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
            handle.write(lines[-1][: len(lines[-1]) // 2])
        records = read_trace(path)
        assert len(records) == len(lines) - 1
        assert records.skipped == 1

    def test_strict_mode_raises_on_truncation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        lines = self._trace_lines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(lines[0] + "\n" + lines[1][:10])
        with pytest.raises(ValueError):
            read_trace(path, strict=True)

    def test_crash_during_jsonl_sink_leaves_readable_trace(self, tmp_path):
        """Simulate a process dying mid-record: everything already flushed
        must parse; the partial tail is skipped, not fatal."""
        path = str(tmp_path / "trace.jsonl")
        lines = self._trace_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
            handle.write('{"kind": "span", "id": 99, "na')  # died here
        records = read_trace(path)
        assert records.skipped == 1
        tree = span_tree(records)
        assert tree[0]["record"]["name"] == "root"

    def test_clean_trace_has_zero_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self._trace_lines()) + "\n")
        assert read_trace(path).skipped == 0


class TestOrphanEvents:
    def test_orphans_attach_to_synthetic_root(self):
        tr = Tracer()
        span = tr.span("never-closed")
        span.event("stranded", n=1)
        tr.event("also-stranded", span=span)
        # The span never closes (crash): its record is never emitted.
        roots = span_tree(tr.records)
        assert len(roots) == 1
        orphans = roots[0]
        assert orphans["record"]["name"] == "orphans"
        assert orphans["record"]["id"] is None
        assert orphans["record"]["attrs"] == {"synthetic": True}
        assert [e["name"] for e in orphans["events"]] == [
            "stranded",
            "also-stranded",
        ]

    def test_no_orphans_no_synthetic_root(self):
        tr = Tracer()
        with tr.span("root"):
            tr.event("fine")
        assert [n["record"]["name"] for n in span_tree(tr.records)] == ["root"]

    def test_orphan_root_spans_event_times(self):
        tr = Tracer(clock=iter(range(100)).__next__)
        dangling = tr.span("dangling")
        tr.event("a", span=dangling)
        tr.event("b", span=dangling)
        node = span_tree(tr.records)[-1]
        times = [e["time"] for e in node["events"]]
        assert node["record"]["start"] == min(times)
        assert node["record"]["end"] == max(times)
