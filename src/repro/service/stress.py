"""Seeded fault-injection stress runs over the client/server stack.

:func:`run_stress` wires the whole tower together — simulated network,
server over a :class:`~repro.engine.factory.SchedulerConfig`-built engine,
N clients running transaction scripts — interleaves client progress under a
seeded driver RNG (split-phase calls, so many transactions are genuinely in
flight at once), optionally crashes and restarts the server mid-run, and
certifies every commit live against its declared isolation level with the
online :class:`~repro.core.incremental.IncrementalAnalysis` attached to the
server's recorder.

The returned :class:`StressResult` carries the three artifacts the paper's
client-centric thesis needs end to end:

* the **server-side history** (Adya notation text — byte-for-byte equal
  across runs with equal seeds and configs);
* the **client-observed journals** (what each client saw through the
  faults, attempt counts included — also byte-for-byte reproducible);
* the **certification map**: per committed transaction, its declared level
  and the live verdict that no proscribed phenomenon appeared.  Network
  faults may abort, delay and duplicate, but they must never make a
  committed transaction violate its declared level.
"""

from __future__ import annotations

import random
import warnings
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.opcheck import Op, check_operations
from ..core.incremental import IncrementalAnalysis
from ..core.levels import IsolationLevel
from ..observability.provenance import watching_analysis
from ..workloads.arrivals import ZipfianKeys
from .client import Client
from .cluster import Cluster
from .config import NetworkConfig, RetryPolicy, SchedulerConfig, StressConfig
from .errors import RequestTimeout, ServiceAborted, ServiceUnavailable
from .network import SimulatedNetwork
from .server import Server

__all__ = ["StressResult", "run_stress"]

#: The legacy-kwargs deprecation notice fires at most once per process
#: (tests reset this to re-arm it).
_LEGACY_KWARGS_WARNED = False


def _rank_percentile(ordered: List[int], q: float) -> int:
    """Nearest-rank percentile of a pre-sorted non-empty list."""
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100)
    return ordered[min(int(rank), len(ordered)) - 1]


@dataclass
class StressResult:
    """Everything observable about one stress run."""

    #: The server-side history in the paper's notation (lossless, the
    #: byte-for-byte reproducibility artifact).
    history_text: str
    #: Per-client journals: the client-observed histories.
    journals: Dict[str, Tuple[str, ...]]
    #: Per committed tid: (declared level, live certification verdict).
    certification: Dict[int, Tuple[Optional[IsolationLevel], bool]]
    committed: int
    client_aborts: int
    network_counters: Dict[str, int]
    server_counters: Dict[str, int]
    client_stats: Dict[str, int]
    crashes: int
    restarts: int
    deadlock_victims: int
    ticks: int
    #: The online monitor (finished) and the materialised history.
    monitor: IncrementalAnalysis = field(repr=False, default=None)
    history: Any = field(repr=False, default=None)
    metrics: Any = field(repr=False, default=None)
    #: The tracer (when one was attached): ``result.tracer.records`` feeds
    #: :mod:`repro.observability.traceview` and :func:`build_run_report`.
    tracer: Any = field(repr=False, default=None)
    #: Plain-dict summary of the run's configuration (fault schedule,
    #: retry policy, workload shape) — reproduced in run reports.
    config: Any = field(repr=False, default=None)
    #: Client-observed whole-transaction commit latencies in ticks, in
    #: completion order (deterministic per seed).
    commit_latencies: Tuple[int, ...] = ()
    #: Transactions the workload *offered*: scheduled arrivals in open-loop
    #: mode, ``clients * txns_per_client`` in closed-loop mode.
    offered: int = 0
    #: The :class:`~repro.observability.windows.WindowedTelemetry` fed
    #: during the run (when one was attached) — purely observational.
    windows: Any = field(repr=False, default=None)
    #: The :class:`~repro.service.cluster.Cluster` the run drove (cluster
    #: mode only; ``None`` for single-server runs).
    cluster: Any = field(repr=False, default=None)
    #: Client-observed operation intervals (one :class:`~repro.analysis.
    #: opcheck.Op` per transaction that committed or whose commit outcome
    #: stayed unknown) — the :meth:`opcheck` input.
    ops: Tuple[Op, ...] = ()
    #: Witnessed session-guarantee violations across all clients
    #: (stale-by-choice replica reads; empty when guarantees are enforced).
    session_violations: Tuple[Dict[str, Any], ...] = ()
    #: The :class:`~repro.observability.flight.FlightRecorder` attached to
    #: the run (``None`` unless ``run_stress(..., flight=...)``).
    flight: Any = field(repr=False, default=None)

    @property
    def all_certified(self) -> bool:
        return all(ok for _lvl, ok in self.certification.values())

    def dossiers(self):
        """Anomaly dossiers the flight recorder captured during the run
        (empty when no recorder was attached or nothing latched)."""
        return self.flight.dossiers() if self.flight is not None else []

    def opcheck(self, **kwargs):
        """Run the operation-interval checker over the run's client-observed
        transactions; see :func:`repro.analysis.opcheck.check_operations`."""
        keys = (self.config or {}).get("keys", 0)
        kwargs.setdefault("initial", {f"k{i}": 0 for i in range(keys)})
        return check_operations(self.ops, **kwargs)

    def latency_percentile(self, q: float) -> Optional[int]:
        """Nearest-rank percentile of the commit latencies (None if no
        transaction committed)."""
        if not self.commit_latencies:
            return None
        return _rank_percentile(sorted(self.commit_latencies), q)

    def strongest_level(self):
        return self.monitor.strongest_level()

    def journal_text(self) -> str:
        """All journals, deterministically concatenated."""
        return "\n".join(
            line
            for name in sorted(self.journals)
            for line in self.journals[name]
        )

    def summary(self) -> str:
        net = self.network_counters
        lines = [
            f"committed transactions : {self.committed}",
            f"client-visible aborts  : {self.client_aborts}",
            f"logical ticks          : {self.ticks}",
            f"messages sent/dropped/duplicated : "
            f"{net['sent']}/{net['dropped']}/{net['duplicated']}",
            f"server crashes/restarts: {self.crashes}/{self.restarts}",
            f"deadlock victims       : {self.deadlock_victims}",
            f"busy replies           : {self.server_counters['busy']}",
            f"dedup cache hits       : {self.server_counters['dedup_hits']}",
            f"client retries/timeouts: {self.client_stats['retries']}"
            f"/{self.client_stats['timeouts']}",
        ]
        certified_n = sum(1 for _l, ok in self.certification.values() if ok)
        shed = self.server_counters.get("shed", 0)
        lines.append(
            f"certified/aborted/shed : {certified_n}/{self.client_aborts}/{shed}"
        )
        if self.commit_latencies:
            ordered = sorted(self.commit_latencies)
            p50, p95, p99 = (
                _rank_percentile(ordered, q) for q in (50, 95, 99)
            )
            lines.append(
                f"commit latency p50/p95/p99 : {p50}/{p95}/{p99} ticks"
            )
        lines += [
            f"strongest level (live) : {self.strongest_level() or 'none'}",
            f"certification          : "
            + (
                f"all {len(self.certification)} commits certified"
                if self.all_certified
                else "FAILED for tids "
                + ", ".join(
                    str(t) for t, (_l, ok) in self.certification.items() if not ok
                )
            ),
        ]
        return "\n".join(lines)


class _ScriptRun:
    """One client's transaction script, driven as a coroutine."""

    def __init__(self, client: Client, gen) -> None:
        self.client = client
        self.gen = gen
        self.pending = None
        self.done = False

    def resume(self) -> None:
        try:
            self.pending = next(self.gen)
        except StopIteration:
            self.pending = None
            self.done = True

    @property
    def ready(self) -> bool:
        return not self.done and (self.pending is None or self.pending.settled)


class _TickWait:
    """A pending-shaped wait for a future tick: the driver's poll/next_wake
    protocol, with no message in flight.  Open-loop scripts yield one of
    these to sleep until their next scheduled arrival."""

    __slots__ = ("net", "tick")

    def __init__(self, net: SimulatedNetwork, tick: int) -> None:
        self.net = net
        self.tick = tick

    @property
    def settled(self) -> bool:
        return self.net.now >= self.tick

    def poll(self) -> bool:
        return self.settled

    @property
    def next_wake(self) -> Optional[int]:
        return None if self.settled else self.tick


def _op(client: Client, windows, kind: str, **fields: Any):
    """One timed logical operation: ``co_call`` plus a per-verb latency
    observation into the windowed telemetry (success path only — failed
    operations surface as aborts, counted separately)."""
    t0 = client.network.now
    reply = yield from client.co_call(kind, **fields)
    if windows is not None:
        now = client.network.now
        windows.observe_latency(kind, now - t0, now)
    return reply


def _pick_objs(
    rng: random.Random, keys: int, ops: int, hot: Optional[ZipfianKeys]
) -> List[int]:
    """The transaction's key set: uniform without a hot-key sampler,
    Zipf-skewed with one (both draw from the script's own RNG stream)."""
    n = min(ops, keys)
    if hot is not None:
        return hot.sample_distinct(rng, n)
    return rng.sample(range(keys), n)


def _run_one_txn(
    client: Client,
    objs: List[int],
    *,
    level: Optional[str],
    counters: Dict[str, int],
    windows,
    latencies: List[int],
    read_only: bool = False,
    ops_out: Optional[List[Op]] = None,
):
    """One transaction over ``objs`` — read-modify-write by default, plain
    reads with ``read_only`` (the replica-servable mix) — returning True on
    commit, False on abort/timeout (the caller decides whether to retry).

    With ``ops_out`` set, the transaction is also recorded as a
    client-observed operation interval (:class:`~repro.analysis.opcheck.
    Op`): committed transactions with their response tick, commit-timeout
    transactions as unknown-outcome ops, definite aborts not at all.
    """
    net_now = client.network.now
    reads: List[Tuple[str, Any]] = []
    writes: List[Tuple[str, Any]] = []
    tid: Optional[int] = None
    committing = False
    try:
        yield from _op(client, windows, "begin", level=level)
        tid = client.tid
        for obj in objs:
            key = f"k{obj}"
            if read_only:
                reply = yield from _op(client, windows, "read", obj=key)
                reads.append((key, reply.get("value") or 0))
            else:
                reply = yield from _op(
                    client, windows, "read", obj=key, for_update=True
                )
                value = reply.get("value") or 0
                reads.append((key, value))
                yield from _op(
                    client, windows, "write", obj=key, value=value + 1
                )
                writes.append((key, value + 1))
        committing = True
        reply = yield from _op(client, windows, "commit")
    except ServiceAborted:
        counters["aborts"] += 1
        if windows is not None:
            windows.observe_abort(client.network.now)
        return False
    except (RequestTimeout, ServiceUnavailable):
        # Outcome unknown (crashed server, exhausted busy-retries, or a
        # shed begin the policy gave up on): walk away; the transaction is
        # dead or will be undone at recovery, and the session's next begin
        # discards it.
        counters["aborts"] += 1
        client.tid = None
        if ops_out is not None and committing and writes:
            # The commit decision itself is in doubt: the op may or may not
            # have taken effect — exactly what an unknown-outcome Op models.
            ops_out.append(Op(
                len(ops_out), client.name, tid, net_now, None,
                tuple(reads), tuple(writes),
            ))
        if windows is not None:
            windows.observe_abort(client.network.now)
        return False
    latency = client.network.now - net_now
    latencies.append(latency)
    if ops_out is not None:
        ops_out.append(Op(
            len(ops_out), client.name, tid, net_now, client.network.now,
            tuple(reads), tuple(writes),
        ))
    if windows is not None:
        now = client.network.now
        windows.observe_latency("txn", latency, now)
        windows.observe_commit(reply.get("certified"), now)
    return True


def _transfer_script(
    client: Client,
    rng: random.Random,
    *,
    txns: int,
    keys: int,
    ops: int,
    level: Optional[str],
    counters: Dict[str, int],
    windows=None,
    latencies: Optional[List[int]] = None,
    hot: Optional[ZipfianKeys] = None,
    read_only_fraction: float = 0.0,
    ops_out: Optional[List[Op]] = None,
):
    """The closed-loop stress mix: read-modify-write over a small hot key
    space (``for_update`` reads, so locking engines do not drown in upgrade
    deadlocks), with client-side restart on aborts — a miniature of a real
    service's request handler.  ``read_only_fraction`` of transactions are
    plain-read-only instead — the replica-servable share of the mix (the
    draw is skipped entirely at 0.0, keeping the RNG stream byte-identical
    to pre-replication runs)."""
    if latencies is None:
        latencies = []
    committed = 0
    while committed < txns:
        read_only = (
            bool(read_only_fraction) and rng.random() < read_only_fraction
        )
        objs = _pick_objs(rng, keys, ops, hot)
        ok = yield from _run_one_txn(
            client, objs, level=level, counters=counters,
            windows=windows, latencies=latencies,
            read_only=read_only, ops_out=ops_out,
        )
        if ok:
            committed += 1


def _open_loop_script(
    client: Client,
    rng: random.Random,
    *,
    schedule: List[int],
    state: Dict[str, int],
    keys: int,
    ops: int,
    level: Optional[str],
    counters: Dict[str, int],
    windows,
    latencies: List[int],
    hot: Optional[ZipfianKeys],
    read_only_fraction: float = 0.0,
    ops_out: Optional[List[Op]] = None,
):
    """The open-loop worker: claim the next arrival off the shared
    schedule, sleep until its tick (or start immediately if it is already
    overdue — that backlog *is* the queue), serve it once, move on.  An
    aborted/abandoned arrival is **not** retried: offered load is the
    schedule's business, not the server's — which is exactly why queues
    can grow and the saturation knee becomes visible."""
    net = client.network
    while True:
        idx = state["next"]
        if idx >= len(schedule):
            return
        state["next"] = idx + 1
        tick = schedule[idx]
        if net.now < tick:
            yield _TickWait(net, tick)
        read_only = (
            bool(read_only_fraction) and rng.random() < read_only_fraction
        )
        objs = _pick_objs(rng, keys, ops, hot)
        yield from _run_one_txn(
            client, objs, level=level, counters=counters,
            windows=windows, latencies=latencies,
            read_only=read_only, ops_out=ops_out,
        )


def run_stress(
    config: Optional[StressConfig] = None,
    *,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
    flight: Optional[object] = None,
    **legacy: Any,
) -> StressResult:
    """Run one seeded stress workload; see the module docstring.

    The run's shape is a :class:`~repro.service.config.StressConfig`
    (``run_stress(StressConfig(clients=8, seed=3))``); ``metrics`` and
    ``tracer`` stay separate because they are live observability objects,
    not config values.  The loose keyword arguments this function
    historically took (``run_stress(clients=8, seed=3)``) are still
    accepted as a thin deprecation shim — they are packed into a
    ``StressConfig`` verbatim, with a once-per-process
    :class:`DeprecationWarning`.

    Determinism contract: equal configs (including all seeds) produce a
    byte-for-byte identical :attr:`StressResult.history_text` and journals.
    Attaching ``windows`` (a :class:`~repro.observability.windows.
    WindowedTelemetry`) is purely observational: it changes no byte of any
    artifact.

    With ``arrivals`` set the run is **open-loop**: transactions arrive on
    the process's seeded schedule over ``[0, horizon)`` ticks regardless of
    completions (``txns_per_client`` is ignored; the ``clients`` scripts
    act as a worker pool claiming arrivals).  An arrival whose turn comes
    late starts immediately — the backlog is the queue the windowed
    telemetry gauges.  Closed-loop runs (the default) retry aborted
    transactions until each client commits its quota; open-loop runs serve
    each arrival exactly once.

    With ``cluster`` set (a :class:`~repro.service.config.ClusterConfig`)
    the same workload runs against a sharded :class:`~repro.service.
    cluster.Cluster` instead of one server: clients route against the
    shard map, cross-shard transactions commit through 2PC, certification
    is global, and the cluster's own fault schedule (shard crashes,
    coordinator partitions, shard-map changes) runs alongside the
    workload.  A ``shards=1`` cluster produces byte-identical histories,
    journals and certification to the plain single-server run.

    The driver is tick-synchronized: whenever every script is blocked, the
    network's whole due message batch is delivered before any client gets
    to run again.  ``pipeline=True`` delivers that batch in one
    :meth:`~repro.service.network.SimulatedNetwork.drain_due` sweep;
    ``pipeline=False`` steps it one message at a time.  Both process the
    same messages in the same order with the same fault draws, so the two
    modes produce byte-identical histories, journals and traces — the flag
    only changes how much per-message driver overhead the run pays.
    """
    if legacy:
        if config is not None:
            raise TypeError(
                "pass either a StressConfig or legacy keyword arguments, "
                f"not both (got both config= and {sorted(legacy)})"
            )
        global _LEGACY_KWARGS_WARNED
        if not _LEGACY_KWARGS_WARNED:
            _LEGACY_KWARGS_WARNED = True
            warnings.warn(
                "run_stress(scheduler=..., clients=..., ...) keyword "
                "arguments are deprecated; build a StressConfig and pass "
                "run_stress(StressConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
        config = StressConfig(**legacy)
    cfg = config or StressConfig()
    scheduler = cfg.scheduler
    level = cfg.level
    clients = cfg.clients
    txns_per_client = cfg.txns_per_client
    keys = cfg.keys
    ops_per_txn = cfg.ops_per_txn
    seed = cfg.seed
    network = cfg.network
    retry = cfg.retry
    crash_after_commits = cfg.crash_after_commits
    restart_delay = cfg.restart_delay
    max_ticks = cfg.max_ticks
    pipeline = cfg.pipeline
    arrivals = cfg.arrivals
    horizon = cfg.horizon
    hot_keys = cfg.hot_keys
    admission = cfg.admission
    windows = cfg.windows
    config = (
        scheduler
        if isinstance(scheduler, SchedulerConfig)
        else SchedulerConfig(scheduler=scheduler, seed=seed)
    )
    if level is not None and config.level is None:
        from dataclasses import replace

        config = replace(
            config,
            level=(
                IsolationLevel.from_string(level)
                if isinstance(level, str)
                else level
            ),
        )
    netcfg = (network or NetworkConfig()).with_seed(
        (network.seed if network is not None and network.seed else seed * 7919 + 1)
    )
    policy = retry or RetryPolicy()
    net = SimulatedNetwork(netcfg, metrics=metrics, tracer=tracer)
    if tracer is not None:
        # The determinism contract extends to traces: re-clock the tracer
        # onto the network's logical tick counter so identical seeds yield
        # byte-identical span timestamps.
        tracer.use_clock(lambda: float(net.now))
    if flight is not None:
        if tracer is None:
            raise ValueError(
                "run_stress(flight=...) requires tracer=: the flight "
                "recorder rings buffer the tracer's records"
            )
        flight.attach(tracer)
    monitor = (
        watching_analysis(
            tracer,
            order_mode="commit",
            on_phenomenon=(
                flight.on_phenomenon if flight is not None else None
            ),
        )
        if tracer is not None
        else IncrementalAnalysis(order_mode="commit")
    )
    cluster: Optional[Cluster] = None
    initial = {f"k{i}": 0 for i in range(keys)}
    if cfg.cluster is not None:
        cluster = Cluster(
            net,
            config,
            config=cfg.cluster,
            initial=initial,
            monitor=monitor,
            metrics=metrics,
            tracer=tracer,
            admission=admission,
        )
        server = cluster  # the facade mirrors the single-Server surface
        if crash_after_commits is not None:
            cluster.schedule_crash(crash_after_commits, restart_delay)
    else:
        server = Server(
            net,
            config,
            initial=initial,
            monitor=monitor,
            metrics=metrics,
            tracer=tracer,
            admission=admission,
        )
    if flight is not None:
        flight.bind(
            network=net,
            cluster=cluster,
            server=server if cluster is None else None,
            windows=windows,
            seed=seed,
        )
    declared = config.declared_level
    level_name = str(declared) if declared is not None else None
    config_summary = {
        "scheduler": config.scheduler,
        "level": level_name,
        "clients": clients,
        "txns_per_client": txns_per_client,
        "keys": keys,
        "ops_per_txn": ops_per_txn,
        "seed": seed,
        "network": {
            "seed": netcfg.seed,
            "drop": netcfg.drop,
            "duplicate": netcfg.duplicate,
            "min_delay": netcfg.min_delay,
            "max_delay": netcfg.max_delay,
        },
        "retry": {
            "timeout": policy.timeout,
            "max_attempts": policy.max_attempts,
            "backoff": policy.backoff,
        },
        "crash_after_commits": crash_after_commits,
        "restart_delay": restart_delay,
        "pipeline": pipeline,
    }
    if cfg.cluster is not None:
        config_summary["cluster"] = {
            "shards": cfg.cluster.shards,
            "slots": cfg.cluster.slots,
            "map_changes": len(cfg.cluster.map_changes),
            "retry_every": cfg.cluster.retry_every,
            "crash_shard_after_prepares": cfg.cluster.crash_shard_after_prepares,
            "partition_coordinator_after_prepares": (
                cfg.cluster.partition_coordinator_after_prepares
            ),
        }
        if cfg.cluster.replicas:
            config_summary["cluster"]["replicas"] = cfg.cluster.replicas
            config_summary["cluster"]["replication_every"] = (
                cfg.cluster.replication_every
            )
            config_summary["cluster"]["replication_lag"] = list(
                cfg.cluster.replication_lag
            )
            config_summary["read_preference"] = cfg.read_preference
            config_summary["session_guarantees"] = (
                {
                    "read_your_writes": cfg.session_guarantees.read_your_writes,
                    "monotonic_reads": cfg.session_guarantees.monotonic_reads,
                    "causal": cfg.session_guarantees.causal,
                    "on_lag": cfg.session_guarantees.on_lag,
                }
                if cfg.session_guarantees is not None
                else None
            )
            config_summary["read_only_fraction"] = cfg.read_only_fraction
    schedule: List[int] = []
    if arrivals is not None:
        schedule = arrivals.schedule(horizon=horizon, seed=seed * 8191 + 3)
        config_summary["arrivals"] = {
            "kind": type(arrivals).__name__,
            "mean_rate": round(arrivals.mean_rate(horizon), 6),
            "horizon": horizon,
            "offered": len(schedule),
        }
    if hot_keys is not None:
        config_summary["hot_keys"] = {
            "keys": hot_keys.keys,
            "theta": hot_keys.theta,
        }
    if admission is not None:
        config_summary["admission"] = {
            "max_active": admission.max_active,
            "retry_after": admission.retry_after,
            "shed_probability": admission.shed_probability,
            "on_uncertified": admission.on_uncertified,
            "certify_every": admission.certify_every,
        }
    run_span = None
    if tracer is not None:
        # Stacked root: parentless events anywhere below (server crashes,
        # net partitions, phenomenon provenance) nest under the run.
        run_span = tracer.span("stress.run", **config_summary)
    driver_rng = random.Random(seed)
    counters = {"aborts": 0}
    latencies: List[int] = []
    ops_log: List[Op] = []
    arrival_state = {"next": 0}
    runs: List[_ScriptRun] = []
    for i in range(clients):
        if cluster is not None:
            client = cluster.client(
                f"c{i}", policy=policy,
                read_preference=cfg.read_preference,
                guarantees=cfg.session_guarantees,
            )
        else:
            client = Client(
                net, name=f"c{i}", policy=policy, metrics=metrics,
                tracer=tracer,
            )
        script_rng = random.Random(seed * 1_000_003 + i + 1)
        if arrivals is not None:
            script = _open_loop_script(
                client,
                script_rng,
                schedule=schedule,
                state=arrival_state,
                keys=keys,
                ops=ops_per_txn,
                level=level_name,
                counters=counters,
                windows=windows,
                latencies=latencies,
                hot=hot_keys,
                read_only_fraction=cfg.read_only_fraction,
                ops_out=ops_log,
            )
        else:
            script = _transfer_script(
                client,
                script_rng,
                txns=txns_per_client,
                keys=keys,
                ops=ops_per_txn,
                level=level_name,
                counters=counters,
                windows=windows,
                latencies=latencies,
                hot=hot_keys,
                read_only_fraction=cfg.read_only_fraction,
                ops_out=ops_log,
            )
        runs.append(_ScriptRun(client, script))
    restart_at: Optional[int] = None
    crashed_once = False
    start_tick = net.now
    arrivals_seen = 0
    sheds_seen = 0
    while True:
        if windows is not None:
            # Observation only: nothing below may influence the run.
            now = net.now
            while (
                arrivals_seen < len(schedule)
                and schedule[arrivals_seen] <= now
            ):
                windows.observe_arrival(schedule[arrivals_seen])
                arrivals_seen += 1
            shed_total = server.counters["shed"]
            if shed_total > sheds_seen:
                windows.sheds.inc(now, shed_total - sheds_seen)
                sheds_seen = shed_total
            backlog = (
                bisect_right(schedule, now) - arrival_state["next"]
                if schedule
                else 0
            )
            windows.set_gauges(
                queue_depth=max(backlog, 0),
                certification_lag=server.certification_lag if server.up else 0,
            )
            if cluster is not None and len(cluster.shards) > 1:
                windows.set_cluster_gauges(
                    in_doubt=cluster.in_doubt,
                    shard_certification_lag=(
                        cluster.shard_certification_lags()
                    ),
                    shard_queue_depth=cluster.shard_queue_depths(),
                )
            windows.maybe_sample(now)
            if flight is not None:
                flight.check_slos(now)
        if cluster is not None:
            # The cluster owns its whole deterministic fault schedule
            # (stress crash included) — one tick per driver iteration, in
            # the same loop position as the single-server crash block.
            cluster.tick()
        else:
            if (
                crash_after_commits is not None
                and not crashed_once
                and server.commit_count >= crash_after_commits
            ):
                server.crash()
                crashed_once = True
                restart_at = net.now + restart_delay
            if restart_at is not None and net.now >= restart_at:
                server.restart()
                restart_at = None
        active = [r for r in runs if not r.done]
        if not active:
            break
        if net.now - start_tick > max_ticks:
            raise RuntimeError(
                f"stress run exceeded {max_ticks} ticks "
                f"({sum(1 for r in runs if r.done)}/{len(runs)} scripts done)"
            )
        for run in active:
            if run.pending is not None:
                run.pending.poll()
        ready = [r for r in active if r.ready]
        if ready:
            driver_rng.choice(ready).resume()
            continue
        # Every script is blocked: deliver the network's whole due batch
        # before any client runs again (tick-synchronized; see docstring).
        if pipeline:
            delivered = net.drain_due()
        else:
            delivered = 1 if net.step() else 0
            while delivered and net.has_due:
                net.step()
                delivered += 1
        if not delivered:
            # Nothing in flight: jump to the earliest client wake-up (or
            # the server restart) instead of idling tick by tick.
            wakes = [
                r.pending.next_wake
                for r in active
                if r.pending is not None and r.pending.next_wake is not None
            ]
            if cluster is not None:
                if cluster.next_wake is not None:
                    wakes.append(cluster.next_wake)
            elif restart_at is not None:
                wakes.append(restart_at)
            net.advance(max(1, min(wakes) - net.now) if wakes else 1)
    if cluster is not None:
        cluster.settle()
    elif restart_at is not None:
        server.restart()
    server.flush_certification()  # settle any batched verdicts
    if windows is not None:
        now = net.now
        while arrivals_seen < len(schedule):
            windows.observe_arrival(schedule[arrivals_seen])
            arrivals_seen += 1
        shed_total = server.counters["shed"]
        if shed_total > sheds_seen:
            windows.sheds.inc(now, shed_total - sheds_seen)
        windows.set_gauges(queue_depth=0, certification_lag=0)
        if cluster is not None and len(cluster.shards) > 1:
            windows.set_cluster_gauges(
                in_doubt=cluster.in_doubt,
                shard_certification_lag=cluster.shard_certification_lags(),
                shard_queue_depth=cluster.shard_queue_depths(),
            )
        windows.sample(now)
        if flight is not None:
            flight.check_slos(now)
    if tracer is not None:
        for run in runs:
            run.client.close_trace()
    monitor.finish()
    if run_span is not None:
        run_span.end(
            committed=server.commit_count,
            client_aborts=counters["aborts"],
            crashes=server.crashes,
            restarts=server.restarts,
            deadlock_victims=server.deadlock_victims,
            ticks=net.now,
        )
    # Final (authoritative) certification pass: phenomena only accumulate,
    # so re-verify every commit against the finished monitor.
    certification: Dict[int, Tuple[Optional[IsolationLevel], bool]] = {}
    history = server.history()
    declared_map = server.declared
    for tid in sorted(history.committed - {0}):
        lvl = declared_map.get(tid)
        certification[tid] = (
            lvl,
            monitor.provides(lvl) if lvl is not None else True,
        )
    from ..core.formatting import format_history

    client_stats = {"retries": 0, "timeouts": 0, "busy": 0, "shed": 0}
    for run in runs:
        for k, v in run.client.stats.items():
            client_stats[k] += v
    session_violations = tuple(sorted(
        (
            v
            for run in runs
            for v in getattr(run.client, "violations", ())
        ),
        key=lambda v: (v["tick"], v["session"], v["kind"]),
    ))
    return StressResult(
        history_text=format_history(history),
        journals={
            run.client.name: tuple(run.client.journal) for run in runs
        },
        certification=certification,
        committed=server.commit_count,
        client_aborts=counters["aborts"],
        network_counters=dict(net.counters),
        server_counters=dict(server.counters),
        client_stats=client_stats,
        crashes=server.crashes,
        restarts=server.restarts,
        deadlock_victims=server.deadlock_victims,
        ticks=net.now,
        monitor=monitor,
        history=history,
        metrics=metrics,
        tracer=tracer,
        config=config_summary,
        commit_latencies=tuple(latencies),
        offered=(
            len(schedule) if arrivals is not None else clients * txns_per_client
        ),
        windows=windows,
        cluster=cluster,
        ops=tuple(ops_log),
        session_violations=session_violations,
        flight=flight,
    )
