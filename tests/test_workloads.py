"""Tests for workload generators and scenarios (repro.workloads)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.engine import (
    Database,
    LockingScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import (
    WorkloadConfig,
    audit_violations,
    bank_programs,
    conserved,
    employee_programs,
    initial_balances,
    initial_employees,
    random_programs,
    synthetic_history,
)
from repro.workloads.anomalies import ALL_ANOMALIES


class TestAnomalyCorpus:
    def test_every_verdict(self, anomaly_history):
        rep = repro.check(anomaly_history.history, extensions=True)
        for level, expected in anomaly_history.provides.items():
            assert rep.ok(level) == expected, (
                f"{anomaly_history.name} at {level}"
            )

    def test_corpus_covers_all_levels_distinctly(self):
        """The corpus separates every pair of distinct levels: for any two
        levels, some anomaly is admitted by one and rejected by the other
        (so no two levels collapse)."""
        levels = list(ALL_ANOMALIES[0].provides)
        for a in levels:
            for b in levels:
                if a is b or b in {a} or a.implies(b):
                    continue
                # a does not imply b: some history provides a but not b
                separated = any(
                    entry.provides[a] and not entry.provides[b]
                    for entry in ALL_ANOMALIES
                )
                assert separated, f"no corpus entry separates {a} from {b}"


class TestRandomPrograms:
    def test_deterministic(self):
        cfg = WorkloadConfig()
        a = random_programs(cfg, seed=5)
        b = random_programs(cfg, seed=5)
        assert [p.name for p in a] == [p.name for p in b]
        assert [len(p.steps) for p in a] == [len(p.steps) for p in b]

    def test_runs_on_every_scheduler(self):
        cfg = WorkloadConfig(n_programs=4, steps_per_program=3)
        for factory in (
            lambda: LockingScheduler("serializable"),
            SnapshotIsolationScheduler,
            ReadCommittedMVScheduler,
        ):
            db = Database(factory())
            db.load(cfg.initial_state())
            res = Simulator(db, random_programs(cfg, seed=1), seed=1).run()
            assert res.committed_count > 0
            db.history()  # validates

    def test_predicate_workload_runs(self):
        cfg = WorkloadConfig(
            n_programs=4,
            steps_per_program=3,
            predicate_fraction=0.5,
            insert_fraction=0.2,
        )
        db = Database(SnapshotIsolationScheduler())
        db.load(cfg.initial_state())
        res = Simulator(db, random_programs(cfg, seed=2), seed=2).run()
        h = db.history()
        assert len(h.predicate_reads) > 0

    def test_bad_config_rejected(self):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            random_programs(WorkloadConfig(write_fraction=2.0))


class TestSyntheticHistory:
    def test_validates_by_construction(self):
        h = synthetic_history(n_txns=50, seed=3)
        assert len(h) > 50

    def test_deterministic(self):
        assert str(synthetic_history(n_txns=20, seed=9)) == str(
            synthetic_history(n_txns=20, seed=9)
        )

    def test_committed_reads_give_pl2(self):
        # No stale reads, reads of latest committed: G1 cannot occur.
        from repro.core.levels import satisfies

        h = synthetic_history(n_txns=40, seed=1, abort_fraction=0.2)
        assert satisfies(h, L.PL_2).ok

    def test_stale_reads_produce_anomalies(self):
        histories = [
            synthetic_history(
                n_txns=40, seed=s, stale_read_fraction=0.8, write_fraction=0.6
            )
            for s in range(5)
        ]
        assert any(not repro.check(h).serializable for h in histories)


class TestBankWorkload:
    def test_si_conserves_and_audits_clean(self):
        for seed in range(5):
            db = Database(SnapshotIsolationScheduler())
            db.load(initial_balances(4))
            res = Simulator(db, bank_programs(seed=seed), seed=seed).run()
            assert conserved(res.history, 4)
            assert audit_violations(res.outcomes, 4) == []

    def test_serializable_locking_conserves(self):
        for seed in range(3):
            db = Database(LockingScheduler("serializable"))
            db.load(initial_balances(4))
            res = Simulator(db, bank_programs(seed=seed), seed=seed).run()
            assert conserved(res.history, 4)
            assert audit_violations(res.outcomes, 4) == []

    def test_read_committed_mv_loses_updates(self):
        broken = 0
        for seed in range(10):
            db = Database(ReadCommittedMVScheduler())
            db.load(initial_balances(4))
            res = Simulator(db, bank_programs(seed=seed), seed=seed).run()
            broken += not conserved(res.history, 4) or bool(
                audit_violations(res.outcomes, 4)
            )
        assert broken > 0

    def test_violating_audits_mean_nonserializable_history(self):
        """Observed invariant violations imply checker-visible phenomena."""
        for seed in range(10):
            db = Database(ReadCommittedMVScheduler())
            db.load(initial_balances(4))
            res = Simulator(db, bank_programs(seed=seed), seed=seed).run()
            if audit_violations(res.outcomes, 4):
                assert not repro.check(res.history).serializable


class TestEmployeeWorkload:
    def test_serializable_audits_consistent(self):
        for seed in range(5):
            db = Database(LockingScheduler("serializable"))
            db.load(initial_employees(3))
            res = Simulator(
                db,
                employee_programs(n_hires=1, n_raises=1, n_audits=1, seed=seed),
                seed=seed,
            ).run()
            for o in res.outcomes:
                if o.committed and o.program.startswith("audit"):
                    assert o.regs["consistent"]

    def test_repeatable_read_phantoms_observed(self):
        inconsistent = 0
        for seed in range(10):
            db = Database(LockingScheduler("repeatable-read"))
            db.load(initial_employees(3))
            res = Simulator(
                db,
                employee_programs(n_hires=1, n_raises=1, n_audits=1, seed=seed),
                seed=seed,
            ).run()
            for o in res.outcomes:
                if o.committed and o.program.startswith("audit"):
                    inconsistent += not o.regs["consistent"]
        assert inconsistent > 0

    def test_phantom_history_fails_pl3_but_not_pl299(self):
        """When an audit observes an inconsistency under RR locking, the
        history exhibits the Figure 5 pattern: PL-2.99 holds, PL-3 fails."""
        found = False
        for seed in range(15):
            db = Database(LockingScheduler("repeatable-read"))
            db.load(initial_employees(3))
            res = Simulator(
                db,
                employee_programs(n_hires=1, n_raises=1, n_audits=1, seed=seed),
                seed=seed,
            ).run()
            bad_audit = any(
                o.committed and o.program.startswith("audit") and not o.regs["consistent"]
                for o in res.outcomes
            )
            if bad_audit:
                found = True
                rep = repro.check(res.history)
                assert rep.ok(L.PL_2_99)
                assert not rep.ok(L.PL_3)
        assert found
