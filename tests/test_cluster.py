"""Acceptance tests for the sharded cluster: cross-shard two-phase
commit, global certification over the merged history, the deterministic
fault matrix (shard crash between prepare and commit, coordinator
partitioned mid-prepare), and mid-run shard-map reconfiguration."""

import pytest

from repro.checker import check
from repro.core.levels import IsolationLevel
from repro.core.parser import parse_history
from repro.service import (
    ClusterConfig,
    MapChange,
    NetworkConfig,
    ShardMap,
    StressConfig,
    connect_cluster,
    run_stress,
)

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)


def cluster_config(**kw):
    return StressConfig(
        scheduler="locking",
        clients=4,
        txns_per_client=12,
        keys=8,
        ops_per_txn=2,
        seed=kw.pop("seed", 7),
        network=FAULTY,
        cluster=ClusterConfig(**kw),
    )


class TestCrossShardCommit:
    """Transactions span shards and still commit atomically, with the
    merged history certified at the scheduler's declared level."""

    @pytest.fixture(scope="class")
    def runs(self):
        cfg = cluster_config(shards=3)
        return run_stress(cfg), run_stress(cfg)

    def test_completes_and_certifies(self, runs):
        result, _ = runs
        assert result.committed == 48
        assert result.all_certified

    def test_crossed_shards_through_2pc(self, runs):
        result, _ = runs
        coord = result.cluster.coordinator
        assert coord.decisions["commit"] > 0
        assert coord.pending == 0

    def test_merged_history_validates_and_checks(self, runs):
        result, _ = runs
        history = parse_history(result.history_text, auto_complete=True)
        report = check(history)
        assert report.strongest_level is IsolationLevel.PL_3

    def test_byte_identical_replay(self, runs):
        a, b = runs
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        assert a.certification == b.certification

    def test_every_shard_recorded_events(self, runs):
        result, _ = runs
        assert all(
            len(shard.recorder.events) > 0
            for shard in result.cluster.shards
        )


class TestFaultMatrix:
    """The ISSUE's two cross-shard fault cases, each pinned byte-for-byte
    under equal seeds."""

    @pytest.fixture(scope="class")
    def crashed(self):
        cfg = cluster_config(shards=2, crash_shard_after_prepares=(1, 1))
        return run_stress(cfg), run_stress(cfg)

    @pytest.fixture(scope="class")
    def partitioned(self):
        cfg = cluster_config(
            shards=2, partition_coordinator_after_prepares=3, heal_after=40
        )
        return run_stress(cfg), run_stress(cfg)

    def test_shard_crash_between_prepare_and_commit(self, crashed):
        result, _ = crashed
        cluster = result.cluster
        assert cluster.crashes >= 1 and cluster.restarts >= 1
        assert result.all_certified
        # Nothing stayed in doubt: every prepared record was decided.
        assert all(not p for p in cluster._prepared_by_shard)
        parse_history(result.history_text, auto_complete=True)

    def test_crash_replays_byte_for_byte(self, crashed):
        a, b = crashed
        assert a.history_text == b.history_text
        assert a.journals == b.journals

    def test_coordinator_partitioned_mid_prepare(self, partitioned):
        result, _ = partitioned
        coord = result.cluster.coordinator
        assert coord.retransmits > 0
        assert coord.pending == 0
        assert result.all_certified

    def test_partition_replays_byte_for_byte(self, partitioned):
        a, b = partitioned
        assert a.history_text == b.history_text
        assert a.journals == b.journals

    def test_fault_seeds_sweep_atomically(self):
        # 2PC atomicity under the crash fault across several seeds: the
        # merged history never shows a transaction committed on one shard
        # and aborted on another (Cluster.history raises if it does).
        for seed in range(4):
            cfg = cluster_config(
                shards=2, seed=seed, crash_shard_after_prepares=(0, 2)
            )
            result = run_stress(cfg)
            assert result.all_certified


class TestReconfiguration:
    """Mid-run shard-map changes: slot migration and endpoint replacement,
    with clients re-consulting the map on retry (the regression fix)."""

    @pytest.fixture(scope="class")
    def migrated(self):
        cfg = cluster_config(
            shards=2,
            map_changes=(
                MapChange(after_commits=8, kind="migrate", slot=0, to_shard=1),
                MapChange(after_commits=16, kind="migrate", slot=1, to_shard=0),
            ),
        )
        return run_stress(cfg), run_stress(cfg)

    @pytest.fixture(scope="class")
    def replaced(self):
        cfg = cluster_config(
            shards=2,
            map_changes=(
                MapChange(after_commits=10, kind="replace", shard=0),
            ),
        )
        return run_stress(cfg), run_stress(cfg)

    def test_migration_bumps_map_and_stays_certified(self, migrated):
        result, _ = migrated
        cluster = result.cluster
        assert cluster.shard_map.version == 3
        assert [
            desc.split()[0] for _v, desc in cluster.shard_map.changes
        ] == ["migrate", "migrate"]
        assert result.all_certified
        parse_history(result.history_text, auto_complete=True)

    def test_migration_replays_byte_for_byte(self, migrated):
        a, b = migrated
        assert a.history_text == b.history_text
        assert a.journals == b.journals

    def test_replacement_retires_old_endpoint(self, replaced):
        result, _ = replaced
        cluster = result.cluster
        assert cluster._replacements == 1
        assert any(s.name.endswith("r1") for s in cluster.shards)
        assert result.all_certified

    def test_retry_across_replacement_rebinds_endpoint(self, replaced):
        # The regression: a commit retry that raced the map change must
        # re-consult the map instead of chasing the retired endpoint.
        # The retired name is down on the network, so without re-routing
        # the run would hang on endless timeouts; reaching full commit
        # count with the retired endpoint gone proves every in-flight
        # retry rebound.
        result, _ = replaced
        retired = result.cluster._retired
        assert len(retired) == 1
        live = {s.name for s in result.cluster.shards}
        assert retired[0].name not in live
        assert result.committed == 48

    def test_replacement_replays_byte_for_byte(self, replaced):
        a, b = replaced
        assert a.history_text == b.history_text
        assert a.journals == b.journals


class TestFacade:
    """`connect_cluster` as an interactive surface."""

    def test_cross_shard_transaction_roundtrip(self):
        cluster = connect_cluster(
            cluster=ClusterConfig(shards=2),
            network=NetworkConfig(drop=0.0, duplicate=0.0),
            initial={"a": 1, "b": 2, "k3": 3},
        )
        client = cluster.client("c0")
        client.begin()
        total = sum(client.read(k, for_update=True) for k in ("a", "b", "k3"))
        client.write("a", total)
        client.commit()
        history = cluster.history()
        assert len(history.committed - {0}) == 1
        assert cluster.commit_count == 1

    def test_cluster_rejects_optimistic_cross_shard(self):
        with pytest.raises(ValueError, match="locking"):
            connect_cluster(
                "optimistic", cluster=ClusterConfig(shards=2)
            )

    def test_single_shard_optimistic_is_fine(self):
        cluster = connect_cluster(
            "optimistic", cluster=ClusterConfig(shards=1)
        )
        assert len(cluster.shards) == 1

    def test_shard_map_routing_is_stable(self):
        m = ShardMap(("shard0", "shard1"), slots=16)
        owners = {k: m.owner(k) for k in ("a", "b", "x", "emp")}
        assert owners == {k: m.owner(k) for k in ("a", "b", "x", "emp")}
        assert set(owners.values()) <= {"shard0", "shard1"}


class TestClusterConfigValidation:
    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(shards=4, slots=2)
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, crash_shard_after_prepares=(5, 1))
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, partition_coordinator_after_prepares=0)

    def test_bad_map_changes_raise_at_construction(self):
        with pytest.raises(TypeError, match="MapChange"):
            ClusterConfig(shards=2, map_changes=2)
        with pytest.raises(TypeError, match="MapChange"):
            ClusterConfig(shards=2, map_changes=("migrate",))
        with pytest.raises(ValueError, match="out of range"):
            ClusterConfig(
                shards=2,
                slots=4,
                map_changes=(
                    MapChange(after_commits=1, kind="migrate", slot=9, to_shard=1),
                ),
            )
        with pytest.raises(ValueError, match="out of range"):
            ClusterConfig(
                shards=2,
                map_changes=(MapChange(after_commits=1, kind="replace", shard=5),),
            )
        # Lists are accepted and normalized to a tuple.
        cfg = ClusterConfig(
            shards=2,
            map_changes=[MapChange(after_commits=1, kind="replace", shard=0)],
        )
        assert isinstance(cfg.map_changes, tuple)

    def test_frozen(self):
        cfg = ClusterConfig(shards=2)
        with pytest.raises(AttributeError):
            cfg.shards = 3
