"""The generalized phenomena G0, G1a, G1b, G1c, G2 and G2-item (Section 5).

Each detector returns a :class:`PhenomenonReport` stating whether the history
*exhibits* the phenomenon, with concrete witnesses: an offending cycle of the
DSG for the graph-based phenomena, or the offending read events for G1a/G1b.

Isolation levels (:mod:`repro.core.levels`) are defined by proscribing these
phenomena, exactly as in Figure 6:

========  =====================  ==========================================
Level     Proscribed             Informal guarantee
========  =====================  ==========================================
PL-1      G0                     writes completely isolated
PL-2      G1 (= G1a ∪ G1b ∪ G1c) no dirty reads
PL-2.99   G1, G2-item            repeatable reads, phantoms possible
PL-3      G1, G2                 (conflict-)serializability
========  =====================  ==========================================

:class:`Analysis` computes the DSG once and memoizes per-phenomenon reports;
use it when checking several phenomena of one history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from .conflicts import DepKind, Edge, PredicateDepMode, all_dependencies
from .dsg import DSG, Cycle, dependency_edge
from .history import History

__all__ = ["Phenomenon", "Witness", "PhenomenonReport", "Analysis"]


class Phenomenon(Enum):
    """The phenomena of Section 5 (plus the thesis extensions, detected by
    :mod:`repro.core.extensions`)."""

    G0 = "G0"  # write cycles
    G1A = "G1a"  # aborted reads
    G1B = "G1b"  # intermediate reads
    G1C = "G1c"  # circular information flow
    G1 = "G1"  # G1a ∪ G1b ∪ G1c
    G2_ITEM = "G2-item"  # item anti-dependency cycles
    G2 = "G2"  # anti-dependency cycles
    # Extension-level phenomena (Adya's thesis, referenced in Sections 1, 6):
    G_SINGLE = "G-single"  # single anti-dependency cycles (PL-2+)
    G_SIA = "G-SIa"  # interference (Snapshot Isolation)
    G_SIB = "G-SIb"  # missed effects (Snapshot Isolation)
    G_SI = "G-SI"  # G-SIa ∪ G-SIb
    G_CURSOR = "G-cursor"  # labeled lost update (Cursor Stability)
    G_SS = "G-SS"  # real-time violations (strict serializability, PL-SS)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Witness:
    """One concrete occurrence of a phenomenon.

    ``tid`` identifies the transaction the phenomenon condemns (the reader
    for G1a/G1b); cycle-based witnesses carry the offending ``cycle``.
    """

    description: str
    cycle: Optional[Cycle] = None
    tid: Optional[int] = None

    def __str__(self) -> str:
        return self.description


@dataclass(frozen=True)
class PhenomenonReport:
    """Result of testing one phenomenon against one history."""

    phenomenon: Phenomenon
    present: bool
    witnesses: Tuple[Witness, ...] = ()

    def describe(self) -> str:
        head = f"{self.phenomenon}: {'EXHIBITED' if self.present else 'absent'}"
        if not self.witnesses:
            return head
        lines = [head]
        for w in self.witnesses:
            lines.append(f"  - {w.description}")
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return self.present


class Analysis:
    """Phenomenon analysis of one history with a shared, memoized DSG."""

    def __init__(
        self,
        history: History,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        *,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ):
        self.history = history
        self.mode = mode
        self._dsg: Optional[DSG] = None
        self._edges: Optional[List[Edge]] = None
        self._cache: Dict[Phenomenon, PhenomenonReport] = {}
        #: Optional observability sinks (see :mod:`repro.observability`).
        self.metrics = metrics
        self.tracer = tracer
        #: Wall-clock seconds per stage: ``"extract"`` for edge extraction,
        #: plus one entry per phenomenon detected (``"G0"``, ``"G2"``, ...).
        #: Always populated — the cost is a handful of clock reads.
        self.timings: Dict[str, float] = {}

    @property
    def edges(self) -> List[Edge]:
        """The history's direct-conflict edges, extracted exactly once per
        analysis and shared by the DSG, the SSG of the extension phenomena,
        and every per-level ``satisfies`` call reusing this analysis."""
        if self._edges is None:
            span = None
            if self.tracer is not None:
                span = self.tracer.span(
                    "checker.extract", events=len(self.history.events)
                )
            started = time.perf_counter()
            self._edges = all_dependencies(self.history, self.mode)
            elapsed = time.perf_counter() - started
            self.timings["extract"] = elapsed
            if span is not None:
                span.end(edges=len(self._edges))
            if self.metrics is not None:
                from ..observability.metrics import SECONDS_BUCKETS

                self.metrics.histogram(
                    "checker_extract_seconds",
                    "edge-extraction pass durations",
                    buckets=SECONDS_BUCKETS,
                ).observe(elapsed)
                self.metrics.counter(
                    "checker_edges_total", "direct-conflict edges extracted"
                ).inc(len(self._edges))
        return self._edges

    @property
    def dsg(self) -> DSG:
        if self._dsg is None:
            self._dsg = DSG(self.history, self.mode, edges=self.edges)
        return self._dsg

    def report(self, phenomenon: Phenomenon) -> PhenomenonReport:
        """The (memoized) report for one phenomenon."""
        if phenomenon not in self._cache:
            span = None
            if self.tracer is not None:
                span = self.tracer.span(
                    "checker.phenomenon", phenomenon=str(phenomenon)
                )
            started = time.perf_counter()
            result = self._detect(phenomenon)
            elapsed = time.perf_counter() - started
            self.timings[str(phenomenon)] = elapsed
            if span is not None:
                span.end(present=result.present)
            if self.metrics is not None:
                from ..observability.metrics import SECONDS_BUCKETS

                self.metrics.histogram(
                    "checker_phenomenon_seconds",
                    "per-phenomenon detection durations",
                    buckets=SECONDS_BUCKETS,
                ).observe(elapsed, phenomenon=str(phenomenon))
            self._cache[phenomenon] = result
        return self._cache[phenomenon]

    def exhibits(self, phenomenon: Phenomenon) -> bool:
        return self.report(phenomenon).present

    def reports(self, phenomena) -> List[PhenomenonReport]:
        return [self.report(p) for p in phenomena]

    # ------------------------------------------------------------------
    # detectors
    # ------------------------------------------------------------------

    def _detect(self, phenomenon: Phenomenon) -> PhenomenonReport:
        if phenomenon is Phenomenon.G0:
            return self._cycle_report(
                Phenomenon.G0,
                self.dsg.find_cycle(lambda e: e.kind is DepKind.WW),
                "directed cycle of write-dependency edges",
            )
        if phenomenon is Phenomenon.G1A:
            return self._g1a()
        if phenomenon is Phenomenon.G1B:
            return self._g1b()
        if phenomenon is Phenomenon.G1C:
            return self._cycle_report(
                Phenomenon.G1C,
                self.dsg.find_cycle(dependency_edge),
                "directed cycle of dependency (ww/wr) edges",
            )
        if phenomenon is Phenomenon.G1:
            parts = [self.report(p) for p in (Phenomenon.G1A, Phenomenon.G1B, Phenomenon.G1C)]
            witnesses = tuple(w for r in parts for w in r.witnesses)
            return PhenomenonReport(Phenomenon.G1, any(parts), witnesses)
        if phenomenon is Phenomenon.G2:
            return self._cycle_report(
                Phenomenon.G2,
                self.dsg.find_cycle_with(
                    special=lambda e: e.kind is DepKind.RW,
                    keep=lambda e: True,
                ),
                "directed cycle with one or more anti-dependency edges",
            )
        if phenomenon is Phenomenon.G2_ITEM:
            return self._cycle_report(
                Phenomenon.G2_ITEM,
                self.dsg.find_cycle_with(
                    special=lambda e: e.kind is DepKind.RW and not e.via_predicate,
                    keep=lambda e: not (e.kind is DepKind.RW and e.via_predicate),
                ),
                "directed cycle with one or more item-anti-dependency edges",
            )
        if phenomenon in (
            Phenomenon.G_SINGLE,
            Phenomenon.G_SIA,
            Phenomenon.G_SIB,
            Phenomenon.G_SI,
            Phenomenon.G_CURSOR,
            Phenomenon.G_SS,
        ):
            from .extensions import detect_extension

            return detect_extension(self, phenomenon)
        raise ValueError(f"unknown phenomenon {phenomenon}")

    def _cycle_report(
        self, phenomenon: Phenomenon, cycle: Optional[Cycle], what: str
    ) -> PhenomenonReport:
        if cycle is None:
            return PhenomenonReport(phenomenon, False)
        detail = "; ".join(e.describe() for e in cycle.edges)
        witness = Witness(f"{what}: {cycle.describe()} ({detail})", cycle)
        return PhenomenonReport(phenomenon, True, (witness,))

    def _g1a(self) -> PhenomenonReport:
        """Aborted reads: a committed transaction read a version (directly or
        in a predicate read's version set) created by an aborted
        transaction."""
        h = self.history
        witnesses: List[Witness] = []
        for _i, read in h.reads:
            if read.tid in h.committed and read.version.tid in h.aborted:
                witnesses.append(
                    Witness(
                        f"committed T{read.tid} read {read.version}, "
                        f"written by aborted T{read.version.tid}",
                        tid=read.tid,
                    )
                )
        for _i, pread in h.predicate_reads:
            if pread.tid not in h.committed:
                continue
            for v in pread.vset.versions():
                if v.tid in h.aborted:
                    witnesses.append(
                        Witness(
                            f"committed T{pread.tid}'s read of predicate "
                            f"{pread.predicate} selected {v}, written by "
                            f"aborted T{v.tid}",
                            tid=pread.tid,
                        )
                    )
        return PhenomenonReport(Phenomenon.G1A, bool(witnesses), tuple(witnesses))

    def _g1b(self) -> PhenomenonReport:
        """Intermediate reads: a committed transaction read a version of an
        object that was not the writer's final modification of it."""
        h = self.history
        witnesses: List[Witness] = []

        def intermediate(v) -> bool:
            return (
                not v.is_unborn
                and v not in h.setup_versions
                and not h.is_final(v)
            )

        for _i, read in h.reads:
            v = read.version
            if read.tid in h.committed and v.tid != read.tid and intermediate(v):
                final = h.final_version(v.obj, v.tid)
                witnesses.append(
                    Witness(
                        f"committed T{read.tid} read intermediate version {v.label(explicit_seq=True)}; "
                        f"T{v.tid}'s final modification of {v.obj!r} is {final}",
                        tid=read.tid,
                    )
                )
        for _i, pread in h.predicate_reads:
            if pread.tid not in h.committed:
                continue
            for v in pread.vset.versions():
                if v.tid != pread.tid and intermediate(v):
                    witnesses.append(
                        Witness(
                            f"committed T{pread.tid}'s read of predicate "
                            f"{pread.predicate} selected intermediate version "
                            f"{v.label(explicit_seq=True)}",
                            tid=pread.tid,
                        )
                    )
        return PhenomenonReport(Phenomenon.G1B, bool(witnesses), tuple(witnesses))
