"""Guarantees for *executing* transactions (paper Section 5.6).

The paper defines its levels "to impose constraints only when transactions
commit" and points to Adya's thesis for analogs that constrain running
transactions, built on "slightly different graphs, containing nodes for
committed transactions plus a node for the executing transaction".

This module implements that idea as a **commit test**: given the events of
an execution in progress and a running transaction ``T``, could ``T`` commit
*right now* with level ``L``?  The test builds the *virtual-commit
projection*:

* events of committed transactions are kept;
* ``T``'s events are kept and a commit for ``T`` is appended;
* every other in-flight transaction is completed by an abort (the
  Section 4.2 completion rule) — so if ``T`` has read from a still-running
  peer, the projection exhibits G1a and the test fails at PL-2 and above,
  matching the paper's reading that such a commit "must be delayed until
  [the peer]'s commit has succeeded";
* ``T``'s final writes are installed at the tail of each object's version
  order (the natural install point for a commit happening now).

An optimistic implementation *is* essentially this test run at commit time;
:meth:`repro.engine.database.Database.could_commit` exposes it against a
live engine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..exceptions import MalformedHistoryError
from .events import Abort, Commit, Event, Write
from .history import History
from .levels import IsolationLevel, LevelVerdict, satisfies
from .phenomena import Analysis
from .conflicts import PredicateDepMode

__all__ = ["virtual_commit", "running_satisfies", "could_commit_at"]


def virtual_commit(
    events: Union[History, Iterable[Event]],
    tid: int,
    *,
    validate: bool = True,
) -> History:
    """The virtual-commit projection of an execution for transaction ``tid``.

    ``events`` may be a raw (possibly incomplete) event sequence, or a
    :class:`History` whose auto-completion aborted the still-running
    transactions — in that case ``tid``'s trailing abort is stripped before
    the virtual commit is appended.

    Raises :class:`~repro.exceptions.MalformedHistoryError` if ``tid``
    already finished for real (committed, or aborted before its last event).
    """
    if isinstance(events, History):
        seq: List[Event] = list(events.events)
        base_order = {
            obj: [v for v in chain if not v.is_unborn]
            for obj, chain in events.version_order.items()
        }
    else:
        seq = list(events)
        # Derive the committed version order from a completed copy (the
        # completion aborts all in-flight transactions, including tid, so
        # only real committed versions are installed).
        completed = History(seq, None, auto_complete=True, validate=False)
        base_order = {
            obj: [v for v in chain if not v.is_unborn]
            for obj, chain in completed.version_order.items()
        }
    # Strip a trailing abort of `tid` (auto-completion artifact): a real
    # abort would be followed by nothing anyway, so the only legal place is
    # at the end of tid's events, which is exactly where completion put it.
    for ev in seq:
        if isinstance(ev, Commit) and ev.tid == tid:
            raise MalformedHistoryError(
                f"T{tid} already committed; the running-transaction test "
                "applies to in-flight transactions"
            )
    abort_positions = [
        i for i, ev in enumerate(seq) if isinstance(ev, Abort) and ev.tid == tid
    ]
    if abort_positions:
        idx = abort_positions[0]
        if any(ev.tid == tid for ev in seq[idx + 1 :]):
            raise MalformedHistoryError(f"T{tid} has events after its abort")
        later = [ev.tid for ev in seq[idx + 1 :]]
        if later:
            # The abort is not last overall; stripping it is still sound
            # because no other event refers to it positionally.
            pass
        del seq[idx]
    seq.append(Commit(tid))
    # Install tid's final writes at the tail of each object's order (the
    # natural install point for a commit happening now), in the order of
    # their final write events for determinism.
    finals: dict = {}
    for ev in seq:
        if isinstance(ev, Write) and ev.tid == tid:
            finals[ev.version.obj] = ev.version
    order = {obj: list(chain) for obj, chain in base_order.items()}
    for ev in seq:
        if isinstance(ev, Write) and ev.tid == tid:
            obj = ev.version.obj
            if finals.get(obj) == ev.version:
                order.setdefault(obj, []).append(ev.version)
    return History(seq, order, auto_complete=True, validate=validate)


def running_satisfies(
    events: Union[History, Iterable[Event]],
    tid: int,
    level: IsolationLevel,
    *,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> LevelVerdict:
    """Whether the running transaction ``tid`` could commit now at ``level``.

    The verdict's violations explain what blocks the commit: a read from a
    still-uncommitted peer shows up as G1a ("must wait"), an overwritten
    read as G2 ("must abort under PL-3"), and so on.
    """
    projection = virtual_commit(events, tid)
    return satisfies(projection, level, analysis=Analysis(projection, mode))


def could_commit_at(
    events: Union[History, Iterable[Event]],
    tid: int,
    *,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> Optional[IsolationLevel]:
    """The strongest ANSI level at which ``tid`` could commit right now
    (``None`` if not even PL-1 — e.g. its writes already form a G0 cycle
    with committed peers)."""
    from .levels import classify

    projection = virtual_commit(events, tid)
    return classify(projection, analysis=Analysis(projection, mode))
