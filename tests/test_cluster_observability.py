"""Cluster observability plane: shard-scoped telemetry, replication/2PC
tracing, and the anomaly flight recorder.

The contracts this suite pins:

* instrumentation is free of side effects — a replicated, faulted cluster
  run with tracer + metrics + flight recorder attached produces
  byte-identical histories, journals, certification and session-violation
  witnesses to the bare run, across a seed sweep;
* the cluster paths emit their span vocabulary (``repl.ship`` closed with
  a delivery fate, ``repl.apply`` per advancing batch, ``2pc.prepare``/
  ``2pc.decide`` under the coordinator) and their metric series
  (per-(shard, replica) replication lag, in-doubt gauge, decision and
  session-violation counters);
* duplicate deliveries on the replica read path re-send the cached reply
  with the *original* request's trace context;
* the flight recorder's dossiers are byte-identical per seed, and a
  latched phenomenon's dossier trace slice covers every witness-cycle
  transaction's spans — its 2PC and replication spans included;
* the cluster-aware traceview layer (per-shard Perfetto tracks, the
  cross-shard critical path, the replication-lag timeline, the RunReport
  Cluster section) is a pure function of the records.
"""

import io
import json

import pytest

from repro.cli import main
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    build_run_report,
    cluster_summary,
    cross_shard_critical_path,
    dossier_json,
    from_chrome_trace,
    replication_lag_timeline,
    to_chrome_trace,
    trace_slice,
    twopc_summary,
)
from repro.service import (
    ClusterConfig,
    NetworkConfig,
    SimulatedNetwork,
    StressConfig,
    run_stress,
)
from repro.service.cluster import Cluster

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)

#: Replicated cluster under faults with stale-by-choice replica reads:
#: phenomena latch reliably, and with ops_per_txn=4 over 6 keys the
#: witness transactions are cross-shard, so their dossier slices include
#: 2PC spans as well as the replication batches that carried their writes.
def anomaly_config(seed=7, **overrides):
    kwargs = dict(
        scheduler="locking", level="PL-2", clients=4, txns_per_client=10,
        keys=6, ops_per_txn=4, seed=seed, network=FAULTY,
        cluster=ClusterConfig(
            shards=2, replicas=2, replication_every=12,
            replication_lag=(4, 10),
            partition_primary_after_commits=(1, 5), heal_after=60,
        ),
        read_preference="replica", read_only_fraction=0.5,
    )
    kwargs.update(overrides)
    return StressConfig(**kwargs)


def cross_shard_config(seed=5):
    """Clean network, three shards: plenty of cross-shard 2PC commits."""
    return StressConfig(
        scheduler="locking", clients=4, txns_per_client=8, keys=8,
        ops_per_txn=4, seed=seed,
        network=NetworkConfig(min_delay=1, max_delay=3),
        cluster=ClusterConfig(shards=3),
    )


class TestInstrumentationIsFree:
    """Tracer + metrics + flight recorder change no artifact byte."""

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_replicated_run_byte_identical(self, seed):
        cfg = anomaly_config(seed)
        bare = run_stress(cfg)
        observed = run_stress(
            cfg, metrics=MetricsRegistry(), tracer=Tracer(),
            flight=FlightRecorder(),
        )
        assert bare.history_text == observed.history_text
        assert bare.journals == observed.journals
        assert bare.certification == observed.certification
        assert bare.session_violations == observed.session_violations
        assert bare.network_counters == observed.network_counters
        assert bare.server_counters == observed.server_counters
        assert bare.ticks == observed.ticks

    def test_cross_shard_run_byte_identical(self):
        cfg = cross_shard_config()
        bare = run_stress(cfg)
        observed = run_stress(cfg, metrics=MetricsRegistry(), tracer=Tracer())
        assert bare.history_text == observed.history_text
        assert bare.journals == observed.journals
        assert bare.certification == observed.certification

    def test_flight_requires_tracer(self):
        with pytest.raises(ValueError, match="requires tracer"):
            run_stress(anomaly_config(), flight=FlightRecorder())


class TestShardScopedTelemetry:
    """The span vocabulary and metric series the cluster paths emit."""

    @pytest.fixture(scope="class")
    def replicated(self):
        return run_stress(
            anomaly_config(), metrics=MetricsRegistry(), tracer=Tracer()
        )

    @pytest.fixture(scope="class")
    def crossed(self):
        return run_stress(
            cross_shard_config(), metrics=MetricsRegistry(), tracer=Tracer()
        )

    def test_repl_ship_spans_close_with_fate(self, replicated):
        ships = [
            r for r in replicated.tracer.records
            if r["kind"] == "span" and r["name"] == "repl.ship"
        ]
        assert ships
        for span in ships:
            attrs = span["attrs"]
            assert attrs["fate"] in (
                "delivered", "lost-down", "lost-partition", "lost-crash"
            )
            assert isinstance(attrs["shard"], int)
            assert isinstance(attrs["replica"], int)
            assert attrs["lag"] >= 0
            assert attrs["tids"] == sorted(attrs["tids"])

    def test_repl_apply_spans_advance(self, replicated):
        applies = [
            r for r in replicated.tracer.records
            if r["kind"] == "span" and r["name"] == "repl.apply"
        ]
        assert applies
        for span in applies:
            assert span["attrs"]["count"] >= 1  # duplicates emit nothing
            assert span["attrs"]["applied"] >= span["attrs"]["offset"]

    def test_2pc_spans_under_coordinator(self, crossed):
        records = crossed.tracer.records
        by_id = {r["id"]: r for r in records if r["kind"] == "span"}
        prepares = [
            r for r in records
            if r["kind"] == "span" and r["name"] == "2pc.prepare"
        ]
        decides = [
            r for r in records
            if r["kind"] == "span" and r["name"] == "2pc.decide"
        ]
        assert prepares and decides
        for span in prepares:
            # Parented under the client's commit request: the cross-shard
            # critical path descends through the fan-out.
            parent = by_id[span["parent"]]
            assert parent["name"] == "client.request"
            assert span["attrs"]["participants"]
        for span in decides:
            assert span["attrs"]["outcome"] in ("commit", "abort")

    def test_shard_attr_on_cluster_handle_spans(self, crossed):
        shards = {
            r["attrs"].get("shard")
            for r in crossed.tracer.records
            if r["kind"] == "span" and r["name"] == "server.handle"
        }
        assert shards == {0, 1, 2}

    def test_single_server_handle_spans_have_no_shard(self):
        result = run_stress(
            StressConfig(clients=2, txns_per_client=4, seed=1),
            tracer=Tracer(),
        )
        assert all(
            "shard" not in r["attrs"]
            for r in result.tracer.records
            if r["kind"] == "span" and r["name"] == "server.handle"
        )

    def test_replication_metric_series(self, replicated):
        snapshot = replicated.metrics.snapshot()
        lag = snapshot["service_replication_lag"]
        streams = {
            (s["labels"]["shard"], s["labels"]["replica"])
            for s in lag["series"]
        }
        assert streams == {("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")}
        applied = snapshot["service_replication_applied_total"]
        assert sum(s["value"] for s in applied["series"]) > 0

    def test_2pc_metric_series(self, crossed):
        snapshot = crossed.metrics.snapshot()
        decisions = snapshot["service_2pc_decisions_total"]
        assert sum(s["value"] for s in decisions["series"]) == len(
            twopc_summary(crossed.tracer.records)["per_txn"]
        )
        assert all(
            s["value"] == 0
            for s in snapshot["service_2pc_in_doubt"]["series"]
        )  # nothing pending once settled
        ticks = snapshot["service_2pc_in_doubt_ticks"]
        assert sum(s["count"] for s in ticks["series"]) > 0

    def test_session_violation_counter_matches_witnesses(self, replicated):
        snapshot = replicated.metrics.snapshot()
        counted = sum(
            s["value"]
            for s in snapshot["service_session_violations"]["series"]
        )
        assert counted == len(replicated.session_violations)
        events = [
            r for r in replicated.tracer.records
            if r["kind"] == "event" and r["name"] == "session.violation"
        ]
        assert len(events) == len(replicated.session_violations)

    def test_stale_read_counter_present(self, replicated):
        snapshot = replicated.metrics.snapshot()
        assert sum(
            s["value"] for s in snapshot["service_stale_reads"]["series"]
        ) > 0


class TestWindowedClusterGauges:
    def test_cluster_rows_and_snapshot(self):
        from repro.observability.windows import WindowedTelemetry

        cfg = anomaly_config(windows=WindowedTelemetry(sample_every=50))
        result = run_stress(cfg)
        rows = result.windows.timeline
        assert rows
        assert "shard_certification_lag" in rows[-1]
        assert "in_doubt" in rows[-1]
        snap = result.windows.snapshot(result.ticks)
        assert "max_in_doubt" in snap
        assert set(snap["max_shard_certification_lag"]) == {0, 1}

    def test_single_server_rows_unchanged(self):
        from repro.observability.windows import WindowedTelemetry

        cfg = StressConfig(
            clients=2, txns_per_client=4, seed=1,
            windows=WindowedTelemetry(sample_every=50),
        )
        result = run_stress(cfg)
        rows = result.windows.timeline
        assert rows and "in_doubt" not in rows[-1]
        assert "max_in_doubt" not in result.windows.snapshot(result.ticks)


class TestReplicaDedupTraceContext:
    """Duplicate deliveries re-send the cached reply carrying the original
    request's trace context (satellite of the dedup-cache fix)."""

    def test_cached_hit_preserves_original_context(self):
        net = SimulatedNetwork(NetworkConfig(min_delay=1, max_delay=1, seed=1))
        cluster = Cluster(
            net, "locking",
            config=ClusterConfig(shards=1, replicas=1),
            initial={"k0": 5},
        )
        replica = cluster.replica_of(0, 0)
        replica._values["k0"] = (1, 5, False)  # as if one batch applied
        request = {
            "kind": "read", "session": "s", "rid": 1, "obj": "k0",
            "trace": {"id": "T-orig", "span": 11},
        }
        first = replica.handle(dict(request), "c0")
        assert first["ok"] and first["trace"] == {"id": "T-orig", "span": 11}
        retransmit = dict(request, trace={"id": "T-orig", "span": 99})
        duplicate = replica.handle(retransmit, "c0")
        assert replica.counters["dedup_hits"] == 1
        assert duplicate["trace"] == {"id": "T-orig", "span": 11}

    def test_fresh_error_replies_echo_context(self):
        net = SimulatedNetwork(NetworkConfig(min_delay=1, max_delay=1, seed=1))
        cluster = Cluster(
            net, "locking",
            config=ClusterConfig(shards=1, replicas=1),
            initial={"k0": 5},
        )
        replica = cluster.replica_of(0, 0)
        reply = replica.handle(
            {
                "kind": "read", "session": "s", "rid": 1, "obj": "k0",
                "trace": {"id": "T1", "span": 3},
            },
            "c0",
        )
        assert reply["error"] == "lagging"
        assert reply["trace"] == {"id": "T1", "span": 3}


class TestFlightRecorder:
    @pytest.fixture(scope="class")
    def latched(self):
        flight = FlightRecorder()
        result = run_stress(
            anomaly_config(), metrics=MetricsRegistry(), tracer=Tracer(),
            flight=flight,
        )
        return result

    def test_phenomenon_latches_a_dossier(self, latched):
        dossiers = latched.dossiers()
        assert dossiers
        assert all(d["kind"] == "phenomenon" for d in dossiers)
        assert all(d["witness_tids"] for d in dossiers)

    def test_dossier_state_snapshot_shape(self, latched):
        state = latched.dossiers()[0]["state"]
        assert {"two_pc", "shards", "replicas", "map_version"} <= set(state)
        assert len(state["shards"]) == 2
        assert len(state["replicas"]) == 4
        for row in state["replicas"]:
            assert {"shard", "replica", "applied", "lag", "up"} <= set(row)

    def test_rings_are_shard_scoped_and_bounded(self, latched):
        recent = latched.dossiers()[0]["recent"]
        assert {"cluster", "shard0", "shard1"} <= set(recent)
        capacity = latched.flight.capacity
        assert all(len(ring) <= capacity for ring in recent.values())
        for lane in ("shard0", "shard1"):
            shard = int(lane[-1])
            for record in recent[lane]:
                attrs = record.get("attrs") or {}
                assert attrs.get("shard") == shard or attrs.get(
                    "dst", ""
                ).startswith(f"shard{shard}") or attrs.get(
                    "src", ""
                ).startswith(f"shard{shard}")

    def test_trace_slice_covers_witness_cycle(self, latched):
        """Acceptance: the slice contains every witness transaction's
        spans, its 2PC spans and its replication batches included."""
        for dossier in latched.dossiers():
            tids = set(dossier["witness_tids"])
            names_by_tid = {}
            sliced_tids = set()
            for record in dossier["trace_slice"]:
                attrs = record.get("attrs") or {}
                if attrs.get("tid") in tids:
                    sliced_tids.add(attrs["tid"])
                    names_by_tid.setdefault(attrs["tid"], set()).add(
                        record["name"]
                    )
                sliced_tids.update(set(attrs.get("tids") or ()) & tids)
            assert sliced_tids == tids
            for tid in tids:
                assert "client.txn" in names_by_tid[tid]
            all_names = {r["name"] for r in dossier["trace_slice"]}
            assert {"repl.ship", "repl.apply"} <= all_names
            assert {"2pc.prepare", "2pc.decide"} <= all_names

    def test_slice_is_closed_under_parents(self, latched):
        for dossier in latched.dossiers():
            ids = {r["id"] for r in dossier["trace_slice"]}
            seqs = [r["seq"] for r in dossier["trace_slice"]]
            assert seqs == sorted(seqs)
            for record in dossier["trace_slice"]:
                parent = (
                    record.get("parent")
                    if record["kind"] == "span"
                    else record.get("span")
                )
                # Parents are either in the slice or outside the witness
                # trace entirely (e.g. the stress.run root, by design).
                if parent in ids:
                    continue

    @pytest.mark.parametrize("seed", [3, 7])
    def test_dossiers_byte_identical_per_seed(self, seed):
        def dossiers():
            return run_stress(
                anomaly_config(seed), metrics=MetricsRegistry(),
                tracer=Tracer(), flight=FlightRecorder(),
            ).dossiers()

        assert [dossier_json(d) for d in dossiers()] == [
            dossier_json(d) for d in dossiers()
        ]

    def test_opcheck_dossier_from_stale_reads(self, latched):
        dossier = latched.flight.opcheck_dossier(latched)
        assert dossier is not None and dossier["kind"] == "opcheck"
        assert dossier["trigger"]["witnesses"]
        assert dossier["witness_tids"]
        assert dossier["trace_slice"]
        json.loads(dossier_json(dossier))  # canonical JSON round-trips

    def test_trace_slice_empty_without_tids(self):
        assert trace_slice([{"kind": "span", "id": 1, "seq": 0}], []) == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestClusterTraceview:
    @pytest.fixture(scope="class")
    def replicated(self):
        return run_stress(anomaly_config(), tracer=Tracer())

    def test_cluster_tracks_round_trip(self, replicated):
        records = replicated.tracer.records
        data = to_chrome_trace(records, cluster_tracks=True)
        names = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"cluster", "shard 0", "shard 1"} <= names
        threads = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"primary", "replica 0", "replica 1"} <= threads
        assert list(from_chrome_trace(data)) == list(records)

    def test_flat_export_unchanged_by_flag(self, replicated):
        records = replicated.tracer.records
        flat = to_chrome_trace(records)
        assert all(e["pid"] == 1 for e in flat["traceEvents"])
        assert list(from_chrome_trace(flat)) == list(records)

    def test_replication_lag_timeline(self, replicated):
        timeline = replication_lag_timeline(replicated.tracer.records)
        assert set(timeline) == {"0:0", "0:1", "1:0", "1:1"}
        for samples in timeline.values():
            assert all(s["lag"] >= 0 for s in samples)
            offsets = [s["offset"] for s in samples]
            assert offsets == sorted(offsets)

    def test_cross_shard_critical_path_descends_2pc(self):
        result = run_stress(cross_shard_config(), tracer=Tracer())
        hops = cross_shard_critical_path(result.tracer.records)
        names = [h["name"] for h in hops]
        assert names[0] == "client.request"
        assert "2pc.prepare" in names and "2pc.decide" in names
        assert names.index("2pc.prepare") < names.index("2pc.decide")
        # the fan-out legs are chased into the network
        assert names[names.index("2pc.prepare") + 1] == "net.msg"

    def test_twopc_summary_counts_decisions(self):
        result = run_stress(cross_shard_config(), tracer=Tracer())
        summary = twopc_summary(result.tracer.records)
        assert summary["transactions"] > 0
        assert summary["outcomes"] == {"commit": summary["transactions"]}
        assert summary["in_doubt_ticks"]["max"] >= summary[
            "in_doubt_ticks"
        ]["p50"]

    def test_run_report_cluster_section(self, replicated):
        report = build_run_report(result=replicated, title="t")
        assert report.cluster is not None
        markdown = report.to_markdown()
        assert "## Cluster" in markdown
        assert "### Replication lag" in markdown
        assert "### Session-guarantee violations" in markdown
        parsed = json.loads(report.to_json())
        assert parsed["cluster"]["shards"]
        assert parsed["cluster"]["replication"]

    def test_single_server_report_has_no_cluster_section(self):
        result = run_stress(
            StressConfig(clients=2, txns_per_client=4, seed=1),
            tracer=Tracer(),
        )
        report = build_run_report(result=result, title="t")
        assert report.cluster is None
        assert "## Cluster" not in report.to_markdown()

    def test_cluster_summary_pure_function(self, replicated):
        records = list(replicated.tracer.records)
        assert cluster_summary(records) == cluster_summary(records)


class TestDossierCli:
    def test_selftest_passes(self):
        out = io.StringIO()
        assert main(["dossier", "--selftest"], out=out) == 0
        text = out.getvalue()
        assert "byte-identical reruns  : yes" in text
        assert "witness spans covered  : yes" in text
        assert "selftest               : ok" in text

    def test_render_and_json_artifact(self, tmp_path):
        artifact = tmp_path / "dossiers.json"
        out = io.StringIO()
        assert main(
            ["dossier", "--opcheck", "--out", str(artifact)], out=out
        ) == 0
        assert "anomaly dossier: phenomenon" in out.getvalue()
        dossiers = json.loads(artifact.read_text())
        assert any(d["kind"] == "opcheck" for d in dossiers)

    def test_json_format_is_canonical(self):
        out = io.StringIO()
        assert main(["dossier", "--format", "json"], out=out) == 0
        first = out.getvalue()
        out2 = io.StringIO()
        assert main(["dossier", "--format", "json"], out=out2) == 0
        assert first == out2.getvalue()

    def test_cluster_report_command(self, tmp_path):
        chrome = tmp_path / "trace.json"
        out = io.StringIO()
        assert main(
            ["cluster-report", "--chrome-out", str(chrome)], out=out
        ) == 0
        text = out.getvalue()
        assert "## Cluster" in text
        assert "### Cross-shard 2PC" in text
        data = json.loads(chrome.read_text())
        assert any(
            e.get("name") == "process_name" for e in data["traceEvents"]
        )
