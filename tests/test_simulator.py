"""Tests for programs and the deterministic simulator
(repro.engine.programs, repro.engine.simulator)."""


from repro.core.predicates import FieldPredicate
from repro.engine import (
    Compute,
    Count,
    Database,
    Delete,
    Increment,
    Insert,
    LockingScheduler,
    PredicateReadStep,
    Program,
    Read,
    ReadCommittedMVScheduler,
    Select,
    Simulator,
    SnapshotIsolationScheduler,
    UpdateWhere,
    Write,
)


def run_one(program, scheduler=None, initial=None, seed=0):
    db = Database(scheduler or SnapshotIsolationScheduler())
    db.load(initial or {"x": 1, "y": 2})
    result = Simulator(db, [program], seed=seed).run()
    return db, result


class TestSteps:
    def test_read_write_registers(self):
        prog = Program(
            "p", [Read("x", into="x"), Write("y", lambda r: r["x"] * 10)]
        )
        db, res = run_one(prog)
        assert res.outcomes[0].committed
        assert db.begin().read("y") == 10

    def test_increment_expansion(self):
        prog = Program("p", [Increment("x", 5)])
        db, res = run_one(prog)
        assert db.begin().read("x") == 6

    def test_insert_and_delete(self):
        prog = Program(
            "p",
            [
                Insert("emp", {"dept": "Sales"}, into="new"),
                Delete("x"),
            ],
        )
        db, res = run_one(prog)
        t = db.begin()
        assert t.read(res.outcomes[0].regs["new"]) == {"dept": "Sales"}
        assert t.read("x") is None

    def test_select_and_count(self):
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        prog = Program(
            "p", [Select(pred, into="rows"), Count(pred, into="n")]
        )
        db, res = run_one(
            prog, initial={"emp:1": {"dept": "Sales"}, "emp:2": {"dept": "HR"}}
        )
        regs = res.outcomes[0].regs
        assert list(regs["rows"]) == ["emp:1"]
        assert regs["n"] == 1

    def test_update_where_expansion(self):
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        prog = Program(
            "p", [UpdateWhere(pred, lambda r: {**r, "sal": 2})]
        )
        db, _ = run_one(prog, initial={"emp:1": {"dept": "Sales", "sal": 1}})
        assert db.begin().read("emp:1")["sal"] == 2

    def test_predicate_read_step(self):
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        prog = Program("p", [PredicateReadStep(pred, into="matched")])
        _, res = run_one(prog, initial={"emp:1": {"dept": "Sales"}})
        assert res.outcomes[0].regs["matched"] == {"emp:1": {"dept": "Sales"}}

    def test_compute(self):
        prog = Program(
            "p", [Read("x", into="x"), Compute(lambda r: r.__setitem__("d", r["x"] * 2))]
        )
        _, res = run_one(prog)
        assert res.outcomes[0].regs["d"] == 2


class TestDeterminism:
    def programs(self):
        return [
            Program(f"p{i}", [Read("x", into="x"), Write("x", lambda r: r["x"] + 1)])
            for i in range(4)
        ]

    def test_same_seed_same_history(self):
        def run(seed):
            db = Database(ReadCommittedMVScheduler())
            db.load({"x": 0})
            Simulator(db, self.programs(), seed=seed).run()
            return str(db.history())

        assert run(7) == run(7)

    def test_different_seeds_vary(self):
        def run(seed):
            db = Database(ReadCommittedMVScheduler())
            db.load({"x": 0})
            Simulator(db, self.programs(), seed=seed).run()
            return str(db.history())

        assert len({run(s) for s in range(10)}) > 1


class TestBlockingAndDeadlock:
    def test_lock_waits_resolve(self):
        programs = [
            Program("a", [Increment("x")]),
            Program("b", [Increment("x")]),
        ]
        db = Database(LockingScheduler("serializable"))
        db.load({"x": 0})
        res = Simulator(db, programs, seed=1).run()
        assert res.committed_count == 2
        assert db.begin().read("x") == 2

    def test_deadlock_detected_and_resolved(self):
        # Classic crossing order: a takes x then y; b takes y then x.
        programs = [
            Program("a", [Write("x", 1), Write("y", 1)]),
            Program("b", [Write("y", 2), Write("x", 2)]),
        ]
        deadlocked = 0
        for seed in range(20):
            db = Database(LockingScheduler("serializable"))
            db.load({"x": 0, "y": 0})
            res = Simulator(db, programs, seed=seed).run()
            assert res.committed_count == 2  # victim retried and succeeded
            deadlocked += res.deadlocks
        assert deadlocked > 0  # some interleaving really deadlocked

    def test_retry_gets_fresh_tid(self):
        programs = [
            Program("a", [Write("x", 1), Write("y", 1)]),
            Program("b", [Write("y", 2), Write("x", 2)]),
        ]
        for seed in range(20):
            db = Database(LockingScheduler("serializable"))
            db.load({"x": 0, "y": 0})
            res = Simulator(db, programs, seed=seed).run()
            for outcome in res.outcomes:
                if outcome.aborts:
                    assert len(outcome.tids) == outcome.aborts + 1
                    assert outcome.committed_tid == outcome.tids[-1]

    def test_step_budget_completes_history(self):
        programs = [Program("a", [Increment("x")])]
        db = Database(LockingScheduler("serializable"))
        db.load({"x": 0})
        blocker = db.begin()
        blocker.write("x", 9)  # never commits: program can never proceed
        res = Simulator(db, programs, seed=0, max_steps=50).run()
        assert not res.outcomes[0].committed
        # History is still complete (aborts appended), so it validates.
        assert res.history is not None


class TestOutcomes:
    def test_result_counters(self):
        programs = [
            Program("a", [Increment("x")]),
            Program("b", [Increment("x")]),
        ]
        db = Database(SnapshotIsolationScheduler())
        db.load({"x": 0})
        res = Simulator(db, programs, seed=3).run()
        assert res.committed_count == 2
        assert res.steps_executed > 0

    def test_si_fcw_retries_preserve_counter(self):
        """FCW losers retry until both increments land: no lost updates."""
        programs = [
            Program(f"p{i}", [Increment("x")]) for i in range(5)
        ]
        for seed in range(5):
            db = Database(SnapshotIsolationScheduler())
            db.load({"x": 0})
            res = Simulator(db, programs, seed=seed).run()
            assert res.committed_count == 5
            assert db.begin().read("x") == 5


class TestVictimSelection:
    def test_original_age_prevents_starvation(self):
        """A restarted deadlock victim keeps its original seniority, so
        crossing writers at scale all eventually commit (the naive
        current-youngest rule starved them; see bench_scaling_engine)."""
        programs = [
            Program(f"p{i}", [Write("x", 1), Write("y", 1)] if i % 2 == 0
                    else [Write("y", 2), Write("x", 2)])
            for i in range(8)
        ]
        for seed in range(6):
            db = Database(LockingScheduler("serializable"))
            db.load({"x": 0, "y": 0})
            result = Simulator(db, programs, seed=seed, max_retries=50).run()
            assert result.committed_count == 8, f"seed {seed}"
