"""Mixed systems: the Mixed Serialization Graph and mixing-correctness
(paper Section 5.5, Definition 9).

In a mixed system every transaction declares its own level (``Begin`` events
carry it; ``History.default_level`` covers the rest).  The MSG keeps only the
edges *relevant* to the levels involved, plus obligatory conflicts:

* write-dependency edges are relevant at all levels and are always kept;
* read-dependency edges are kept when the *reader* runs at PL-2 or above
  (reads matter from PL-2 up);
* item-anti-dependency edges are kept when the *reader* (the edge source)
  runs at PL-2.99 or above;
* predicate-anti-dependency edges are kept when the reader runs at PL-3.

A history is **mixing-correct** (Definition 9) iff its MSG is acyclic and
phenomena G1a and G1b do not occur for PL-2 and higher transactions.  The
paper's Mixing Theorem then guarantees each transaction the protections of
its own level.

Extension levels (PL-CS, PL-2+, PL-SI) are approximated for MSG purposes by
the strongest ANSI level they imply (all three imply PL-2); the MSG
construction in the paper is defined for the ANSI chain only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import graph as _g
from .conflicts import DepKind, Edge, PredicateDepMode, all_dependencies
from .dsg import Cycle
from .history import History
from .levels import ANSI_CHAIN, IsolationLevel
from .phenomena import Analysis, Phenomenon, Witness

__all__ = ["MSG", "MixingReport", "mixing_correct", "ansi_projection"]


def ansi_projection(level: IsolationLevel) -> IsolationLevel:
    """The strongest ANSI-chain level implied by ``level``."""
    best = IsolationLevel.PL_1
    for candidate in ANSI_CHAIN:
        if level.implies(candidate):
            best = candidate
    return best


def _relevant(edge: Edge, src_level: IsolationLevel, dst_level: IsolationLevel) -> bool:
    if edge.kind is DepKind.WW:
        return True
    if edge.kind is DepKind.WR:
        return dst_level.implies(IsolationLevel.PL_2)
    if edge.kind is DepKind.RW:
        if edge.via_predicate:
            return src_level.implies(IsolationLevel.PL_3)
        return src_level.implies(IsolationLevel.PL_2_99)
    return False


class MSG:
    """Mixed serialization graph of a history."""

    def __init__(
        self,
        history: History,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
    ):
        self.history = history
        levels = {
            tid: ansi_projection(history.level_of(tid))
            for tid in history.committed
        }
        for tid in history.setup_tids:
            levels[tid] = IsolationLevel.PL_3  # setup state is fully isolated
        self.levels = levels
        self.edges: List[Edge] = [
            e
            for e in all_dependencies(history, mode)
            if _relevant(e, levels[e.src], levels[e.dst])
        ]
        self._nodes = set(history.committed_all)
        self._adj: Dict[int, List[Edge]] = _g.adjacency(self.edges)

    def is_acyclic(self) -> bool:
        return all(
            len(scc) < 2
            for scc in _g.strongly_connected_components(self._adj, self._nodes)
        )

    def find_cycle(self) -> Optional[Cycle]:
        for scc in _g.strongly_connected_components(self._adj, self._nodes):
            if len(scc) < 2:
                continue
            members = set(scc)
            sub = _g.adjacency(
                e for e in self.edges if e.src in members and e.dst in members
            )
            for e in self.edges:
                if e.src in members and e.dst in members:
                    back = _g.shortest_edge_path(sub, e.dst, e.src)
                    if back is not None:
                        return Cycle((e, *back))
        return None

    def topological_order(self) -> List[int]:
        return _g.topological_order(self._adj, self._nodes)


@dataclass(frozen=True)
class MixingReport:
    """Outcome of the Definition 9 test."""

    ok: bool
    cycle: Optional[Cycle] = None
    dirty_reads: Tuple[Witness, ...] = ()

    def describe(self) -> str:
        if self.ok:
            return "mixing-correct: MSG acyclic, no dirty reads at PL-2+"
        lines = ["NOT mixing-correct:"]
        if self.cycle is not None:
            lines.append(f"  MSG cycle: {self.cycle.describe()}")
        for w in self.dirty_reads:
            lines.append(f"  {w.description}")
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return self.ok


def mixing_correct(
    history: History,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> MixingReport:
    """Definition 9: MSG acyclic and no G1a/G1b for PL-2+ transactions."""
    msg = MSG(history, mode)
    cycle = None if msg.is_acyclic() else msg.find_cycle()
    analysis = Analysis(history, mode)
    dirty: List[Witness] = []
    needs_clean_reads = {
        tid
        for tid in history.committed
        if msg.levels.get(tid, IsolationLevel.PL_3).implies(IsolationLevel.PL_2)
    }
    for phenomenon in (Phenomenon.G1A, Phenomenon.G1B):
        report = analysis.report(phenomenon)
        for witness in report.witnesses:
            if witness.tid is None or witness.tid in needs_clean_reads:
                dirty.append(witness)
    ok = cycle is None and not dirty
    return MixingReport(ok, cycle, tuple(dirty))
