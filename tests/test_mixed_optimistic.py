"""Tests for the mixing-correct optimistic scheduler
(repro.engine.mixed_optimistic)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.core.msg import mixing_correct
from repro.engine import Database, MixedOptimisticScheduler, Simulator
from repro.exceptions import ValidationFailure
from repro.workloads import WorkloadConfig, random_programs


def make_db(initial=None, default=L.PL_3):
    db = Database(MixedOptimisticScheduler(default))
    db.load(initial or {"x": 5, "y": 5})
    return db


class TestPerLevelValidation:
    def test_pl3_transaction_validates_reads(self):
        db = make_db()
        t1 = db.begin(level=L.PL_3)
        t2 = db.begin(level=L.PL_3)
        t1.read("x")
        t2.write("x", 6)
        t2.commit()
        t1.write("y", 0)
        with pytest.raises(ValidationFailure):
            t1.commit()

    def test_pl2_transaction_skips_validation(self):
        """The same interleaving commits at PL-2: its anti-dependencies are
        not relevant at its level."""
        db = make_db()
        t1 = db.begin(level=L.PL_2)
        t2 = db.begin(level=L.PL_3)
        t1.read("x")
        t2.write("x", 6)
        t2.commit()
        t1.write("y", 0)
        t1.commit()  # no exception
        assert mixing_correct(db.history()).ok

    def test_pl299_validates_items_not_predicates(self):
        from repro.core.predicates import FieldPredicate

        db = make_db({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin(level=L.PL_2_99)
        t2 = db.begin(level=L.PL_3)
        t1.count(pred)
        t2.insert("emp", {"dept": "Sales", "sal": 2})
        t2.commit()
        t1.write("x", 0)
        t1.commit()  # phantom tolerated at PL-2.99

    def test_pl3_validates_predicates(self):
        from repro.core.predicates import FieldPredicate

        db = make_db({"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin(level=L.PL_3)
        t2 = db.begin(level=L.PL_3)
        t1.count(pred)
        t2.insert("emp", {"dept": "Sales", "sal": 2})
        t2.commit()
        t1.write("x", 0)
        with pytest.raises(ValidationFailure):
            t1.commit()

    def test_default_level_applies_to_undeclared(self):
        db = make_db(default=L.PL_2)
        t1 = db.begin()  # no declared level -> PL-2 validation rules
        t2 = db.begin()
        t1.read("x")
        t2.write("x", 6)
        t2.commit()
        t1.write("y", 0)
        t1.commit()  # PL-2: no read validation


class TestEmittedHistories:
    def _mixed_run(self, seed, levels):
        cfg = WorkloadConfig(
            n_programs=6, steps_per_program=3, n_keys=4,
            write_fraction=0.6, hot_fraction=0.6,
        )
        programs = random_programs(cfg, seed=seed)
        for i, program in enumerate(programs):
            program.level = levels[i % len(levels)]
        db = Database(MixedOptimisticScheduler())
        db.load(cfg.initial_state())
        Simulator(db, programs, seed=seed).run()
        return db.history()

    @pytest.mark.parametrize("levels", [
        [L.PL_1, L.PL_3],
        [L.PL_2, L.PL_2_99, L.PL_3],
        [L.PL_3],
        [L.PL_1],
    ])
    def test_always_mixing_correct(self, levels):
        for seed in range(6):
            history = self._mixed_run(seed, levels)
            report = mixing_correct(history)
            assert report.ok, report.describe()

    def test_all_pl3_runs_are_serializable(self):
        for seed in range(6):
            history = self._mixed_run(seed, [L.PL_3])
            assert repro.classify(history) is L.PL_3

    def test_all_pl2_runs_provide_pl2(self):
        for seed in range(6):
            history = self._mixed_run(seed, [L.PL_2])
            assert repro.satisfies(history, L.PL_2).ok

    def test_weak_levels_abort_less(self):
        """Skipping validation at weak levels buys fewer aborts — the
        performance trade the paper's introduction motivates."""
        def total_aborts(levels):
            aborts = 0
            for seed in range(8):
                cfg = WorkloadConfig(
                    n_programs=6, steps_per_program=3, n_keys=3,
                    write_fraction=0.7, hot_fraction=0.8,
                )
                programs = random_programs(cfg, seed=seed)
                for program in programs:
                    program.level = levels[0]
                db = Database(MixedOptimisticScheduler())
                db.load(cfg.initial_state())
                result = Simulator(db, programs, seed=seed).run()
                aborts += result.abort_count
            return aborts

        assert total_aborts([L.PL_2]) <= total_aborts([L.PL_3])
