"""Baseline checkers the paper compares against: the preventative P0-P3 of
Berenson et al. and the strict (anomaly) A1-A3 reading of ANSI SQL-92."""

from .ansi import (
    AnsiAnalysis,
    AnsiPhenomenon,
    AnsiReport,
    ansi_strict_satisfies,
)
from .preventative import (
    PreventativeAnalysis,
    PreventativePhenomenon,
    PreventativeReport,
    preventative_classify,
    preventative_proscribed,
    preventative_satisfies,
)

__all__ = [
    "AnsiAnalysis",
    "AnsiPhenomenon",
    "AnsiReport",
    "ansi_strict_satisfies",
    "PreventativeAnalysis",
    "PreventativePhenomenon",
    "PreventativeReport",
    "preventative_classify",
    "preventative_proscribed",
    "preventative_satisfies",
]
