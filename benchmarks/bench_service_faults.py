"""Service-layer guard: the client/server stack must stay honest.

Two pins:

* **zero-fault overhead** — with a perfect network (no drops, duplicates,
  reordering or crashes) the full service round trip (client → network →
  server → engine and back) must stay within a bounded multiple of the
  equivalent direct ``Database`` calls.  The service adds real mechanism
  (payload dicts, a delivery heap, dedup caching), so the bound is a
  usability ceiling, not free — but a regression that makes the stack an
  order of magnitude slower than the engine fails here.
* **fault-schedule table** — one stress run per fault schedule, the
  regenerated table recording commits, retries, dedup hits and the
  certification verdict.  Every schedule must end fully certified: faults
  cost retries and aborts, never isolation.
"""

from __future__ import annotations

import time

import pytest

from repro.core.levels import IsolationLevel
from repro.engine import connect
from repro.service import (
    Client,
    NetworkConfig,
    RetryPolicy,
    Server,
    SimulatedNetwork,
    StressConfig,
    run_stress,
)

_TXNS = 200
_KEYS = 8


def _run_direct() -> float:
    best = float("inf")
    for round_ in range(3):
        db = connect("locking", initial={f"k{i}": 0 for i in range(_KEYS)})
        start = time.perf_counter()
        for i in range(_TXNS):
            t = db.begin()
            key = f"k{i % _KEYS}"
            t.write(key, t.read(key, for_update=True) + 1)
            t.commit()
        best = min(best, time.perf_counter() - start)
    return best


def _run_service() -> float:
    best = float("inf")
    for round_ in range(3):
        net = SimulatedNetwork()  # zero-fault: fixed delay, no drops/dups
        server = Server(
            net, "locking", initial={f"k{i}": 0 for i in range(_KEYS)}
        )
        client = Client(net)
        start = time.perf_counter()
        for i in range(_TXNS):
            client.begin()
            key = f"k{i % _KEYS}"
            client.write(key, client.read(key, for_update=True) + 1)
            client.commit()
        best = min(best, time.perf_counter() - start)
        assert server.commit_count == _TXNS
    return best


@pytest.mark.benchguard
def test_zero_fault_service_overhead_bounded():
    direct = _run_direct()
    service = _run_service()
    # The stack multiplies work per op (request dict, heap push/pop,
    # handler dispatch, reply dict, dedup bookkeeping) — pin it to one
    # order of magnitude, with an absolute floor for timer noise.
    assert service < max(direct * 12, direct + 0.05), (
        f"service run {service * 1000:.1f} ms vs direct "
        f"{direct * 1000:.1f} ms"
    )


_SCHEDULES = [
    ("perfect", NetworkConfig()),
    ("reorder", NetworkConfig(min_delay=1, max_delay=6)),
    ("drops", NetworkConfig(drop=0.1, min_delay=1, max_delay=3)),
    ("dups", NetworkConfig(duplicate=0.15, min_delay=1, max_delay=3)),
    (
        "drops+dups",
        NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4),
    ),
]


def test_fault_schedule_table(record_table):
    rows = [
        f"{'schedule':12} {'commits':>7} {'aborts':>6} {'retries':>7} "
        f"{'dedup':>5} {'busy':>5} {'certified':>9}"
    ]
    for name, cfg in _SCHEDULES:
        result = run_stress(
            StressConfig(
                clients=3,
                txns_per_client=10,
                seed=17,
                network=cfg,
                retry=RetryPolicy(timeout=12),
                crash_after_commits=10,
            )
        )
        assert result.committed == 30
        assert result.all_certified, f"{name}: certification failed"
        assert result.strongest_level() is IsolationLevel.PL_3
        rows.append(
            f"{name:12} {result.committed:7d} {result.client_aborts:6d} "
            f"{result.client_stats['retries']:7d} "
            f"{result.server_counters['dedup_hits']:5d} "
            f"{result.server_counters['busy']:5d} "
            f"{'yes' if result.all_certified else 'NO':>9}"
        )
    record_table("service_faults", "\n".join(rows))
