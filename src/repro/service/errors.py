"""Client-visible service errors.

These mirror engine conditions across the unreliable boundary: the engine's
:class:`~repro.exceptions.TransactionAborted` becomes
:class:`ServiceAborted` in the client, lock waits surface as bounded
busy-retries ending in :class:`ServiceUnavailable`, and unanswered requests
end in :class:`RequestTimeout`.
"""

from __future__ import annotations

from ..exceptions import ReproError

__all__ = [
    "ServiceError",
    "ServiceAborted",
    "ServiceUnavailable",
    "RequestTimeout",
]


class ServiceError(ReproError):
    """Base class for client/server service-layer errors."""


class ServiceAborted(ServiceError):
    """The server aborted the transaction (validation failure, deadlock
    victim, first-committer loss, or a crash that killed it)."""

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class ServiceUnavailable(ServiceError):
    """Busy replies (lock waits) outlasted the retry policy."""


class RequestTimeout(ServiceError):
    """No reply within the retry policy's attempts — the outcome of the
    last request is unknown to the client (it may have applied)."""
