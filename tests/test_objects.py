"""Tests for versions and object identity (repro.core.objects)."""

import pytest

from repro.core.objects import (
    DEFAULT_RELATION,
    INIT_TID,
    Version,
    VersionKind,
    relation_of,
)


class TestVersionIdentity:
    def test_equality_is_structural(self):
        assert Version("x", 1) == Version("x", 1, 1)
        assert Version("x", 1) != Version("x", 2)
        assert Version("x", 1) != Version("y", 1)
        assert Version("x", 1, 1) != Version("x", 1, 2)

    def test_versions_are_hashable(self):
        assert len({Version("x", 1), Version("x", 1, 1), Version("x", 2)}) == 2

    def test_default_sequence_is_one(self):
        assert Version("x", 3).seq == 1

    def test_ordering_is_total(self):
        versions = [Version("x", 2), Version("x", 1, 2), Version("x", 1, 1)]
        assert sorted(versions) == [
            Version("x", 1, 1),
            Version("x", 1, 2),
            Version("x", 2),
        ]


class TestUnbornVersion:
    def test_unborn_constructor(self):
        v = Version.unborn("x")
        assert v.tid == INIT_TID
        assert v.seq == 0
        assert v.is_unborn

    def test_application_versions_are_not_unborn(self):
        assert not Version("x", 0).is_unborn  # T0 is an app transaction

    def test_unborn_requires_seq_zero(self):
        with pytest.raises(ValueError):
            Version("x", INIT_TID, 1)

    def test_application_version_requires_positive_seq(self):
        with pytest.raises(ValueError):
            Version("x", 1, 0)

    def test_empty_object_rejected(self):
        with pytest.raises(ValueError):
            Version("", 1)


class TestLabels:
    def test_simple_label(self):
        assert Version("x", 1).label() == "x1"

    def test_multi_write_label(self):
        assert Version("x", 1, 2).label() == "x1.2"

    def test_explicit_seq_label(self):
        assert Version("x", 1).label(explicit_seq=True) == "x1.1"

    def test_unborn_label(self):
        assert Version.unborn("x").label() == "xinit"

    def test_str_matches_label(self):
        assert str(Version("Sum", 0)) == "Sum0"


class TestRelations:
    def test_bare_objects_use_default_relation(self):
        assert relation_of("x") == DEFAULT_RELATION

    def test_namespaced_objects(self):
        assert relation_of("emp:3") == "emp"

    def test_version_relation_property(self):
        assert Version("emp:3", 1).relation == "emp"
        assert Version("x", 1).relation == DEFAULT_RELATION

    def test_kind_enum_values(self):
        assert {k.value for k in VersionKind} == {"unborn", "visible", "dead"}
