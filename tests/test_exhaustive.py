"""Exhaustive small-scope checking.

Rather than sampling, enumerate *every* interleaving of two small
transaction templates over one object (and, where relevant, every committed
version order) and assert the metatheory on each:

* classification is monotone on the ANSI chain;
* the implication lattice is respected across all levels;
* preventative acceptance implies generalized acceptance (the realizable
  fragment: reads here always observe the latest preceding write of a
  transaction that has not aborted yet);
* a G1-free history is PL-3 exactly when its DSG is acyclic;
* two-transaction single-object histories reading the latest committed
  state are *never* G0 (version order follows write order);
* the strict ANSI A-reading never rejects a history the generalized
  definitions accept at PL-2.99/PL-3 restricted to completed anomalies...
  (checked in the weaker direction: every A-exhibiting history also fails
  the corresponding G-level).

Small-scope exhaustiveness complements the random property tests: within
the enumerated universe there are *no* missed counterexamples.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple


from repro.baseline import (
    PreventativeAnalysis,
    ansi_strict_satisfies,
    preventative_satisfies,
)
from repro.core import Analysis, History
from repro.core.events import Abort, Commit, Event, Read, Write
from repro.core.levels import ANSI_CHAIN, IsolationLevel as L, satisfies
from repro.core.objects import Version
from repro.core.phenomena import Phenomenon as G

# Transaction templates over a single object x: sequences of "r"/"w"
# followed by a terminal "c" (commit) or "a" (abort).
TEMPLATES = ["rc", "wc", "rrc", "rwc", "wrc", "wwc", "rwa", "wa", "rwrc"]


def interleavings(a: Sequence[str], b: Sequence[str]) -> Iterator[Tuple[int, ...]]:
    """All merges of two sequences, as picks (0 = next op of a, 1 = of b)."""
    total = len(a) + len(b)
    for positions in itertools.combinations(range(total), len(a)):
        picks = [1] * total
        for pos in positions:
            picks[pos] = 0
        yield tuple(picks)


def build_history(
    ops_a: str, ops_b: str, picks: Tuple[int, ...]
) -> History | None:
    """Materialise one interleaving into a history, with reads observing
    the latest write whose transaction has not yet aborted (single-version
    in-place semantics, like the Degree-0 engine).  Returns ``None`` when
    the interleaving implies reading a nonexistent version (no write yet) —
    the read observes the loader's version instead, so this never happens
    here (T0 preloads x)."""
    events: List[Event] = [Write(0, Version("x", 0), 0), Commit(0)]
    cursors = {1: iter(ops_a), 2: iter(ops_b)}
    counts = {1: 0, 2: 0}
    # stack of live versions (in-place store with undo)
    stack: List[Version] = [Version("x", 0)]

    streams = {1: list(ops_a), 2: list(ops_b)}
    indexes = {1: 0, 2: 0}
    for pick in picks:
        tid = 1 if pick == 0 else 2
        op = streams[tid][indexes[tid]]
        indexes[tid] += 1
        if op == "r":
            if counts[tid]:
                # Read-your-own-writes (E4): a transaction that has written
                # x observes its own last version, as the engine does.
                events.append(Read(tid, Version("x", tid, counts[tid])))
            else:
                events.append(Read(tid, stack[-1]))
        elif op == "w":
            counts[tid] += 1
            version = Version("x", tid, counts[tid])
            events.append(Write(tid, version))
            stack.append(version)
        elif op == "c":
            events.append(Commit(tid))
        elif op == "a":
            events.append(Abort(tid))
            stack = [v for v in stack if v.tid != tid]
    return History(events, None, validate=True)


def all_histories() -> List[History]:
    out = []
    for ops_a, ops_b in itertools.product(TEMPLATES, repeat=2):
        for picks in interleavings(ops_a, ops_b):
            try:
                out.append(build_history(ops_a, ops_b, picks))
            except Exception:
                # E4 violations (a transaction reading another's version
                # after writing its own) cannot arise here because reads
                # observe the stack top, which is the reader's own last
                # write when it wrote last; any other malformation is a
                # bug — re-raise.
                raise
    return out


HISTORIES = all_histories()


def test_enumeration_is_substantial():
    assert len(HISTORIES) > 1000


class TestMetatheoryExhaustively:
    def test_monotone_on_ansi_chain(self):
        for h in HISTORIES:
            analysis = Analysis(h)
            oks = [satisfies(h, level, analysis=analysis).ok for level in ANSI_CHAIN]
            for weaker, stronger in zip(oks, oks[1:]):
                assert weaker or not stronger, str(h)

    def test_implication_lattice(self):
        for h in HISTORIES:
            analysis = Analysis(h)
            oks = {level: satisfies(h, level, analysis=analysis).ok for level in L}
            for a in L:
                if not oks[a]:
                    continue
                for b in L:
                    if a.implies(b):
                        assert oks[b], f"{a}->{b} violated by {h}"

    def test_preventative_containment(self):
        for h in HISTORIES:
            analysis = Analysis(h)
            prev = PreventativeAnalysis(h)
            for level in ANSI_CHAIN:
                if preventative_satisfies(h, level, analysis=prev):
                    assert satisfies(h, level, analysis=analysis).ok, str(h)

    def test_acyclic_iff_pl3_without_g1(self):
        for h in HISTORIES:
            analysis = Analysis(h)
            if satisfies(h, L.PL_2, analysis=analysis).ok:
                assert (
                    satisfies(h, L.PL_3, analysis=analysis).ok
                    == analysis.dsg.is_acyclic()
                ), str(h)

    def test_single_object_latest_reads_never_g0(self):
        for h in HISTORIES:
            assert not Analysis(h).exhibits(G.G0), str(h)

    def test_ansi_strict_weaker_than_generalized_here(self):
        """Within this universe (single object, latest reads) every history
        the generalized definitions accept at a level, the strict A-reading
        accepts too — A is the weakest of the three."""
        for h in HISTORIES:
            analysis = Analysis(h)
            for level in (L.PL_2, L.PL_2_99, L.PL_3):
                if satisfies(h, level, analysis=analysis).ok:
                    assert ansi_strict_satisfies(h, level), str(h)

    def test_dirty_read_abort_consistency(self):
        """G1a holds exactly when a committed transaction read a version of
        the aborted peer — cross-checked against a direct event scan."""
        for h in HISTORIES:
            expected = any(
                isinstance(ev, Read)
                and ev.tid in h.committed
                and ev.version.tid in h.aborted
                for ev in h.events
            )
            assert Analysis(h).exhibits(G.G1A) == expected, str(h)


class TestVersionOrderVariants:
    """For histories where both transactions commit writes, also try the
    *reversed* version order (the multi-version freedom) and check the
    implication lattice still holds, and that G0 appears exactly when the
    reversed order contradicts a write-dependency chain through reads."""

    def reversed_order_histories(self) -> List[History]:
        out = []
        for h in HISTORIES:
            finals = [
                h.final_version("x", tid)
                for tid in sorted(h.committed)
                if h.final_version("x", tid) is not None
            ]
            if len(finals) < 2:
                continue
            reversed_chain = list(reversed(finals))
            try:
                out.append(
                    History(h.events, {"x": reversed_chain}, validate=True)
                )
            except Exception:
                continue
            if len(out) >= 300:
                break
        return out

    def test_lattice_under_any_version_order(self):
        for h in self.reversed_order_histories():
            analysis = Analysis(h)
            oks = {level: satisfies(h, level, analysis=analysis).ok for level in L}
            for a in L:
                if not oks[a]:
                    continue
                for b in L:
                    if a.implies(b):
                        assert oks[b], f"{a}->{b} violated by {h}"


# ----------------------------------------------------------------------
# two-object universe: cross-object anomalies enumerated exhaustively
# ----------------------------------------------------------------------

# Templates are op sequences over objects x and y; "c"/"a" terminate.
TEMPLATES_XY = [
    (("r", "x"), ("r", "y"), ("w", "x"), ("c", "")),   # skew writer on x
    (("r", "x"), ("r", "y"), ("w", "y"), ("c", "")),   # skew writer on y
    (("r", "x"), ("w", "y"), ("c", "")),               # copier x -> y
    (("w", "x"), ("w", "y"), ("c", "")),               # blind double write
    (("r", "x"), ("r", "y"), ("c", "")),               # pure reader
    (("w", "x"), ("a", "")),                           # aborted writer
]


def build_history_xy(ops_a, ops_b, picks):
    events: List[Event] = [
        Write(0, Version("x", 0), 0),
        Write(0, Version("y", 0), 0),
        Commit(0),
    ]
    counts = {(1, "x"): 0, (1, "y"): 0, (2, "x"): 0, (2, "y"): 0}
    stacks = {"x": [Version("x", 0)], "y": [Version("y", 0)]}
    streams = {1: list(ops_a), 2: list(ops_b)}
    indexes = {1: 0, 2: 0}
    for pick in picks:
        tid = 1 if pick == 0 else 2
        op, obj = streams[tid][indexes[tid]]
        indexes[tid] += 1
        if op == "r":
            if counts[(tid, obj)]:
                events.append(Read(tid, Version(obj, tid, counts[(tid, obj)])))
            else:
                events.append(Read(tid, stacks[obj][-1]))
        elif op == "w":
            counts[(tid, obj)] += 1
            version = Version(obj, tid, counts[(tid, obj)])
            events.append(Write(tid, version))
            stacks[obj].append(version)
        elif op == "c":
            events.append(Commit(tid))
        elif op == "a":
            events.append(Abort(tid))
            for chain in stacks.values():
                chain[:] = [v for v in chain if v.tid != tid]
    return History(events, None, validate=True)


def all_histories_xy() -> List[History]:
    out = []
    for ops_a, ops_b in itertools.product(TEMPLATES_XY, repeat=2):
        for picks in interleavings(ops_a, ops_b):
            out.append(build_history_xy(ops_a, ops_b, picks))
    return out


HISTORIES_XY = all_histories_xy()


class TestTwoObjectUniverse:
    def test_universe_size(self):
        assert len(HISTORIES_XY) > 1000

    def test_metatheory_holds(self):
        for h in HISTORIES_XY:
            analysis = Analysis(h)
            oks = {level: satisfies(h, level, analysis=analysis).ok for level in L}
            for a in L:
                if not oks[a]:
                    continue
                for b in L:
                    if a.implies(b):
                        assert oks[b], f"{a}->{b} violated by {h}"

    def test_write_skew_shapes_found_and_classified(self):
        """Some interleaving of the two skew writers realizes write skew:
        fails PL-3 and PL-2.99 but passes PL-2+ (and no G1)."""
        found = 0
        for h in HISTORIES_XY:
            analysis = Analysis(h)
            if (
                satisfies(h, L.PL_2PLUS, analysis=analysis).ok
                and not satisfies(h, L.PL_2_99, analysis=analysis).ok
            ):
                found += 1
        assert found > 0

    def test_preventative_containment(self):
        for h in HISTORIES_XY:
            analysis = Analysis(h)
            prev = PreventativeAnalysis(h)
            for level in ANSI_CHAIN:
                if preventative_satisfies(h, level, analysis=prev):
                    assert satisfies(h, level, analysis=analysis).ok, str(h)

    def test_repair_certifies_every_history(self):
        from repro.analysis.repair import repair

        # A sample (every 7th) to keep runtime bounded; exhaustive over it.
        for h in HISTORIES_XY[::7]:
            result = repair(h, L.PL_3)
            assert satisfies(result.history, L.PL_3).ok, str(h)
