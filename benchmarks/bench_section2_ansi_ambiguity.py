"""SEC2 — Section 2: the ANSI ambiguity the paper inherits from [8].

"[8] analyzed the ANSI-SQL standard and demonstrated several problems in
its isolation level definitions: some phenomena were ambiguous, while
others were missing entirely."

This bench regenerates that analysis as a three-way comparison over the
corpus, asserting each reading's characteristic failure:

* the **strict / anomaly** reading (A1–A3) is *unsound*: H1 and H2 —
  non-serializable invariant violations — exhibit no A-phenomenon at all,
  so strict-ANSI SERIALIZABLE admits them; and it has no dirty-write
  phenomenon whatsoever (P0 "was missing");
* the **preventative** reading (P0–P3) is sound but *over-restrictive*:
  it rejects the serializable H1'/H2';
* the **generalized** reading (G-phenomena) is both sound and permissive:
  it rejects H1/H2 and accepts H1'/H2'.
"""

from __future__ import annotations


import repro
from repro.baseline import (
    AnsiAnalysis,
    AnsiPhenomenon,
    PreventativeAnalysis,
    ansi_strict_satisfies,
    preventative_satisfies,
)
from repro.core.canonical import H1, H2, H1_PRIME, H2_PRIME
from repro.core.levels import IsolationLevel as L
from repro.workloads.anomalies import DIRTY_WRITE, FUZZY_READ, DIRTY_READ


def three_way(history):
    return (
        ansi_strict_satisfies(history, L.PL_3),
        preventative_satisfies(history, L.PL_3),
        repro.satisfies(history, L.PL_3).ok,
    )


def test_section2_three_way_comparison(benchmark, record_table):
    corpus = [H1, H2, H1_PRIME, H2_PRIME]
    rows = benchmark(lambda: [(e.name, three_way(e.history)) for e in corpus])
    by_name = dict(rows)

    # strict ANSI admits the bad histories (unsound):
    assert by_name["H1"][0] and by_name["H2"][0]
    # preventative rejects the good ones (over-restrictive):
    assert not by_name["H1'"][1] and not by_name["H2'"][1]
    # generalized gets all four right:
    assert not by_name["H1"][2] and not by_name["H2"][2]
    assert by_name["H1'"][2] and by_name["H2'"][2]

    lines = [
        "SEC2 — admitted at SERIALIZABLE under each reading?",
        "",
        f"{'history':8} {'strict ANSI (A1-A3)':>20} {'preventative (P0-P3)':>22} "
        f"{'generalized (G)':>17} {'actually OK?':>13}",
    ]
    truth = {"H1": False, "H2": False, "H1'": True, "H2'": True}
    for name, (a_ok, p_ok, g_ok) in rows:
        lines.append(
            f"{name:8} {str(a_ok):>20} {str(p_ok):>22} {str(g_ok):>17} "
            f"{str(truth[name]):>13}"
        )
    lines += [
        "",
        "Only the generalized column matches ground truth on all four rows.",
    ]
    record_table("section2_three_way", "\n".join(lines))


def test_section2_missing_dirty_write(benchmark, record_table):
    """'Some phenomena ... were missing entirely': strict ANSI has no
    dirty-write rule, so even the G0 history sails through."""

    def run():
        analysis = AnsiAnalysis(DIRTY_WRITE.history)
        exhibited = [p for p in AnsiPhenomenon if analysis.exhibits(p)]
        return exhibited, ansi_strict_satisfies(DIRTY_WRITE.history, L.PL_3)

    exhibited, admitted = benchmark(run)
    assert exhibited == []
    assert admitted  # strict ANSI admits a G0 history at SERIALIZABLE(!)
    assert repro.classify(DIRTY_WRITE.history) is None  # reality: below PL-1
    record_table(
        "section2_missing_p0",
        "SEC2 — the dirty-write history exhibits no A-phenomenon and is "
        "admitted by strict ANSI at SERIALIZABLE; the generalized "
        "definitions place it below PL-1 (G0)",
    )


def test_section2_strict_reading_catches_completed_anomalies(benchmark, record_table):
    """Where the anomaly does complete, the strict reading agrees with the
    generalized one — the interpretations only diverge on interrupted
    anomalies."""

    def run():
        return (
            AnsiAnalysis(DIRTY_READ.history).exhibits(AnsiPhenomenon.A1),
            AnsiAnalysis(FUZZY_READ.history).exhibits(AnsiPhenomenon.A2),
        )

    a1, a2 = benchmark(run)
    assert a1 and a2
    record_table(
        "section2_strict_agreement",
        "SEC2 — completed anomalies (dirty read with abort, fuzzy re-read) "
        "are caught by A1/A2 too; only interrupted anomalies expose the "
        "ambiguity",
    )


def test_section3_mobile_addendum(benchmark, record_table):
    """The mobile tentative-commit system: every committed history is
    PL-3, virtually all violate P1 (the paper's disconnected-operation
    argument, quantified)."""
    import random

    from repro.baseline import PreventativePhenomenon
    from repro.engine.mobile import MobileCluster

    def run():
        serializable = p1 = 0
        runs = 8
        for seed in range(runs):
            rng = random.Random(seed)
            cluster = MobileCluster()
            cluster.load({f"k{i}": 10 for i in range(4)})
            clients = [cluster.client(i) for i in range(3)]
            for _step in range(8):
                client = rng.choice(clients)
                txn = client.begin()
                for _op in range(rng.randrange(1, 4)):
                    key = f"k{rng.randrange(4)}"
                    if rng.random() < 0.5:
                        txn.read(key)
                    else:
                        txn.write(key, rng.randrange(100))
                txn.tentative_commit()
                if rng.random() < 0.3:
                    client.sync()
            for client in clients:
                client.sync()
            history = cluster.history()
            serializable += repro.check(history).serializable
            p1 += PreventativeAnalysis(history).exhibits(PreventativePhenomenon.P1)
        return serializable, p1, runs

    serializable, p1, runs = benchmark.pedantic(run, iterations=1, rounds=1)
    assert serializable == runs
    assert p1 > 0
    record_table(
        "section3_mobile",
        f"SEC3 — mobile tentative commits: {serializable}/{runs} committed "
        f"histories serializable; {p1}/{runs} violate P1 (dirty reads of "
        "tentative data) — the implementations P1 outlaws",
    )
