"""Tests for predicates and version sets (repro.core.predicates)."""

import pytest

from repro.core.objects import Version
from repro.core.predicates import (
    FieldPredicate,
    FunctionPredicate,
    MembershipPredicate,
    VersionSet,
)
from repro.exceptions import PredicateError


class TestMembershipPredicate:
    def test_matches_declared_versions_only(self):
        p = MembershipPredicate("P", frozenset({Version("x", 1)}))
        assert p.matches(Version("x", 1), None)
        assert not p.matches(Version("x", 2), None)

    def test_with_matching_extends(self):
        p = MembershipPredicate("P", frozenset({Version("x", 1)}))
        q = p.with_matching(frozenset({Version("y", 2)}))
        assert q.matches(Version("y", 2), None)
        assert q.matches(Version("x", 1), None)
        assert not p.matches(Version("y", 2), None)  # original unchanged

    def test_empty_matching_set(self):
        p = MembershipPredicate("P")
        assert not p.matches(Version("x", 1), None)


class TestFieldPredicate:
    def test_equality_operator(self):
        p = FieldPredicate("emp", "dept", "==", "Sales")
        assert p.matches(Version("emp:1", 1), {"dept": "Sales"})
        assert not p.matches(Version("emp:1", 1), {"dept": "Legal"})

    def test_comparison_operators(self):
        p = FieldPredicate("emp", "sal", ">", 10)
        assert p.matches(Version("emp:1", 1), {"sal": 11})
        assert not p.matches(Version("emp:1", 1), {"sal": 10})

    def test_missing_field_does_not_match(self):
        p = FieldPredicate("emp", "dept", "==", "Sales")
        assert not p.matches(Version("emp:1", 1), {"name": "bob"})

    def test_non_mapping_value_does_not_match(self):
        p = FieldPredicate("emp", "dept", "==", "Sales")
        assert not p.matches(Version("emp:1", 1), 42)

    def test_type_mismatch_does_not_match(self):
        p = FieldPredicate("emp", "sal", "<", 10)
        assert not p.matches(Version("emp:1", 1), {"sal": "many"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            FieldPredicate("emp", "sal", "~=", 10)

    def test_covers_relation(self):
        p = FieldPredicate("emp", "dept", "==", "Sales")
        assert p.covers("emp:1")
        assert not p.covers("dept:1")
        assert not p.covers("x")  # default relation

    def test_in_operator(self):
        # Set-valued operands need an explicit name: the default would
        # contain notation delimiters.
        p = FieldPredicate("emp", "dept", "in", {"Sales", "Legal"}, name="dept-in-SL")
        assert p.matches(Version("emp:1", 1), {"dept": "Legal"})
        assert not p.matches(Version("emp:1", 1), {"dept": "HR"})

    def test_delimiter_name_rejected(self):
        from repro.exceptions import PredicateError

        with pytest.raises(PredicateError):
            FieldPredicate("emp", "dept", "in", {"Sales"})


class TestFunctionPredicate:
    def test_paper_commission_example(self):
        # COMM > 0.25 * SAL (the H_insert statement)
        p = FunctionPredicate(
            "comm>0.25*sal",
            lambda v, row: bool(row) and row.get("comm", 0) > 0.25 * row.get("sal", 0),
            frozenset({"emp"}),
        )
        assert p.matches(Version("emp:1", 1), {"sal": 100, "comm": 30})
        assert not p.matches(Version("emp:1", 1), {"sal": 100, "comm": 20})


class TestPredicateIdentity:
    def test_equality_by_name_and_relations(self):
        a = MembershipPredicate("P", frozenset({Version("x", 1)}))
        b = MembershipPredicate("P")
        assert a == b  # identity is (name, relations), not matching set
        assert hash(a) == hash(b)

    def test_distinct_names_differ(self):
        assert MembershipPredicate("P") != MembershipPredicate("Q")


class TestVersionSet:
    def test_of_builds_mapping(self):
        vs = VersionSet.of(Version("x", 1), Version("y", 2))
        assert vs.get("x") == Version("x", 1)
        assert vs.get("y") == Version("y", 2)
        assert vs.get("z") is None

    def test_duplicate_object_rejected(self):
        with pytest.raises(PredicateError):
            VersionSet.of(Version("x", 1), Version("x", 2))

    def test_mismatched_mapping_rejected(self):
        with pytest.raises(PredicateError):
            VersionSet({"x": Version("y", 1)})

    def test_contains_checks_exact_version(self):
        vs = VersionSet.of(Version("x", 1))
        assert Version("x", 1) in vs
        assert Version("x", 2) not in vs

    def test_len_and_objects(self):
        vs = VersionSet.of(Version("x", 1), Version("y", 2))
        assert len(vs) == 2
        assert set(vs.objects()) == {"x", "y"}

    def test_hashable(self):
        a = VersionSet.of(Version("x", 1))
        b = VersionSet.of(Version("x", 1))
        assert hash(a) == hash(b)

    def test_unborn_versions_allowed(self):
        vs = VersionSet.of(Version.unborn("z"))
        assert Version.unborn("z") in vs
